#![warn(missing_docs)]

//! LADDER — content- and location-aware writes for crossbar ReRAM.
//!
//! This facade crate re-exports the whole reproduction workspace:
//!
//! * [`xbar`] — crossbar circuit model and timing tables
//! * [`reram`] — memory geometry, addressing, time base
//! * [`core`] — the LADDER engine (counters, metadata, cache, FNW, shifting)
//! * [`baselines`] — Split-reset, BLP, compression
//! * [`memctrl`] — the cycle-level memory controller and write policies
//! * [`cpu`] — the trace-driven core model
//! * [`workloads`] — synthetic SPEC/PARSEC stand-ins
//! * [`energy`] — dynamic energy model
//! * [`wear`] — wear-leveling, lifetime, and remapping backends
//! * [`coding`] — location-dependent error channel and code schemes
//! * [`faults`] — device fault injection, program-and-verify, ECC/remap
//! * [`trace`] — structured tracing, mergeable metrics, chrome exporter
//! * [`sim`] — the system simulator and paper experiments
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Examples
//!
//! ```
//! use ladder::sim::{Scheme, SystemBuilder};
//! use ladder::cpu::{MemEvent, TraceOp, VecTrace};
//! use ladder::memctrl::standard_tables;
//! use ladder::reram::LineAddr;
//! use ladder::xbar::TableConfig;
//!
//! let tables = standard_tables(&TableConfig::ladder_default());
//! let trace = VecTrace::new(
//!     "demo",
//!     vec![MemEvent {
//!         gap_instructions: 100,
//!         op: TraceOp::Write { addr: LineAddr::new(40_000 * 64), data: Box::new([1; 64]) },
//!     }],
//! );
//! let mut b = SystemBuilder::with_tables(Scheme::LadderHybrid, &tables);
//! b.core(Box::new(trace), 8);
//! let result = b.run();
//! assert_eq!(result.mem.data_writes, 1);
//! ```
//!
//! The experiment entry points in [`sim::experiments`] run through the
//! work-stealing [`sim::Runner`], which executes independent
//! [`sim::SimConfig`] jobs across threads while keeping output
//! byte-identical to a sequential run. A multi-channel [`sim::Topology`]
//! (`--topology CxR`) shards a run into one controller and event stream
//! per channel via [`sim::run_sharded`], folded bit-reproducibly at any
//! worker count.

/// The shared `(ladder, blp)` timing-table bundle, re-exported at the top
/// level because nearly every entry point takes one.
pub use ladder_memctrl::Tables;
/// Per-event-kind dispatch counters of the discrete-event kernel.
pub use ladder_sim::EventCounts;
/// The topology-aware run API: builder-constructed configs, the
/// monolithic entry point, and the sharded multi-channel runner.
pub use ladder_sim::{run_sharded, run_sim, Interleave, ShardedRun, SimConfig, Topology};
/// The parallel experiment runner and its job/statistics types.
pub use ladder_sim::{AloneIpcCache, Runner, RunnerStats};

pub use ladder_baselines as baselines;
pub use ladder_coding as coding;
pub use ladder_core as core;
pub use ladder_cpu as cpu;
pub use ladder_energy as energy;
pub use ladder_faults as faults;
pub use ladder_memctrl as memctrl;
pub use ladder_reram as reram;
pub use ladder_sim as sim;
pub use ladder_trace as trace;
pub use ladder_wear as wear;
pub use ladder_workloads as workloads;
pub use ladder_xbar as xbar;
