//! Quickstart: drive LADDER-Hybrid by hand, one write at a time.
//!
//! Shows the core loop a memory controller performs: prepare a write
//! (metadata lookup), service it (latency query + metadata update), and
//! read the data back through the reverse transforms.
//!
//! Run with: `cargo run --release --example quickstart`

use ladder_core::{LadderConfig, LadderEngine, LadderVariant};
use ladder_reram::{AddressMap, Geometry, LineAddr, LineStore};
use ladder_xbar::{TableConfig, TimingTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the device timing table the controller will consult.
    let table = TimingTable::generate(&TableConfig::ladder_default())?;
    println!(
        "timing table: {} entries, {:.0}-{:.0} ns",
        512,
        table.best_ps() as f64 / 1000.0,
        table.worst_ps() as f64 / 1000.0
    );

    // 2. Build the LADDER engine (Hybrid variant) and a memory image.
    let map = AddressMap::new(Geometry::default());
    let mut engine = LadderEngine::new(
        LadderConfig::for_variant(LadderVariant::Hybrid),
        map.clone(),
    );
    let mut store = LineStore::new();
    println!(
        "metadata reserves {:.2}% of memory; data starts at page {}",
        engine.layout().storage_overhead() * 100.0,
        engine.layout().first_data_page()
    );

    // 3. Write a few lines with different data patterns and compare the
    //    latency LADDER derives against the pessimistic worst case.
    let base = engine.layout().first_data_page() * 64;
    let patterns: [(&str, [u8; 64]); 3] = [
        ("all-zero", [0u8; 64]),
        ("sparse (1 bit/byte)", [0b0000_0001; 64]),
        ("dense (6 bits/byte)", [0b0111_1110; 64]),
    ];
    for (i, (label, data)) in patterns.into_iter().enumerate() {
        let addr = LineAddr::new(base + i as u64);
        let prep = engine.prepare_write(addr);
        assert!(!prep.spilled);
        let out = engine.service_write(addr, data, &mut store);
        let t_wr = table.lookup_ps(out.wordline, out.worst_col, out.cw_lrs as usize);
        println!(
            "write {label:<20} C^w_lrs = {:>3}  ->  tWR = {:>6.1} ns (worst case {:.1} ns)",
            out.cw_lrs,
            t_wr as f64 / 1000.0,
            table.worst_ps() as f64 / 1000.0
        );
        // 4. Reads recover the original data through unflip + unshift.
        assert_eq!(engine.read_line(addr, &store), data);
    }

    let stats = engine.stats();
    println!(
        "engine stats: {} writes, {} metadata fills, {} flips cancelled",
        stats.writes, stats.metadata_reads, stats.flips_cancelled
    );
    Ok(())
}
