//! Scheme shootout: run one Table 3 workload under every write scheme and
//! print the full comparison — the quickest way to see the paper's
//! headline result end-to-end.
//!
//! Run with: `cargo run --release --example scheme_shootout [workload]`
//! where `workload` is a benchmark (`astar`, `mcf`, …) or a mix (`mix-1`).

use ladder_sim::experiments::{ExperimentConfig, Workload};
use ladder_sim::{run_sim, Scheme, SimConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "astar".into());
    let workload = Workload::all()
        .into_iter()
        .find(|w| w.label() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; pick one of:");
            for w in Workload::all() {
                eprintln!("  {}", w.label());
            }
            std::process::exit(2);
        });
    let cfg = ExperimentConfig {
        instructions_per_core: 500_000,
        ..Default::default()
    };
    let tables = cfg.tables();
    println!(
        "workload {} ({} instructions/core)\n",
        workload.label(),
        cfg.instructions_per_core
    );
    println!(
        "{:<16}{:>10}{:>14}{:>14}{:>12}{:>12}",
        "scheme", "speedup", "read lat(ns)", "write svc(ns)", "extra rd", "extra wr"
    );
    let base = run_sim(&SimConfig::new(Scheme::Baseline, workload), &cfg, &tables);
    let mut hybrid_summary = String::new();
    for scheme in Scheme::MAIN_EVAL {
        let r = run_sim(&SimConfig::new(scheme, workload), &cfg, &tables);
        if scheme == Scheme::LadderHybrid {
            hybrid_summary = r.summary();
        }
        let speedup: f64 = if workload.is_mix() {
            // Sum of per-core IPC ratios against the same cores under the
            // baseline (quick proxy; the full weighted-IPC metric lives in
            // `main_eval`).
            r.cores
                .iter()
                .zip(&base.cores)
                .map(|(a, b)| a.ipc / b.ipc)
                .sum::<f64>()
                / r.cores.len() as f64
        } else {
            r.ipc0() / base.ipc0()
        };
        println!(
            "{:<16}{:>10.3}{:>14.1}{:>14.1}{:>11.1}%{:>11.1}%",
            scheme.name(),
            speedup,
            r.avg_read_latency().as_ns(),
            r.avg_write_service().as_ns(),
            r.mem.additional_read_fraction() * 100.0,
            r.mem.additional_write_fraction() * 100.0
        );
    }
    println!(
        "
LADDER-Hybrid in detail:
{hybrid_summary}"
    );
}
