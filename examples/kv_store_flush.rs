//! A key-value store checkpoint flush: the write-burst scenario the
//! paper's introduction motivates (long writes blocking reads).
//!
//! A synthetic KV store periodically flushes dirty pages while serving
//! point lookups. Under the pessimistic baseline every flushed line costs
//! the worst-case RESET; under LADDER-Hybrid the flush drains several times
//! faster and lookups observe far lower tail latency.
//!
//! Run with: `cargo run --release --example kv_store_flush`

use ladder_cpu::{MemEvent, TraceOp, VecTrace};
use ladder_memctrl::standard_tables;
use ladder_reram::LineAddr;
use ladder_sim::{Scheme, SystemBuilder};
use ladder_xbar::TableConfig;

/// Builds the flush-plus-lookups trace: bursts of 200 write-backs (the
/// checkpoint) interleaved with dependent point lookups.
fn kv_trace(base_page: u64) -> VecTrace {
    let mut events = Vec::new();
    let mut x = 0xD1CEu64;
    let mut rng = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    for burst in 0..10u64 {
        // Checkpoint: flush 200 dirty lines (values are small integers and
        // string-ish bytes — realistically compressible, sparse data).
        for i in 0..200u64 {
            let addr = LineAddr::new((base_page + burst * 4 + i / 64) * 64 + i % 64);
            let mut data = [0u8; 64];
            for (j, b) in data.iter_mut().enumerate() {
                *b = if j % 4 == 0 { (rng() % 100) as u8 } else { 0 };
            }
            events.push(MemEvent {
                gap_instructions: 50,
                op: TraceOp::Write {
                    addr,
                    data: Box::new(data),
                },
            });
        }
        // Serving phase: 600 dependent lookups scattered over the store.
        for _ in 0..600 {
            let addr = LineAddr::new((base_page + rng() % 1000) * 64 + rng() % 64);
            events.push(MemEvent {
                gap_instructions: 120,
                op: TraceOp::Read {
                    addr,
                    critical: true,
                },
            });
        }
    }
    VecTrace::new("kv-store", events)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = standard_tables(&TableConfig::ladder_default());
    let base_page = 40_000;
    println!("KV-store checkpoint flush: 10 bursts x 200 write-backs + 600 lookups\n");
    println!(
        "{:<16}{:>11}{:>10}{:>10}{:>15}{:>9}{:>12}",
        "scheme", "read (ns)", "P95 (ns)", "P99 (ns)", "write svc (ns)", "IPC", "runtime (us)"
    );
    for scheme in [
        Scheme::Baseline,
        Scheme::SplitReset,
        Scheme::Blp,
        Scheme::LadderHybrid,
    ] {
        let mut b = SystemBuilder::with_tables(scheme, &tables);
        b.core(Box::new(kv_trace(base_page)), 8);
        let r = b.run();
        println!(
            "{:<16}{:>11.1}{:>10.1}{:>10.1}{:>15.1}{:>9.3}{:>12.1}",
            scheme.name(),
            r.avg_read_latency().as_ns(),
            r.read_histogram.percentile(0.95).as_ns(),
            r.read_histogram.percentile(0.99).as_ns(),
            r.avg_write_service().as_ns(),
            r.ipc0(),
            r.end.as_ps() as f64 / 1e6
        );
    }
    println!("\nLADDER keeps checkpoint flushes off the lookup critical path.");
    Ok(())
}
