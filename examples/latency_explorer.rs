//! Latency explorer: sweep the crossbar's location and content dimensions
//! and dump the resulting RESET-latency surfaces — the data behind the
//! paper's Figures 4b and 11, plus an exact-vs-analytic spot check on a
//! downscaled mat using the full MNA solver.
//!
//! Run with: `cargo run --release --example latency_explorer`

use ladder_xbar::{
    calibrate_device_law, solve_reset, CrossbarParams, PatternSpec, ResetOp, SolverKind,
    TableConfig, TimingTable,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CrossbarParams::default();
    let law = calibrate_device_law(&params, 29.0, 658.0);
    println!(
        "device law: t = {:.1} ns x exp(-{:.2}/V x Vd)\n",
        law.c_ns, law.k_per_volt
    );

    // Location sweep at fixed (sparse) content.
    let table = TimingTable::generate(&TableConfig::ladder_default())?;
    println!("latency (ns) over location, sparse content (band 0):");
    for w in [0usize, 255, 511] {
        let row: Vec<String> = [7usize, 255, 511]
            .iter()
            .map(|&c| format!("{:>7.1}", table.lookup_ps(w, c, 0) as f64 / 1000.0))
            .collect();
        println!("  wordline {w:>3}: cols [7, 255, 511] -> {}", row.join(" "));
    }

    // Content sweep at the far corner.
    println!("\nlatency (ns) over content at the far corner:");
    for ones in [0usize, 64, 128, 256, 384, 512] {
        println!(
            "  C^w_lrs {ones:>3} -> {:>7.1}",
            table.lookup_ps(511, 511, ones) as f64 / 1000.0
        );
    }

    // Exact MNA cross-check on a small mat: the analytic estimate used for
    // table generation must be conservative (never reports more voltage
    // than the exact solve).
    let small = CrossbarParams::with_size(48, 48);
    println!("\nMNA vs analytic on a 48x48 mat (target at the far corner):");
    for ones in [0usize, 24, 48] {
        let grid = PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(48, 48, 47, &[47]);
        let op = ResetOp::new(47, vec![47]);
        let exact = solve_reset(&small, &grid, &op, SolverKind::LineRelaxation)?.min_target_vd();
        let approx = ladder_xbar::analytic::estimate_vd(
            &small,
            &ladder_xbar::analytic::OperatingPoint {
                target_wl: 47,
                target_bls: vec![47],
                wl_ones: ones,
                bl_ones: 48,
            },
        )[0]
        .1;
        println!("  wl_ones {ones:>2}: exact Vd = {exact:.3} V, analytic = {approx:.3} V");
        assert!(
            approx <= exact + 0.02,
            "analytic estimate must stay conservative"
        );
    }
    Ok(())
}
