# Developer entry points. `just verify` is the gate every change must pass.

# Build + test + lint, all offline (the workspace has no external deps).
verify:
    ./scripts/verify.sh

build:
    cargo build --release --workspace --offline

test:
    cargo test -q --workspace --offline

clippy:
    cargo clippy --workspace --all-targets --offline -- -D warnings

# Project-invariant static analysis: per-file rules (determinism,
# accounting safety, panic policy, bench-binary conformance) plus the
# cross-crate semantic pass (fast/reference twins, Mergeable coverage,
# time-unit mixing, counter overflow policy, dead pragmas). `--json`,
# `--sarif`, `--stats` and `--list-rules` are also available on the
# binary; see DESIGN.md §11 and §16.
lint:
    cargo run --release -q -p ladder-lint --offline -- --root .

# Machine-readable lint report for CI annotation: SARIF 2.1.0 into
# results/lint.sarif (written even when findings exist; the recipe still
# fails on findings so gates behave like `just lint`).
lint-sarif:
    mkdir -p results
    cargo run --release -q -p ladder-lint --offline -- --root . --sarif > results/lint.sarif

# Run the criterion-shim benches once each, which also enforces the
# tracing disabled-path allocation gate (trace_overhead).
bench-check:
    cargo test -q -p ladder-bench --benches --offline

# Regenerate the golden trace digests (monolithic and sharded) after an
# intentional simulator change (commit the resulting tests/golden/ diff).
regen-golden:
    GOLDEN_REGEN=1 cargo test -q --offline --test golden_trace -- --nocapture
    GOLDEN_REGEN=1 cargo test -q --offline --test shard_determinism -- --nocapture
    GOLDEN_REGEN=1 cargo test -q --offline --test service_determinism -- --nocapture
    GOLDEN_REGEN=1 cargo test -q --offline --test lifetime_determinism -- --nocapture

# Sharded scale-out smoke: the interleave sweep (merged trace digests
# included) must be bit-identical across worker counts.
shards:
    cargo build --release -p ladder-bench --offline
    a=$$(./target/release/interleave --quick --topology 4x2 --jobs 1 2>/dev/null); \
    b=$$(./target/release/interleave --quick --topology 4x2 --jobs 4 2>/dev/null); \
    [ "$$a" = "$$b" ] && echo "shards: jobs-invariant OK"
    cargo test -q --offline --test shard_determinism

# Regenerate the paper's main evaluation (set jobs, e.g. `just main-eval 8`).
main-eval jobs="4":
    cargo run --release -p ladder-bench --bin main_eval -- --jobs {{jobs}}

# Quick-mode smoke run of every figure/table binary (what verify.sh runs
# after the test suite).
smoke:
    cargo build --release -p ladder-bench --offline
    for bin in fig2 fig4b fig11 fig15 main_eval lifetime variability tables \
               ablations crash mna_table extension faults interleave service \
               lifetime_campaign hotloop; do \
        echo "-> $bin"; \
        ./target/release/$bin --quick --jobs 2 >/dev/null; \
    done

# Hot-loop smoke: the fast/reference equivalence battery plus the hotloop
# throughput bench in --quick mode (the bench exits non-zero if the
# calendar and heap queue backends ever produce different trace digests).
hotloop:
    cargo build --release -p ladder-bench --offline
    cargo test -q --offline --test hotloop_equivalence
    ./target/release/hotloop --quick --jobs 2

# Open-loop tail-latency SLO sweep: offered load x arrival process x
# scheme, per-tenant p50/p99/p999 report per cell (see EXPERIMENTS.md).
# Extra flags pass through, e.g. `just slo "--load 2,8 --tenants 5"`.
slo extra="":
    cargo run --release -p ladder-bench --bin service --offline -- --quick {{extra}}

# Multi-year device-lifetime campaign: write-skew x BER x remap backend x
# code scheme, one CSV row per cell (see EXPERIMENTS.md). Extra flags
# pass through, e.g. `just lifetime-campaign "--zipf 0.5 --topology 4x2"`.
lifetime-campaign extra="":
    cargo run --release -p ladder-bench --bin lifetime_campaign --offline -- --quick {{extra}}
