//! The hot-loop equivalence battery: every fast path introduced by the
//! performance overhaul (SWAR bit kernels, quantized timing-table lookup,
//! calendar event queue) is proven bit-identical to its retained reference
//! implementation — on arbitrary inputs via the offline proptest shim, and
//! end-to-end via a differential full quick run on both queue backends.
//!
//! See `DESIGN.md` §15 for the fast-path/reference-path discipline.

use ladder::core::PartialCounters;
use ladder::reram::{bits, EventQueue, Instant, QueueBackend};
use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{run_sim, Scheme, SimConfig};
use ladder::xbar::{TableConfig, TimingTable};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = [u8; 64]> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut a = [0u8; 64];
        a.copy_from_slice(&v);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- SWAR kernels ≡ byte-wise reference on arbitrary LineData ----

    #[test]
    fn swar_popcount_matches_reference(line in arb_line()) {
        prop_assert_eq!(bits::ones(&line), bits::reference::ones(&line));
    }

    #[test]
    fn swar_xor_delta_matches_reference(a in arb_line(), b in arb_line()) {
        prop_assert_eq!(bits::xor_ones(&a, &b), bits::reference::xor_ones(&a, &b));
        prop_assert_eq!(bits::delta_ones(&a, &b), bits::reference::delta_ones(&a, &b));
        // The delta split is consistent with the Hamming distance.
        let (set, reset) = bits::delta_ones(&a, &b);
        prop_assert_eq!(set + reset, bits::xor_ones(&a, &b));
    }

    #[test]
    fn swar_worst_byte_matches_reference(line in arb_line()) {
        prop_assert_eq!(
            bits::worst_byte_ones(&line),
            bits::reference::worst_byte_ones(&line)
        );
    }

    // ---- unaligned tails: arbitrary lengths, not just whole lines ----

    #[test]
    fn swar_kernels_match_reference_on_unaligned_tails(
        a in prop::collection::vec(any::<u8>(), 0..100),
        b in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assert_eq!(bits::ones(&a), bits::reference::ones(&a));
        prop_assert_eq!(bits::worst_byte_ones(&a), bits::reference::worst_byte_ones(&a));
        let n = a.len().min(b.len());
        prop_assert_eq!(
            bits::xor_ones(&a[..n], &b[..n]),
            bits::reference::xor_ones(&a[..n], &b[..n])
        );
        prop_assert_eq!(
            bits::delta_ones(&a[..n], &b[..n]),
            bits::reference::delta_ones(&a[..n], &b[..n])
        );
    }

    // ---- per-mat partial counts go through the worst-byte kernel ----

    #[test]
    fn partial_counters_match_bytewise_definition(line in arb_line()) {
        let pc = PartialCounters::from_line(&line);
        for j in 0..4 {
            let worst = bits::reference::worst_byte_ones(&line[j * 16..(j + 1) * 16]);
            let expect = match worst {
                0..=1 => 1,
                2..=3 => 3,
                4..=5 => 5,
                _ => 8,
            };
            prop_assert_eq!(pc.decode(j), expect);
        }
    }

    #[test]
    fn swar_shift_group_matches_reference(group in any::<u64>(), offset in 0usize..8) {
        let fast = bits::shift_group(group, offset);
        prop_assert_eq!(fast, bits::reference::shift_group(group, offset));
        prop_assert_eq!(bits::unshift_group(fast, offset), group);
        prop_assert_eq!(
            bits::unshift_group(group, offset),
            bits::reference::unshift_group(group, offset)
        );
    }

    // ---- calendar queue ≡ heap on arbitrary schedules ----

    #[test]
    fn calendar_queue_pops_like_the_heap(
        times in prop::collection::vec(0u64..5000, 1..200),
        pop_every in 1usize..8,
    ) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut popped = Vec::new();
        // Interleave schedules and pops so the day cursor, bucket resizes
        // and the FIFO tie-break (coarse times collide often) all engage.
        for (i, &t) in times.iter().enumerate() {
            let at = Instant::from_ps(t);
            cal.schedule(at, i);
            heap.schedule(at, i);
            prop_assert_eq!(cal.len(), heap.len());
            if i % pop_every == pop_every - 1 {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                popped.push(a);
            }
        }
        // Drain the rest: what remains must come out in nondecreasing time
        // order (interleaved pops above may legally precede later-scheduled
        // earlier events, so monotonicity only holds within the drain).
        let mut drained = Vec::new();
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            match a {
                Some(e) => drained.push(e),
                None => break,
            }
        }
        prop_assert_eq!(popped.len() + drained.len(), times.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn calendar_queue_is_fifo_at_equal_times(
        n in 1usize..64,
        at in 0u64..1_000_000,
    ) {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        for i in 0..n {
            q.schedule(Instant::from_ps(at), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((Instant::from_ps(at), i)));
        }
    }

    // ---- quantized table lookup ≡ legacy nested-division lookup ----

    #[test]
    fn quantized_table_lookup_matches_reference(
        wl in 0usize..512,
        bl in 0usize..512,
        c in prop_oneof![Just(0usize), 0usize..=512, Just(usize::MAX)],
    ) {
        let t = shared_table();
        prop_assert_eq!(t.lookup_ps(wl, bl, c), t.lookup_ps_reference(wl, bl, c));
    }
}

/// The default LADDER table, generated once per process (analytic source;
/// generating it per proptest case would dominate the suite's runtime).
fn shared_table() -> &'static TimingTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<TimingTable> = OnceLock::new();
    TABLE.get_or_init(|| TimingTable::generate(&TableConfig::ladder_default()).expect("generate"))
}

/// Differential full quick run: the calendar-queue kernel must reproduce
/// the heap-queue kernel bit-for-bit — same trace digest, same simulated
/// end time, same event and write totals.
#[test]
fn full_quick_run_is_identical_on_both_queue_backends() {
    let ecfg = ExperimentConfig::quick();
    let tables = ecfg.tables();
    for (scheme, bench) in [(Scheme::LadderEst, "astar"), (Scheme::Baseline, "mcf")] {
        let run = |backend: QueueBackend| {
            let cfg = SimConfig::builder()
                .scheme(scheme)
                .workload(Workload::Single(bench))
                .queue(backend)
                .trace(true)
                .build();
            run_sim(&cfg, &ecfg, &tables)
        };
        let cal = run(QueueBackend::Calendar);
        let heap = run(QueueBackend::Heap);
        let label = format!("{}/{bench}", scheme.name());
        assert_eq!(cal.end, heap.end, "{label}: end time diverged");
        assert_eq!(
            cal.events.total(),
            heap.events.total(),
            "{label}: event counts diverged"
        );
        assert_eq!(
            cal.mem.data_writes, heap.mem.data_writes,
            "{label}: write counts diverged"
        );
        let (ct, ht) = (
            cal.trace.as_ref().expect("trace requested"),
            heap.trace.as_ref().expect("trace requested"),
        );
        assert_eq!(ct.records, ht.records, "{label}: record counts diverged");
        assert_eq!(
            ct.digest, ht.digest,
            "{label}: trace digests diverged between queue backends"
        );
    }
}
