//! Sharded-runner regression gate: the merged golden-trace digest of a
//! topology-aware run must be bit-identical at any `--jobs`, for any
//! channel count, and stable run after run.
//!
//! Each channel shard is an independent event-kernel simulation with a
//! shard-salted workload stream; the merged digest folds the per-shard
//! digests in shard order, so it moves whenever any shard's event
//! sequence moves. Like `golden_trace`, an intentional change regenerates
//! the golden file (`GOLDEN_REGEN=1 cargo test --test shard_determinism`)
//! and shows up in review as a one-line diff.

use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{run_sharded, Runner, Scheme, SimConfig, Topology};
use std::path::PathBuf;

/// Channel counts exercised by the gate: monolithic-equivalent, the
/// default module, and a wide module.
const CHANNELS: [usize; 3] = [1, 2, 8];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/shard_trace.digest")
}

fn shard_cfg() -> ExperimentConfig {
    ExperimentConfig {
        instructions_per_core: 40_000,
        ..ExperimentConfig::quick()
    }
}

fn sim_config(channels: usize) -> SimConfig {
    SimConfig::builder()
        .scheme(Scheme::LadderEst)
        .workload(Workload::Single("astar"))
        .topology(Topology::new(channels, 2).expect("static topology"))
        .trace(true)
        .build()
}

/// One line per channel count: merged digest plus headline fold totals.
fn sharded_digest(jobs: usize) -> String {
    let cfg = shard_cfg();
    let tables = cfg.tables();
    let mut out = String::new();
    for channels in CHANNELS {
        let run = run_sharded(
            &sim_config(channels),
            &cfg,
            &tables,
            &Runner::with_jobs(jobs),
        );
        let digest = run.digest.expect("tracing was requested on every shard");
        out.push_str(&format!(
            "{}x2 digest={} records={} writes={} reads={} events={} end={}\n",
            channels,
            digest,
            run.records,
            run.mem.data_writes,
            run.mem.demand_reads,
            run.events.total(),
            run.end.as_ps(),
        ));
    }
    out
}

#[test]
fn merged_shard_digest_is_bit_identical_at_any_jobs() {
    let seq = sharded_digest(1);
    let par = sharded_digest(4);
    assert_eq!(
        seq, par,
        "sharded digests diverged between --jobs 1 and --jobs 4"
    );

    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &seq).unwrap();
        eprintln!("regenerated {}:\n{seq}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `just regen-golden`",
            path.display()
        )
    });
    assert_eq!(
        seq,
        golden,
        "sharded --quick trace diverged from {}; if the simulator change \
         is intentional, run `just regen-golden` and commit the diff",
        path.display()
    );
}

#[test]
fn shards_differ_but_totals_fold_exactly() {
    let cfg = shard_cfg();
    let tables = cfg.tables();
    let run = run_sharded(&sim_config(2), &cfg, &tables, &Runner::sequential());
    // Shard-salted seeds: distinct per-channel streams.
    let digests: Vec<_> = run
        .shards
        .iter()
        .map(|r| r.trace.as_ref().expect("traced").digest)
        .collect();
    assert_ne!(digests[0], digests[1], "shards simulated identical streams");
    // The merged fold covers every shard exactly once.
    assert_eq!(
        run.records,
        run.shards
            .iter()
            .map(|r| r.trace.as_ref().expect("traced").records)
            .sum::<u64>()
    );
    assert_eq!(
        run.events.total(),
        run.shards.iter().map(|r| r.events.total()).sum::<u64>()
    );
}
