//! Property-based tests (proptest) of the [`Mergeable`] contract the
//! observability layer rests on: merging is associative and commutative
//! with `Default` as identity, so a sharded fold over any partition of
//! per-worker parts equals the sequential fold — the reason `--jobs N`
//! reports the same aggregates as `--jobs 1`.

use ladder::reram::{Instant, Picos, Topology};
use ladder::sim::EventCounts;
use ladder::trace::{
    fold, DispatchKind, LatencyHistogram, Mergeable, MetricsRegistry, TenantLatencies, TraceRecord,
    TraceRecorder, TraceTotals,
};
use proptest::prelude::*;

/// Merges by value, returning the result (proptest-friendly shape).
fn merged<M: Mergeable + Clone>(a: &M, b: &M) -> M {
    let mut out = a.clone();
    out.merge_from(b);
    out
}

fn assert_laws<M: Mergeable + Clone + PartialEq + std::fmt::Debug>(a: &M, b: &M, c: &M) {
    assert_eq!(merged(a, b), merged(b, a), "commutativity");
    assert_eq!(
        merged(&merged(a, b), c),
        merged(a, &merged(b, c)),
        "associativity"
    );
    assert_eq!(&merged(a, &M::default()), a, "identity");
}

// --------------------------------------------------------------------------
// Strategies
// --------------------------------------------------------------------------

/// Latency samples bounded so sums cannot overflow over any test fold.
fn arb_hist() -> impl Strategy<Value = LatencyHistogram> {
    prop::collection::vec(0u64..1 << 40, 0..32).prop_map(|samples| {
        let mut h = LatencyHistogram::default();
        for s in samples {
            h.record(Picos::from_ps(s));
        }
        h
    })
}

fn arb_counts() -> impl Strategy<Value = EventCounts> {
    prop::collection::vec(0u64..1 << 32, 9).prop_map(|v| EventCounts {
        core_wake: v[0],
        read_complete: v[1],
        ctrl_work_arrived: v[2],
        ctrl_bank_free: v[3],
        ctrl_queue_slot_free: v[4],
        ctrl_dep_ready: v[5],
        ctrl_mode_switch: v[6],
        ctrl_retry_pulse: v[7],
        request_arrival: v[8],
    })
}

/// Per-tenant latency groups over a tiny tenant space so merges collide.
fn arb_tenants() -> impl Strategy<Value = TenantLatencies> {
    let entry = (0usize..3, 0u64..1 << 40, any::<bool>());
    prop::collection::vec(entry, 0..24).prop_map(|entries| {
        const NAMES: [&str; 3] = ["t0", "t1", "t2"];
        let mut t = TenantLatencies::default();
        for (k, sample, is_read) in entries {
            t.ensure(NAMES[k], (k as u64 + 1) * 1000, k as u64 + 1);
            if is_read {
                t.record_read(NAMES[k], Picos::from_ps(sample));
            } else {
                t.note_write(NAMES[k]);
            }
        }
        t
    })
}

/// Registries over a tiny key space, so merges actually collide on keys.
fn arb_registry() -> impl Strategy<Value = MetricsRegistry> {
    let entry = (0usize..4, 0u64..1 << 32, 0u64..1 << 40);
    prop::collection::vec(entry, 0..16).prop_map(|entries| {
        const KEYS: [&str; 4] = ["writes", "reads", "hits", "latency"];
        let mut reg = MetricsRegistry::new();
        for (k, delta, sample) in entries {
            reg.add(KEYS[k], delta);
            if delta % 2 == 0 {
                reg.observe(KEYS[k], Picos::from_ps(sample));
            }
        }
        reg
    })
}

/// An arbitrary trace record with bounded payloads (sums stay in range).
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let ps = 0u64..1 << 34;
    prop_oneof![
        (0usize..DispatchKind::ALL.len()).prop_map(|i| TraceRecord::KernelDispatch {
            kind: DispatchKind::ALL[i],
        }),
        (
            0u32..1024,
            0u32..1024,
            ps.clone(),
            ps.clone(),
            ps.clone(),
            ps.clone()
        )
            .prop_map(|(wl, bl, t_wr, wait, retry, extra)| {
                let t_wr = Picos::from_ps(t_wr);
                TraceRecord::ResetPulse {
                    kind: ladder::trace::PulseKind::Data,
                    wl,
                    bl,
                    c_lrs: wl % 512,
                    t_wr,
                    queue_wait: Picos::from_ps(wait),
                    retry_time: Picos::from_ps(retry),
                    service: t_wr + Picos::from_ps(retry),
                    t_worst: t_wr + Picos::from_ps(extra),
                    t_loc: t_wr,
                }
            }),
        ps.clone().prop_map(|l| TraceRecord::ReadComplete {
            class: ladder::trace::ReadClass::Demand,
            latency: Picos::from_ps(l),
        }),
        (0u32..64, 0u32..64, 0u32..8).prop_map(|(h, m, w)| TraceRecord::CacheAccess {
            hits: h,
            misses: m,
            writebacks: w,
        }),
        (1u32..4, 0u32..32, ps).prop_map(|(a, f, p)| TraceRecord::VerifyRetry {
            attempt: a,
            failed_bits: f,
            pulse: Picos::from_ps(p),
        }),
        (1u32..8).prop_map(|bits| TraceRecord::EccCorrection { bits }),
        Just(TraceRecord::Uncorrectable),
    ]
}

/// Totals accumulated the way production code accumulates them: through a
/// recorder.
fn totals_of(records: &[TraceRecord]) -> TraceTotals {
    let mut rec = TraceRecorder::with_capacity(4);
    for (i, &r) in records.iter().enumerate() {
        rec.record(Instant::from_ps(i as u64), r);
    }
    *rec.totals()
}

fn arb_totals() -> impl Strategy<Value = TraceTotals> {
    prop::collection::vec(arb_record(), 0..24).prop_map(|rs| totals_of(&rs))
}

// --------------------------------------------------------------------------
// Properties
// --------------------------------------------------------------------------

proptest! {
    #[test]
    fn counters_obey_the_merge_laws(a in 0u64..1 << 62, b in 0u64..1 << 62, c in 0u64..1 << 62) {
        assert_laws(&a, &b, &c);
    }

    #[test]
    fn histograms_obey_the_merge_laws(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        assert_laws(&a, &b, &c);
    }

    #[test]
    fn registries_obey_the_merge_laws(a in arb_registry(), b in arb_registry(), c in arb_registry()) {
        assert_laws(&a, &b, &c);
    }

    #[test]
    fn event_counts_obey_the_merge_laws(a in arb_counts(), b in arb_counts(), c in arb_counts()) {
        assert_laws(&a, &b, &c);
    }

    #[test]
    fn trace_totals_obey_the_merge_laws(a in arb_totals(), b in arb_totals(), c in arb_totals()) {
        assert_laws(&a, &b, &c);
    }

    #[test]
    fn tenant_latencies_obey_the_merge_laws(a in arb_tenants(), b in arb_tenants(), c in arb_tenants()) {
        assert_laws(&a, &b, &c);
    }

    /// The SLO quantiles read off a sharded fold equal the quantiles of
    /// the concatenated sample stream: partitioning reads across shards
    /// and merging the per-shard histograms loses nothing a percentile
    /// query can see.
    #[test]
    fn folded_histogram_quantiles_match_the_concatenated_stream(
        samples in prop::collection::vec(0u64..1 << 40, 1..96),
        shards in 1usize..6,
    ) {
        let mut whole = LatencyHistogram::default();
        for &s in &samples {
            whole.record(Picos::from_ps(s));
        }

        let mut parts = vec![LatencyHistogram::default(); shards];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(Picos::from_ps(s));
        }
        let folded: LatencyHistogram = fold(parts);

        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(folded.percentile(q), whole.percentile(q), "q = {}", q);
        }
        prop_assert_eq!(folded.mean(), whole.mean());
        prop_assert_eq!(folded.max(), whole.max());
        prop_assert_eq!(folded.count(), whole.count());
    }

    /// `Topology`'s `Display` output parses back to the same value — the
    /// contract `--topology CxR` round-trips through logs and golden
    /// files.
    #[test]
    fn topology_display_parse_round_trips(channels in 1usize..64, ranks in 1usize..16) {
        let t = Topology::new(channels, ranks).expect("nonzero dimensions");
        let shown = t.to_string();
        prop_assert_eq!(shown.parse::<Topology>().expect("display output parses"), t);
    }

    /// A sharded fold over any partition equals the sequential fold — the
    /// `--jobs N == --jobs 1` determinism argument in one property. Shards
    /// are assigned round-robin, so every shard count exercises both
    /// orderings and interleavings.
    #[test]
    fn sharded_fold_equals_sequential_fold(
        records in prop::collection::vec(arb_record(), 0..64),
        shards in 1usize..6,
    ) {
        let sequential = totals_of(&records);

        let mut parts: Vec<Vec<TraceRecord>> = vec![Vec::new(); shards];
        for (i, &r) in records.iter().enumerate() {
            parts[i % shards].push(r);
        }
        let folded: TraceTotals = fold(parts.iter().map(|p| totals_of(p)));

        prop_assert_eq!(sequential, folded);

        // The same fold expressed through histograms: per-shard demand-read
        // latency histograms merge into the sequential one.
        let hist_of = |rs: &[TraceRecord]| {
            let mut h = LatencyHistogram::default();
            for r in rs {
                if let TraceRecord::ReadComplete { latency, .. } = r {
                    h.record(*latency);
                }
            }
            h
        };
        let merged_h: LatencyHistogram = fold(parts.iter().map(|p| hist_of(p)));
        prop_assert_eq!(hist_of(&records), merged_h);
    }
}
