//! The fault subsystem's two contracts at the whole-system level: an
//! inert (rate-0) fault model is bit-identical to the no-fault path, and a
//! nonzero rate degrades runs deterministically at any worker count.

use ladder::faults::FaultConfig;
use ladder::sim::experiments::{error_rate_sweep, ExperimentConfig, Workload};
use ladder::sim::{run_sim, RunResult, Scheme, SimConfig};
use ladder::Runner;
use proptest::prelude::*;

fn tiny_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        instructions_per_core: 30_000,
        seed,
        ..ExperimentConfig::default()
    }
}

fn assert_bit_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.mem, b.mem, "controller stats diverged");
    assert_eq!(a.end, b.end, "final simulated time diverged");
    assert_eq!(a.events, b.events, "event kernel dispatch counts diverged");
    assert_eq!(a.cores.len(), b.cores.len());
    for (x, y) in a.cores.iter().zip(&b.cores) {
        assert_eq!(x.retired, y.retired);
        assert_eq!(x.finish, y.finish);
        assert_eq!(x.ipc.to_bits(), y.ipc.to_bits());
    }
    assert_eq!(a.summary(), b.summary(), "human-readable reports diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: installing the fault model with every rate at zero leaves
    /// the run bit-identical to not installing it, for any seed and
    /// fault-model seed — no extra latency, no extra events, identical
    /// summary.
    #[test]
    fn rate_zero_is_bit_identical_to_no_faults(
        seed in 1u64..1000,
        fault_seed in 0u64..1000,
        scheme_idx in 0usize..3,
    ) {
        let scheme = [Scheme::Baseline, Scheme::LadderEst, Scheme::LadderHybrid][scheme_idx];
        let cfg = tiny_cfg(seed);
        let tables = cfg.tables();
        let w = Workload::Single("astar");
        let plain = run_sim(&SimConfig::new(scheme, w), &cfg, &tables);
        let inert = run_sim(
            &SimConfig::builder()
                .scheme(scheme)
                .workload(w)
                .faults(FaultConfig::new(fault_seed))
                .build(),
            &cfg,
            &tables,
        );
        assert_bit_identical(&plain, &inert);
        let f = inert.faults.expect("model installed");
        prop_assert_eq!(f.data_writes, inert.mem.data_writes);
        prop_assert_eq!(f.transient_bit_errors, 0);
        prop_assert_eq!(f.stuck_cells, 0);
        prop_assert_eq!(inert.mem.failed_verifies, 0);
        prop_assert_eq!(inert.events.ctrl_retry_pulse, 0);
    }
}

#[test]
fn nonzero_rate_degrades_and_accounts() {
    let cfg = tiny_cfg(2021);
    let tables = cfg.tables();
    let w = Workload::Single("lbm");
    let plain = run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables);
    let faulty = run_sim(
        &SimConfig::builder()
            .scheme(Scheme::LadderHybrid)
            .workload(w)
            .faults(FaultConfig::with_ber(2021, 5e-3))
            .build(),
        &cfg,
        &tables,
    );
    assert!(
        faulty.mem.failed_verifies > 0,
        "5e-3 BER must trip verifies"
    );
    assert_eq!(faulty.mem.retries_issued, faulty.mem.failed_verifies);
    assert_eq!(faulty.events.ctrl_retry_pulse, faulty.mem.retries_issued);
    assert!(
        faulty.end > plain.end,
        "retry pulses must lengthen the run: {} vs {}",
        faulty.end,
        plain.end
    );
    assert!(faulty.ipc0() < plain.ipc0());
    let f = faulty.faults.expect("model installed");
    assert!(f.transient_bit_errors > 0);
    assert!(faulty.summary().contains("transient bit errors"));
    assert!(
        plain.summary()
            == run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables).summary()
    );
}

#[test]
fn error_rate_sweep_is_identical_at_any_job_count() {
    let cfg = tiny_cfg(7);
    let bers = [1e-3, 5e-3];
    let w = Workload::Single("mcf");
    let seq = error_rate_sweep(&cfg, w, &bers, &Runner::with_jobs(1));
    let par = error_rate_sweep(&cfg, w, &bers, &Runner::with_jobs(4));
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.ber.to_bits(), b.ber.to_bits());
        assert_eq!(
            a.ipc.to_bits(),
            b.ipc.to_bits(),
            "{}: IPC diverged",
            a.scheme
        );
        assert_eq!(a.ipc_vs_fault_free.to_bits(), b.ipc_vs_fault_free.to_bits());
        assert_eq!(
            a.retries_per_kilowrite.to_bits(),
            b.retries_per_kilowrite.to_bits()
        );
        assert_eq!(a.lifetime_s.to_bits(), b.lifetime_s.to_bits());
        assert_eq!(a.faults, b.faults, "{}: fault counters diverged", a.scheme);
    }
    // Degradation is monotone in BER for every scheme.
    let ipc_at = |ber: f64, scheme: Scheme| {
        seq.iter()
            .find(|r| r.ber == ber && r.scheme == scheme)
            .expect("row present")
            .ipc
    };
    for scheme in [Scheme::Baseline, Scheme::LadderEst, Scheme::LadderHybrid] {
        assert!(
            ipc_at(5e-3, scheme) < ipc_at(1e-3, scheme),
            "{scheme}: higher BER must cost IPC"
        );
    }
}

#[test]
fn fault_sweep_output_is_byte_stable_across_runs() {
    // The satellite contract behind the `hash-iter` lint rule: two fully
    // independent sweeps (fresh fault models, wear maps and retire pools)
    // must render byte-for-byte identical output. Before the
    // BTreeMap conversion of the fold/export paths this held only by
    // hasher-seed luck.
    let cfg = tiny_cfg(11);
    let bers = [1e-3, 5e-3];
    let w = Workload::Single("astar");
    let render = |rows: &[ladder::sim::experiments::FaultSweepRow]| {
        rows.iter()
            .map(|r| {
                format!(
                    "{} ber={:e} ipc={} rel={} rpk={} rtf={} life={} vs={} faults={:?}\n",
                    r.scheme,
                    r.ber,
                    r.ipc.to_bits(),
                    r.ipc_vs_fault_free.to_bits(),
                    r.retries_per_kilowrite.to_bits(),
                    r.retry_time_frac.to_bits(),
                    r.lifetime_s.to_bits(),
                    r.lifetime_vs_fault_free.to_bits(),
                    r.faults,
                )
            })
            .collect::<String>()
    };
    let first = render(&error_rate_sweep(&cfg, w, &bers, &Runner::with_jobs(2)));
    let second = render(&error_rate_sweep(&cfg, w, &bers, &Runner::with_jobs(2)));
    assert!(!first.is_empty());
    assert_eq!(first, second, "fault-sweep output is not byte-stable");
}
