//! Open-loop service-mode regression gate: the per-tenant SLO statistics
//! and the merged golden-trace digest of a service sweep must be
//! bit-identical at any `--jobs`, and stable run after run.
//!
//! Service mode replaces the closed-loop cores with timestamped
//! `RequestArrival` events, so this gate freezes a different event
//! stream than `golden_trace`/`shard_determinism` (which cover the
//! legacy closed-loop path). Like those gates, an intentional simulator
//! change regenerates the golden file
//! (`GOLDEN_REGEN=1 cargo test --test service_determinism`) and shows up
//! in review as a one-line diff.

use ladder::reram::Instant;
use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{
    run_sharded, run_sim, ArrivalKind, Runner, Scheme, ServiceConfig, SimConfig, Topology,
};
use ladder::trace::SloReport;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/service_trace.digest")
}

fn service_ecfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn sim_config(arrival: ArrivalKind, sharded: bool) -> SimConfig {
    let service = ServiceConfig::builder()
        .arrival(arrival)
        .load(6.0)
        .requests(3_000)
        .build();
    let b = SimConfig::builder()
        .scheme(Scheme::LadderEst)
        .workload(Workload::Single("astar"))
        .service(service)
        .trace(true);
    if sharded {
        b.topology(Topology::new(2, 2).expect("static topology"))
            .build()
    } else {
        b.build()
    }
}

/// One line per sweep cell: merged digest, headline service counters,
/// and the per-tenant p99 tail — everything an SLO report is built from.
fn service_digest(jobs: usize) -> String {
    let ecfg = service_ecfg();
    let tables = ecfg.tables();
    let runner = Runner::with_jobs(jobs);
    let mut out = String::new();
    for arrival in ArrivalKind::ALL {
        for sharded in [false, true] {
            let cfg = sim_config(arrival, sharded);
            let (service, digest, end) = if sharded {
                let run = run_sharded(&cfg, &ecfg, &tables, &runner);
                (run.service, run.digest, run.end)
            } else {
                let r = run_sim(&cfg, &ecfg, &tables);
                (r.service, r.trace.as_ref().map(|t| t.digest), r.end)
            };
            let svc = service.expect("service mode returns stats");
            let digest = digest.expect("tracing was requested");
            let report = SloReport::build(&svc.tenants, end.duration_since(Instant::ZERO));
            let tails: Vec<String> = report
                .rows
                .iter()
                .map(|r| format!("{}:p99={}", r.tenant, r.p99.as_ps()))
                .collect();
            out.push_str(&format!(
                "{}/{} digest={} arrivals={} reads={} writes={} deferred={} end={} {}\n",
                arrival.name(),
                if sharded { "2x2" } else { "mono" },
                digest,
                svc.arrivals,
                svc.reads_completed,
                svc.writes_accepted,
                svc.deferred,
                end.as_ps(),
                tails.join(" "),
            ));
        }
    }
    out
}

#[test]
fn service_sweep_is_bit_identical_at_any_jobs() {
    let seq = service_digest(1);
    let par = service_digest(4);
    assert_eq!(
        seq, par,
        "service sweep diverged between --jobs 1 and --jobs 4"
    );

    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &seq).unwrap();
        eprintln!("regenerated {}:\n{seq}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `just regen-golden`",
            path.display()
        )
    });
    assert_eq!(
        seq,
        golden,
        "service sweep diverged from {}; if the simulator change is \
         intentional, run `just regen-golden` and commit the diff",
        path.display()
    );
}

#[test]
fn service_mode_services_every_request() {
    let ecfg = service_ecfg();
    let tables = ecfg.tables();
    let r = run_sim(&sim_config(ArrivalKind::Poisson, false), &ecfg, &tables);
    let svc = r.service.expect("service mode returns stats");
    assert_eq!(svc.arrivals, 3_000);
    assert_eq!(svc.reads_completed + svc.writes_accepted, 3_000);
    // Three tenants in the standard mix, each with service recorded.
    assert_eq!(svc.tenants.iter().count(), 3);
    for (name, g) in svc.tenants.iter() {
        assert!(
            g.reads.count() + g.writes > 0,
            "tenant {name} was never served"
        );
    }
}
