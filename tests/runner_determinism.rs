//! The tentpole guarantee of the parallel runner: executing the main
//! evaluation with several workers produces figures bit-identical to a
//! sequential run — parallelism buys throughput, never changes results.

use ladder::sim::experiments::{ExperimentConfig, FigureSeries, MainEval, Workload};
use ladder::sim::Scheme;
use ladder::Runner;

fn assert_series_identical(a: &FigureSeries, b: &FigureSeries) {
    // Byte-identical renderings...
    assert_eq!(a.to_csv(), b.to_csv(), "CSV for {} diverged", a.metric);
    // ...backed by bit-exact numerics, not just equal printed forms.
    assert_eq!(a.rows.len(), b.rows.len());
    for ((la, va), (lb, vb)) in a.rows.iter().zip(&b.rows) {
        assert_eq!(la, lb);
        for (x, y) in va.iter().zip(vb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{}/{la}: {x} != {y}", a.metric);
        }
    }
    for (x, y) in a.average.iter().zip(&b.average) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn parallel_main_eval_is_bit_identical_to_sequential() {
    let cfg = ExperimentConfig::quick();
    let schemes = [Scheme::Baseline, Scheme::Blp, Scheme::LadderHybrid];
    let seq = MainEval::builder(&cfg)
        .schemes(&schemes)
        .run(&Runner::with_jobs(1));
    let par = MainEval::builder(&cfg)
        .schemes(&schemes)
        .run(&Runner::with_jobs(4));
    eprintln!("jobs=1: {}", seq.stats.summary());
    eprintln!("jobs=4: {}", par.stats.summary());

    assert_eq!(seq.stats.jobs, par.stats.jobs, "same batch either way");
    assert_eq!(par.stats.workers, 4);
    // The event kernel itself is deterministic: the same batch dispatches
    // exactly the same number of each event kind at any worker count, and
    // simulates the same total time.
    assert_eq!(
        seq.stats.events, par.stats.events,
        "kernel dispatch counts diverged"
    );
    assert!(
        seq.stats.events.total() > 0,
        "kernel counters were never absorbed"
    );
    assert_eq!(seq.stats.sim_time, par.stats.sim_time);
    assert_series_identical(&seq.fig16_speedup(), &par.fig16_speedup());
    assert_series_identical(&seq.fig12_write_service(), &par.fig12_write_service());
    assert_series_identical(&seq.fig13_read_latency(), &par.fig13_read_latency());
    for (a, b) in seq.workloads.iter().zip(&par.workloads) {
        assert_eq!(a.workload, b.workload);
        for (x, y) in a.speedups.iter().zip(&b.speedups) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{:?} speedups diverged",
                a.workload
            );
        }
    }
}

#[test]
fn parallel_sweep_helpers_are_deterministic() {
    let cfg = ExperimentConfig {
        instructions_per_core: 30_000,
        ..ExperimentConfig::default()
    };
    let w = Workload::Single("astar");
    let seq = ladder::sim::ablations::shifting_ablation(&cfg, w, &Runner::with_jobs(1));
    let par = ladder::sim::ablations::shifting_ablation(&cfg, w, &Runner::with_jobs(3));
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        assert_eq!(a.extra_reads.to_bits(), b.extra_reads.to_bits());
    }
}
