//! Long-haul metadata consistency: after many writes through the full
//! controller, the LRS-metadata must still bound (Est/Hybrid) or exactly
//! match (Basic) the true per-wordline LRS populations.

use ladder::core::{exact_cw_lrs, LadderConfig, LadderEngine, LadderVariant};
use ladder::cpu::{TraceOp, TraceSource};
use ladder::reram::{AddressMap, Geometry, LineData, LineStore};
use ladder::workloads::{profile_of, WorkloadGen};

fn run_writes(variant: LadderVariant, events: u64) -> (LadderEngine, LineStore, Vec<u64>) {
    let map = AddressMap::new(Geometry::default());
    let mut cfg = LadderConfig::for_variant(variant);
    // Disable the transforms so the stored image equals the logical data
    // and exact counters are directly comparable.
    cfg.fnw = ladder::core::FnwPolicy::Disabled;
    cfg.shifting = false;
    let mut engine = LadderEngine::new(cfg, map);
    let mut store = LineStore::new();
    let base = engine.layout().first_data_page().max(40_000);
    let mut gen = WorkloadGen::new(profile_of("cannl"), 99, base, 5_000, events);
    let mut touched = Vec::new();
    while let Some(ev) = gen.next_event() {
        if let TraceOp::Write { addr, data } = ev.op {
            let prep = engine.prepare_write(addr);
            assert!(!prep.spilled, "spills need the controller's retry loop");
            engine.service_write(addr, *data, &mut store);
            touched.push(addr.page());
        }
    }
    touched.sort_unstable();
    touched.dedup();
    (engine, store, touched)
}

fn exact_of_page(store: &LineStore, page: u64) -> u16 {
    let images: Vec<LineData> = (0..64)
        .map(|i| store.read(ladder::reram::LineAddr::new(page * 64 + i)))
        .collect();
    exact_cw_lrs(images.iter())
}

#[test]
fn basic_counters_stay_exact_over_thousands_of_writes() {
    let (engine, store, pages) = run_writes(LadderVariant::Basic, 20_000);
    assert!(pages.len() > 50, "workload should touch many pages");
    for &page in &pages {
        let addr = ladder::reram::LineAddr::new(page * 64);
        let counted = engine.peek_cw(addr, &store);
        let exact = exact_of_page(&store, page);
        assert_eq!(counted, exact, "page {page}: counter drift");
    }
}

#[test]
fn est_estimates_always_bound_exact_counts() {
    let (engine, store, pages) = run_writes(LadderVariant::Est, 20_000);
    for &page in &pages {
        let addr = ladder::reram::LineAddr::new(page * 64);
        let est = engine.peek_cw(addr, &store);
        let exact = exact_of_page(&store, page);
        assert!(
            est >= exact,
            "page {page}: estimate {est} below exact {exact}"
        );
    }
}

#[test]
fn hybrid_estimates_always_bound_exact_counts() {
    let (engine, store, pages) = run_writes(LadderVariant::Hybrid, 20_000);
    for &page in &pages {
        let addr = ladder::reram::LineAddr::new(page * 64);
        let est = engine.peek_cw(addr, &store);
        let exact = exact_of_page(&store, page);
        assert!(
            est >= exact,
            "page {page}: estimate {est} below exact {exact}"
        );
    }
}

#[test]
fn transforms_preserve_read_contents_over_a_long_run() {
    // Full transforms on: whatever is written must read back identically.
    let map = AddressMap::new(Geometry::default());
    let mut engine = LadderEngine::new(LadderConfig::for_variant(LadderVariant::Est), map);
    let mut store = LineStore::new();
    let base = engine.layout().first_data_page().max(40_000);
    let mut gen = WorkloadGen::new(profile_of("astar"), 7, base, 2_000, 8_000);
    let mut last_written: std::collections::HashMap<u64, LineData> =
        std::collections::HashMap::new();
    while let Some(ev) = gen.next_event() {
        if let TraceOp::Write { addr, data } = ev.op {
            engine.prepare_write(addr);
            engine.service_write(addr, *data, &mut store);
            last_written.insert(addr.raw(), *data);
        }
    }
    assert!(last_written.len() > 1000);
    for (&raw, expect) in &last_written {
        let addr = ladder::reram::LineAddr::new(raw);
        assert_eq!(
            &engine.read_line(addr, &store),
            expect,
            "line {raw:#x} corrupted"
        );
    }
}

#[test]
fn layout_wordline_agrees_with_the_address_map() {
    // The metadata layout computes page→wordline independently of the
    // address map; the two must agree everywhere or Hybrid would apply the
    // wrong counter precision.
    use ladder::core::{MetadataFormat, MetadataLayout};
    let geometry = Geometry::default();
    let map = AddressMap::new(geometry.clone());
    let layout = MetadataLayout::new(
        &geometry,
        MetadataFormat::MultiGranularity {
            low_precision_rows: 128,
        },
    );
    let mut x = 0xABCDu64;
    for _ in 0..5000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let page = x % geometry.pages() as u64;
        let decoded = map.decode(ladder::reram::LineAddr::new(page * 64)).wordline as u64;
        assert_eq!(
            layout.wordline_of_page(page),
            decoded,
            "page {page}: layout and address map disagree on the wordline"
        );
    }
}

#[test]
fn full_page_shifting_can_beat_accurate_counting() {
    // The Fig. 15b effect in steady state: on a fully-written page of
    // clustered data, the shifted estimate drops BELOW the accurate counter
    // of the unshifted layout, because shifting flattens the hot mats that
    // accurate counting faithfully reports.
    use ladder::core::{estimate_cw_lrs, shift_line, PartialCounters};
    use ladder::workloads::{generate_line, DataSpec, PagePattern, SplitMix64};

    let prof = profile_of("astar");
    let spec = DataSpec {
        bit_density: prof.bit_density,
        clustering: prof.clustering,
        compressible_fraction: 0.0, // pure clustered lines
    };
    let pattern = PagePattern::for_page(77, 1);
    let mut rng = SplitMix64::new(5);
    let lines: Vec<LineData> = (0..64)
        .map(|_| generate_line(&spec, &pattern, &mut rng))
        .collect();
    let accurate = exact_cw_lrs(lines.iter());
    let shifted: Vec<LineData> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| shift_line(l, i % 64))
        .collect();
    let est_shifted = estimate_cw_lrs(shifted.iter().map(PartialCounters::from_line), 0);
    assert!(
        est_shifted < accurate,
        "shifted estimate {est_shifted} must beat accurate {accurate} on clustered pages"
    );
    // And it still upper-bounds the exact count of what is actually stored.
    assert!(est_shifted >= exact_cw_lrs(shifted.iter()));
}
