//! Lifetime-campaign regression gate: fault-injected, wear-tracked runs
//! under every coding scheme × remap backend must be bit-identical at any
//! `--jobs`, and stable run after run.
//!
//! This gate freezes the coding/remap pipeline (location channel → code
//! scheme → remap backend) that `golden_trace`/`service_determinism` do
//! not exercise: every cell runs with fault injection, wear tracking and
//! a non-default scheme or backend, in both the monolithic and the 2x2
//! sharded shape. An intentional simulator change regenerates the golden
//! file (`GOLDEN_REGEN=1 cargo test --test lifetime_determinism`) and
//! shows up in review as a one-line diff.

use ladder::faults::FaultConfig;
use ladder::sim::experiments::{lifetime_campaign, CampaignSpec, ExperimentConfig, Workload};
use ladder::sim::{
    run_sharded, run_sim, CodingKind, RemapKind, Runner, Scheme, ServiceConfig, SimConfig, Topology,
};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lifetime_trace.digest")
}

fn lifetime_ecfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn sim_config(coding: CodingKind, remap: RemapKind, sharded: bool) -> SimConfig {
    let service = ServiceConfig::builder()
        .load(4.0)
        .zipf_theta(0.99)
        .requests(600)
        .build();
    let b = SimConfig::builder()
        .scheme(Scheme::LadderEst)
        .workload(Workload::Single("astar"))
        .service(service)
        .faults(FaultConfig::with_ber(lifetime_ecfg().seed, 1e-3))
        .coding(coding)
        .remap(remap)
        .track_wear(true)
        .trace(true);
    if sharded {
        b.topology(Topology::new(2, 2).expect("static topology"))
            .build()
    } else {
        b.build()
    }
}

/// One line per sweep cell: merged digest plus the wear, fault and
/// coding counters a lifetime figure is built from.
fn lifetime_digest(jobs: usize) -> String {
    let ecfg = lifetime_ecfg();
    let tables = ecfg.tables();
    let runner = Runner::with_jobs(jobs);
    let mut out = String::new();
    for coding in CodingKind::ALL {
        for remap in RemapKind::ALL {
            for sharded in [false, true] {
                let cfg = sim_config(coding, remap, sharded);
                let (digest, end, wear, coding_stats, faults) = if sharded {
                    let run = run_sharded(&cfg, &ecfg, &tables, &runner);
                    let wear = run
                        .shards
                        .iter()
                        .map(|r| {
                            r.wear
                                .as_ref()
                                .expect("wear tracking on")
                                .with(|w| (w.total_writes(), w.worst_line_writes()))
                        })
                        .fold((0, 0), |(t, w), (st, sw)| (t + st, w.max(sw)));
                    (run.digest, run.end, wear, run.coding, run.faults)
                } else {
                    let r = run_sim(&cfg, &ecfg, &tables);
                    let wear = r
                        .wear
                        .as_ref()
                        .expect("wear tracking on")
                        .with(|w| (w.total_writes(), w.worst_line_writes()));
                    (
                        r.trace.as_ref().map(|t| t.digest),
                        r.end,
                        wear,
                        r.coding,
                        r.faults,
                    )
                };
                let digest = digest.expect("tracing was requested");
                let c = coding_stats.expect("fault injection returns coding stats");
                let f = faults.expect("fault injection returns fault stats");
                out.push_str(&format!(
                    "{}/{}/{} digest={} writes={} worst={} corrected={} \
                     uncorrectable={} remaps={} wa={} transient={} end={}\n",
                    coding.name(),
                    remap.name(),
                    if sharded { "2x2" } else { "mono" },
                    digest,
                    wear.0,
                    wear.1,
                    c.total_corrected_bits(),
                    c.total_uncorrectable(),
                    c.remaps,
                    c.wa_millionths,
                    f.transient_bit_errors,
                    end.as_ps(),
                ));
            }
        }
    }
    out
}

#[test]
fn lifetime_sweep_is_bit_identical_at_any_jobs() {
    let seq = lifetime_digest(1);
    let par = lifetime_digest(4);
    assert_eq!(
        seq, par,
        "lifetime sweep diverged between --jobs 1 and --jobs 4"
    );

    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &seq).unwrap();
        eprintln!("regenerated {}:\n{seq}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `just regen-golden`",
            path.display()
        )
    });
    assert_eq!(
        seq,
        golden,
        "lifetime sweep diverged from {}; if the simulator change is \
         intentional, run `just regen-golden` and commit the diff",
        path.display()
    );
}

#[test]
fn campaign_rows_are_jobs_invariant() {
    let ecfg = lifetime_ecfg();
    let runner1 = Runner::with_jobs(1);
    let runner4 = Runner::with_jobs(4);
    let spec = CampaignSpec {
        skews: vec![0.99],
        bers: vec![1e-3],
        requests: 300,
        ..CampaignSpec::standard(true)
    };
    let rows1: Vec<String> = lifetime_campaign(&ecfg, &spec, &runner1)
        .iter()
        .map(|r| r.csv_line())
        .collect();
    let rows4: Vec<String> = lifetime_campaign(&ecfg, &spec, &runner4)
        .iter()
        .map(|r| r.csv_line())
        .collect();
    assert_eq!(rows1.len(), spec.cells());
    assert_eq!(rows1, rows4, "campaign CSV diverged between --jobs 1 and 4");
}

#[test]
fn campaign_projects_multi_year_lifetimes() {
    let ecfg = lifetime_ecfg();
    let runner = Runner::with_jobs(4);
    let spec = CampaignSpec {
        skews: vec![0.2],
        bers: vec![1e-4],
        remaps: vec![RemapKind::Retire],
        codings: vec![CodingKind::Flat, CodingKind::LocalRewrite],
        requests: 300,
        ..CampaignSpec::standard(true)
    };
    let rows = lifetime_campaign(&ecfg, &spec, &runner);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(
            row.device_years > 1.0,
            "expected a multi-year projection, got {} years",
            row.device_years
        );
        assert!(row.unevenness >= 1.0);
    }
    // Local-rewrite carries more parity writes than flat ECC, so its
    // projected lifetime must come out strictly shorter.
    assert!(
        rows[1].coding_stats.write_amplification() > rows[0].coding_stats.write_amplification()
    );
    assert!(rows[1].device_years < rows[0].device_years);
}
