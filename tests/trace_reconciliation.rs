//! The observability layer's central invariant: trace-derived totals
//! reconcile **exactly** with the ad-hoc statistics the simulator already
//! keeps. Every trace record is emitted at the site where the matching
//! counter increments, so a drifting total means a record site was lost —
//! this test is the tripwire.

use ladder::faults::FaultConfig;
use ladder::reram::Picos;
use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{run_sim, RunResult, Runner, Scheme, SimConfig};
use ladder::trace::{fold, DispatchKind, TraceTotals};
use std::sync::Arc;

fn quick_traced(scheme: Scheme, bench: &'static str, faults: Option<FaultConfig>) -> RunResult {
    let cfg = ExperimentConfig::quick();
    let tables = cfg.tables();
    let mut b = SimConfig::builder()
        .scheme(scheme)
        .workload(Workload::Single(bench))
        .trace(true);
    if let Some(f) = faults {
        b = b.faults(f);
    }
    run_sim(&b.build(), &cfg, &tables)
}

/// Every reconcilable total, asserted exactly (no tolerances: the trace is
/// bookkeeping of the same events, not a re-measurement).
fn assert_reconciles(r: &RunResult) {
    let trace = r.trace.as_ref().expect("tracing was requested");
    let t = &trace.totals;
    let m = &r.mem;

    // Pulses ↔ serviced writes.
    assert_eq!(t.data_pulses, m.data_writes, "data pulses");
    assert_eq!(t.metadata_pulses, m.metadata_writes, "metadata pulses");
    assert_eq!(t.pulse_time, m.t_wr_data, "charged data pulse time");
    assert_eq!(
        t.metadata_pulse_time, m.t_wr_metadata,
        "charged metadata pulse time"
    );

    // Reads, by class, plus the exact demand-latency sum.
    assert_eq!(t.demand_reads, m.demand_reads, "demand reads");
    assert_eq!(t.smb_reads, m.smb_reads, "SMB reads");
    assert_eq!(t.metadata_reads, m.metadata_reads, "metadata reads");
    assert_eq!(
        t.demand_read_latency, m.demand_read_latency,
        "demand read latency sum"
    );

    // Program-and-verify and recovery.
    assert_eq!(t.failed_verifies, m.failed_verifies, "failed verifies");
    assert_eq!(t.failed_verifies, m.retries_issued, "retries");
    assert_eq!(t.retry_time, m.retry_time, "retry time");
    assert_eq!(t.ecc_corrected_bits, m.ecc_corrected_bits, "ECC bits");
    assert_eq!(t.uncorrectable, m.uncorrectable_writes, "uncorrectable");

    // Kernel dispatches, per kind and in total.
    assert_eq!(t.dispatch(DispatchKind::CoreWake), r.events.core_wake);
    assert_eq!(
        t.dispatch(DispatchKind::ReadComplete),
        r.events.read_complete
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlWorkArrived),
        r.events.ctrl_work_arrived
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlBankFree),
        r.events.ctrl_bank_free
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlQueueSlotFree),
        r.events.ctrl_queue_slot_free
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlDepReady),
        r.events.ctrl_dep_ready
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlModeSwitch),
        r.events.ctrl_mode_switch
    );
    assert_eq!(
        t.dispatch(DispatchKind::CtrlRetryPulse),
        r.events.ctrl_retry_pulse
    );
    assert_eq!(t.dispatch_total(), r.events.total(), "dispatch total");

    // Data-write service time: the trace also charges metadata-writeback
    // service, so it can only exceed the data-only stat — and matches it
    // exactly when no metadata was written back.
    assert!(t.service_time >= m.write_service_time, "service time");
    if m.metadata_writes == 0 {
        assert_eq!(t.service_time, m.write_service_time);
    }

    // Attribution identities: the per-phase decomposition partitions the
    // end-to-end write time, and pulse savings partition the worst-case.
    assert_eq!(
        t.pulse_time + t.retry_time + t.overhead_time(),
        t.service_time,
        "service decomposition"
    );
    assert_eq!(
        t.location_saving() + t.content_saving() + t.pulse_time,
        t.worst_pulse_time,
        "pulse-width decomposition"
    );

    // Cache activity: the trace's hit ratio must agree with the policy's
    // own report (both are ratios of the same integer counters).
    if let Some(reported) = r.cache_hit {
        let traced = t.cache_hit_ratio();
        assert!(
            (traced - reported).abs() < 1e-12,
            "cache hit ratio: trace {traced} vs policy {reported}"
        );
    } else {
        assert_eq!(t.cache_hits + t.cache_misses, 0, "untracked policy");
    }
}

#[test]
fn trace_totals_reconcile_for_every_scheme() {
    for scheme in [
        Scheme::Baseline,
        Scheme::SplitReset,
        Scheme::Blp,
        Scheme::LadderEst,
        Scheme::LadderHybrid,
        Scheme::Oracle,
    ] {
        let r = quick_traced(scheme, "astar", None);
        assert!(r.mem.data_writes > 0, "{scheme:?}: no writes simulated");
        assert_reconciles(&r);
    }
}

#[test]
fn trace_totals_reconcile_under_faults() {
    let r = quick_traced(
        Scheme::LadderEst,
        "mcf",
        Some(FaultConfig::with_ber(7, 1e-4)),
    );
    let t = &r.trace.as_ref().unwrap().totals;
    assert!(
        t.failed_verifies > 0,
        "fault config produced no retries — raise the BER"
    );
    assert!(t.retry_time > Picos::ZERO);
    assert_reconciles(&r);
}

/// The per-worker recorders fold exactly like the stats they shadow: the
/// sum of each run's trace totals equals the batch totals at any `--jobs`.
#[test]
fn folded_trace_totals_match_runner_aggregates() {
    let cfg = ExperimentConfig::quick();
    let tables = Arc::new(cfg.tables());
    let configs: Vec<SimConfig> = [
        (Scheme::LadderEst, "astar"),
        (Scheme::LadderEst, "mcf"),
        (Scheme::Baseline, "libq"),
        (Scheme::Blp, "astar"),
    ]
    .into_iter()
    .map(|(s, b)| {
        SimConfig::builder()
            .scheme(s)
            .workload(Workload::Single(b))
            .trace(true)
            .build()
    })
    .collect();

    let fold_batch = |jobs: usize| {
        let (results, stats) = Runner::with_jobs(jobs).run_configs(&cfg, &tables, &configs);
        let folded: TraceTotals = fold(
            results
                .iter()
                .map(|r| r.trace.as_ref().expect("tracing requested").totals),
        );
        assert_eq!(
            folded.dispatch_total(),
            stats.events.total(),
            "folded dispatches vs batch stats at jobs={jobs}"
        );
        for r in &results {
            assert_reconciles(r);
        }
        folded
    };

    let seq = fold_batch(1);
    let par = fold_batch(4);
    assert_eq!(seq, par, "folded totals diverged across worker counts");
}
