//! Golden-trace regression gate: the canonical `--quick` workloads must
//! produce bit-identical trace digests run after run, at any worker count.
//!
//! The digest folds every trace record (kind, payload, sim-time stamp) in
//! emission order, so it moves whenever the simulator's event sequence
//! moves — a scheduling change, a timing-table change, a policy change.
//! That is the point: an intentional change regenerates the golden file
//! and shows up in review as a one-line diff, an unintentional one fails
//! here first.
//!
//! Regenerate with `just regen-golden` (or
//! `GOLDEN_REGEN=1 cargo test --test golden_trace -- --nocapture`).

use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{Runner, Scheme, SimConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// The canonical seeded workloads: the paper's scheme (estimator variant)
/// on a read-heavy and a write-heavy benchmark, plus the worst-case
/// baseline as a policy-independent control.
const CANONICAL: [(Scheme, &str); 3] = [
    (Scheme::LadderEst, "astar"),
    (Scheme::LadderEst, "mcf"),
    (Scheme::Baseline, "astar"),
];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_trace.digest")
}

/// One line per canonical run: digest plus the headline totals, so a
/// regression's diff already hints at what moved.
fn canonical_digest(jobs: usize) -> String {
    let cfg = ExperimentConfig::quick();
    let tables = Arc::new(cfg.tables());
    let configs: Vec<SimConfig> = CANONICAL
        .iter()
        .map(|&(s, b)| {
            SimConfig::builder()
                .scheme(s)
                .workload(Workload::Single(b))
                .trace(true)
                .build()
        })
        .collect();
    let (results, _) = Runner::with_jobs(jobs).run_configs(&cfg, &tables, &configs);
    let mut out = String::new();
    for (&(scheme, bench), r) in CANONICAL.iter().zip(&results) {
        let trace = r.trace.as_ref().expect("tracing was requested");
        out.push_str(&format!(
            "{}/{} digest={} records={} pulses={} reads={} dispatches={}\n",
            scheme.name(),
            bench,
            trace.digest,
            trace.records,
            trace.totals.data_pulses + trace.totals.metadata_pulses,
            trace.totals.demand_reads + trace.totals.smb_reads + trace.totals.metadata_reads,
            trace.totals.dispatch_total(),
        ));
    }
    out
}

#[test]
fn golden_trace_digest_is_bit_identical_at_any_jobs() {
    let seq = canonical_digest(1);
    let par = canonical_digest(4);
    assert_eq!(
        seq, par,
        "trace digests diverged between --jobs 1 and --jobs 4"
    );

    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &seq).unwrap();
        eprintln!("regenerated {}:\n{seq}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `just regen-golden`",
            path.display()
        )
    });
    assert_eq!(
        seq,
        golden,
        "canonical --quick trace diverged from {}; if the simulator change \
         is intentional, run `just regen-golden` and commit the diff",
        path.display()
    );
}
