//! Crash-consistency scenario (paper Section 7): after a power failure the
//! cached LRS-metadata is lost; lazy correction conservatively saturates
//! the metadata region so later writes use safe timings, and estimates
//! re-tighten as lines are rewritten.

use ladder::core::{LadderConfig, LadderEngine, LadderVariant};
use ladder::reram::{AddressMap, Geometry, LineAddr, LineStore};
use ladder::xbar::{TableConfig, TimingTable};

fn setup(variant: LadderVariant) -> (LadderEngine, LineStore, TimingTable) {
    let map = AddressMap::new(Geometry::default());
    let engine = LadderEngine::new(LadderConfig::for_variant(variant), map);
    let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
    (engine, LineStore::new(), table)
}

#[test]
fn recovery_is_conservative_then_converges() {
    let (mut engine, mut store, table) = setup(LadderVariant::Est);
    let base = engine.layout().first_data_page().max(100_000);
    // Steady state: a page of sparse data → fast writes.
    for slot in 0..64u64 {
        let addr = LineAddr::new(base * 64 + slot);
        engine.prepare_write(addr);
        engine.service_write(addr, [0b0000_0001; 64], &mut store);
    }
    let addr = LineAddr::new(base * 64);
    let cw_before = engine.peek_cw(addr, &store);
    assert!(
        cw_before <= 128,
        "sparse page should estimate low ({cw_before})"
    );

    // Crash: cache contents lost; metadata region conservatively saturated.
    engine.lazy_crash_correction(&mut store);
    let cw_crash = engine.peek_cw(addr, &store);
    assert_eq!(cw_crash, 512, "post-crash estimates must be worst-case");
    let (wl, col) = (0usize, 7usize);
    assert_eq!(
        table.lookup_ps(wl, col, cw_crash as usize),
        table.lookup_ps(wl, col, usize::MAX),
        "post-crash writes use worst-case-content latency"
    );

    // Rewriting the page's lines restores tight estimates.
    for slot in 0..64u64 {
        let a = LineAddr::new(base * 64 + slot);
        engine.prepare_write(a);
        engine.service_write(a, [0b0000_0001; 64], &mut store);
    }
    let cw_after = engine.peek_cw(addr, &store);
    assert!(
        cw_after <= cw_before,
        "estimates must converge back ({cw_after} vs {cw_before})"
    );
}

#[test]
fn recovery_never_underestimates_any_touched_page() {
    let (mut engine, mut store, _table) = setup(LadderVariant::Hybrid);
    let base = engine.layout().first_data_page().max(100_000);
    // Mixed-density pages.
    for page in 0..8u64 {
        for slot in 0..64u64 {
            let addr = LineAddr::new((base + page) * 64 + slot);
            let fill = if page % 2 == 0 { 0x0F } else { 0xFF };
            engine.prepare_write(addr);
            engine.service_write(addr, [fill; 64], &mut store);
        }
    }
    engine.lazy_crash_correction(&mut store);
    for page in 0..8u64 {
        let addr = LineAddr::new((base + page) * 64);
        let est = engine.peek_cw(addr, &store);
        assert_eq!(est, 512, "page {page}: recovery must saturate estimates");
    }
}

#[test]
fn basic_variant_recovers_conservatively_too() {
    let (mut engine, mut store, _table) = setup(LadderVariant::Basic);
    let base = engine.layout().first_data_page().max(100_000);
    let addr = LineAddr::new(base * 64);
    engine.prepare_write(addr);
    engine.service_write(addr, [0x01; 64], &mut store);
    engine.lazy_crash_correction(&mut store);
    assert_eq!(engine.peek_cw(addr, &store), 512);
    // Post-crash writes keep working (counters clamp instead of wrapping).
    engine.prepare_write(addr);
    let out = engine.service_write(addr, [0x00; 64], &mut store);
    assert!(out.cw_lrs == 512, "latency input right after crash is safe");
}
