//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's correctness argument rests on.

use ladder::core::{
    apply_fnw, estimate_cw_lrs, exact_cw_lrs, shift_line, undo_fnw, unshift_line, FnwPolicy,
    LrsCounterGroup, PartialCounters,
};
use ladder::reram::{AddressMap, Decoded, Geometry, LineAddr};
use ladder::xbar::{CrossbarParams, LatencyLaw, TableConfig, TimingTable};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = [u8; 64]> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut a = [0u8; 64];
        a.copy_from_slice(&v);
        a
    })
}

/// A line whose bit density is skewed low (like real memory contents).
fn arb_sparse_line() -> impl Strategy<Value = [u8; 64]> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut a = [0u8; 64];
        for (i, x) in v.iter().enumerate() {
            a[i] = x & (x >> 3) & 0x7F;
        }
        a
    })
}

proptest! {
    #[test]
    fn shifting_is_a_bijection(line in arb_line(), slot in 0usize..64) {
        let stored = shift_line(&line, slot);
        prop_assert_eq!(unshift_line(&stored, slot), line);
        // Popcount is preserved per chip group.
        for g in 0..8 {
            let ones = |l: &[u8]| l.iter().map(|b| b.count_ones()).sum::<u32>();
            prop_assert_eq!(ones(&line[g * 8..(g + 1) * 8]), ones(&stored[g * 8..(g + 1) * 8]));
        }
    }

    #[test]
    fn fnw_roundtrips_and_respects_the_constraint(
        new in arb_line(),
        old in arb_line(),
    ) {
        let out = apply_fnw(&new, &old, FnwPolicy::Constrained);
        prop_assert_eq!(undo_fnw(&out.stored, out.flip_mask), new);
        // Per 8-byte word, the stored image never holds more ones than the
        // original data — the invariant that keeps LRS counters truthful.
        for w in 0..8 {
            let ones = |l: &[u8]| l.iter().map(|b| b.count_ones()).sum::<u32>();
            prop_assert!(
                ones(&out.stored[w * 8..(w + 1) * 8]) <= ones(&new[w * 8..(w + 1) * 8])
            );
        }
        // And flipping never increases the switched-cell count.
        let plain = apply_fnw(&new, &old, FnwPolicy::Disabled);
        prop_assert!(out.bits_changed <= plain.bits_changed);
    }

    #[test]
    fn estimation_upper_bounds_exact_counts(
        lines in prop::collection::vec(arb_sparse_line(), 1..64),
    ) {
        let exact = exact_cw_lrs(lines.iter());
        let zero_lines = 64 - lines.len();
        let est = estimate_cw_lrs(
            lines.iter().map(PartialCounters::from_line),
            zero_lines,
        );
        prop_assert!(est >= exact, "estimate {} below exact {}", est, exact);
    }

    #[test]
    fn counter_pack_roundtrips(values in prop::collection::vec(0u16..=512, 64)) {
        let mut g = LrsCounterGroup::new();
        let zeros = [0u8; 64];
        // Drive counters to arbitrary values through deltas.
        for (i, &v) in values.iter().enumerate() {
            let mut line = [0u8; 64];
            // v ones in byte position i, spread across writes of 8 ones.
            let full = (v / 8) as usize;
            for _ in 0..full {
                line[i] = 0xFF;
                g.apply_delta(&zeros, &line);
            }
            line[i] = (0xFFu16 >> (8 - (v % 8))) as u8;
            g.apply_delta(&zeros, &line);
        }
        let lines = g.to_metadata_lines();
        prop_assert_eq!(LrsCounterGroup::from_metadata_lines(&lines), g);
    }

    #[test]
    fn address_map_is_a_bijection(raw in 0u64..Geometry::default().lines()) {
        let map = AddressMap::new(Geometry::default());
        let a = LineAddr::new(raw);
        let d = map.decode(a);
        prop_assert_eq!(map.encode(&d), a);
    }

    #[test]
    fn address_encode_rejects_nothing_valid(
        channel in 0usize..2,
        rank in 0usize..2,
        bank in 0usize..8,
        mat_group in 0usize..32,
        wordline in 0usize..512,
        block_slot in 0usize..64,
    ) {
        let map = AddressMap::new(Geometry::default());
        let d = Decoded { channel, rank, bank, mat_group, wordline, block_slot };
        let a = map.encode(&d);
        prop_assert_eq!(map.decode(a), d);
    }

    #[test]
    fn latency_law_is_monotone(
        v1 in 0.0f64..3.0,
        v2 in 0.0f64..3.0,
    ) {
        let law = LatencyLaw::calibrate(2.9, 29.0, 1.0, 658.0);
        let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(law.latency_ns(hi) <= law.latency_ns(lo));
    }
}

// Table monotonicity is deterministic but expensive to set up, so it runs
// once over every band triple rather than via proptest.
#[test]
fn timing_table_is_monotone_and_conservative_under_banding() {
    let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
    let p = CrossbarParams::default();
    for c in 0..8 {
        for w in 0..8 {
            for b in 0..8 {
                if c + 1 < 8 {
                    assert!(table.entry(c + 1, w, b) >= table.entry(c, w, b));
                }
                if w + 1 < 8 {
                    assert!(table.entry(c, w + 1, b) >= table.entry(c, w, b));
                }
                if b + 1 < 8 {
                    assert!(table.entry(c, w, b + 1) >= table.entry(c, w, b));
                }
            }
        }
    }
    // Within a band, the entry was generated at the band's worst point, so
    // looking up any exact coordinate in the band is conservative.
    let fine = table.lookup_ps(64, 64, 64);
    let coarse = table.lookup_ps(127, 127, 128);
    assert!(coarse >= fine);
    assert!(table.worst_ps() as f64 / 1000.0 <= 658.01);
    let _ = p;
}
