//! Cross-crate integration tests: whole-system runs under every scheme,
//! checking the invariants the paper's evaluation relies on.

use ladder::sim::experiments::{ExperimentConfig, Workload};
use ladder::sim::{run_sim, RunResult, Scheme, SimConfig};

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        instructions_per_core: 60_000,
        ..ExperimentConfig::default()
    }
}

fn run(scheme: Scheme, workload: Workload, cfg: &ExperimentConfig) -> RunResult {
    let tables = cfg.tables();
    run_sim(&SimConfig::new(scheme, workload), cfg, &tables)
}

#[test]
fn every_scheme_completes_a_single_workload() {
    let cfg = quick_cfg();
    let tables = cfg.tables();
    for scheme in Scheme::MAIN_EVAL {
        let r = run_sim(
            &SimConfig::new(scheme, Workload::Single("astar")),
            &cfg,
            &tables,
        );
        assert!(r.cores[0].retired > 0, "{scheme}: no instructions retired");
        assert!(r.mem.data_writes > 0, "{scheme}: no writes serviced");
        assert!(r.mem.demand_reads > 0, "{scheme}: no reads serviced");
        assert!(r.energy.total_pj() > 0.0);
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = quick_cfg();
    let a = run(Scheme::LadderHybrid, Workload::Single("mcf"), &cfg);
    let b = run(Scheme::LadderHybrid, Workload::Single("mcf"), &cfg);
    assert_eq!(a.mem.data_writes, b.mem.data_writes);
    assert_eq!(a.mem.demand_read_latency, b.mem.demand_read_latency);
    assert_eq!(a.mem.t_wr_data, b.mem.t_wr_data);
    assert_eq!(a.end, b.end);
    assert_eq!(a.cores[0].retired, b.cores[0].retired);
}

#[test]
fn seed_changes_the_run() {
    let cfg = quick_cfg();
    let mut cfg2 = quick_cfg();
    cfg2.seed = 777;
    let a = run(Scheme::Baseline, Workload::Single("lbm"), &cfg);
    let b = run(Scheme::Baseline, Workload::Single("lbm"), &cfg2);
    assert_ne!(a.end, b.end, "different seeds must yield different traces");
}

#[test]
fn paper_scheme_ordering_holds_on_write_service() {
    // Figure 12's ordering: oracle ≤ LADDER variants < BLP < baseline, and
    // Split-reset < baseline.
    let cfg = quick_cfg();
    let tables = cfg.tables();
    let w = Workload::Single("fsim");
    let get = |s| {
        run_sim(&SimConfig::new(s, w), &cfg, &tables)
            .avg_write_service()
            .as_ns()
    };
    let baseline = get(Scheme::Baseline);
    let split = get(Scheme::SplitReset);
    let blp = get(Scheme::Blp);
    let est = get(Scheme::LadderEst);
    let oracle = get(Scheme::Oracle);
    assert!(oracle <= est * 1.02, "oracle {oracle} vs est {est}");
    assert!(est < blp, "LADDER-Est {est} must beat BLP {blp}");
    assert!(blp < split, "BLP {blp} must beat Split-reset {split}");
    assert!(
        split < baseline,
        "Split-reset {split} must beat baseline {baseline}"
    );
}

#[test]
fn ladder_speedup_is_substantial_on_mixes() {
    let cfg = quick_cfg();
    let tables = cfg.tables();
    let w = Workload::Mix("mix-7");
    let base = run_sim(&SimConfig::new(Scheme::Baseline, w), &cfg, &tables);
    let hyb = run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables);
    let speedup: f64 = hyb
        .cores
        .iter()
        .zip(&base.cores)
        .map(|(a, b)| a.ipc / b.ipc)
        .sum::<f64>()
        / 4.0;
    assert!(speedup > 1.2, "mix speedup {speedup} too small");
}

#[test]
fn metadata_traffic_ranks_basic_above_est_above_hybrid() {
    let cfg = ExperimentConfig {
        instructions_per_core: 120_000,
        ..ExperimentConfig::default()
    };
    let tables = cfg.tables();
    let w = Workload::Single("cannl");
    let basic = run_sim(&SimConfig::new(Scheme::LadderBasic, w), &cfg, &tables);
    let est = run_sim(&SimConfig::new(Scheme::LadderEst, w), &cfg, &tables);
    let hybrid = run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables);
    assert!(
        basic.mem.additional_read_fraction() > est.mem.additional_read_fraction(),
        "SMB reads must make Basic's read overhead the largest"
    );
    assert!(
        est.mem.additional_read_fraction() >= hybrid.mem.additional_read_fraction(),
        "Hybrid must not read more metadata than Est"
    );
    assert!(basic.mem.additional_write_fraction() > hybrid.mem.additional_write_fraction());
}

#[test]
fn wear_leveling_keeps_most_of_the_performance() {
    let cfg = quick_cfg();
    let tables = cfg.tables();
    let w = Workload::Single("lbm");
    let plain = run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables);
    let leveled = run_sim(
        &SimConfig::builder()
            .scheme(Scheme::LadderHybrid)
            .workload(w)
            .wear_leveling(true)
            .track_wear(true)
            .build(),
        &cfg,
        &tables,
    );
    let ratio = leveled.ipc0() / plain.ipc0();
    assert!(ratio > 0.9, "wear-leveling cost too high: {ratio}");
    assert!(leveled.wear.is_some());
}

#[test]
fn shrunk_range_still_beats_baseline() {
    let cfg = quick_cfg();
    let v = ladder::sim::experiments::variability(
        &cfg,
        Workload::Single("astar"),
        &ladder::Runner::new(),
    );
    assert!(v.speedup_full > 1.0);
    assert!(v.speedup_shrunk > 1.0, "shrunk-range LADDER must still win");
    assert!(v.speedup_shrunk < v.speedup_full * 1.02);
}
