#!/usr/bin/env bash
# Tier-1 verification gate: release build, tests, clippy-clean.
# The workspace is fully path-local, so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
