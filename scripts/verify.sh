#!/usr/bin/env bash
# Tier-1 verification gate: release build, tests, clippy-clean, plus a
# quick-mode smoke run of every figure/table binary.
# The workspace is fully path-local, so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Project-invariant gate: per-file rules (determinism / accounting /
# panic-policy / bench-conformance) plus the cross-crate semantic pass
# (fast-ref-twin, mergeable-coverage, unit-mixing, counter-overflow-policy,
# dead-pragma) over every workspace source file — fails on any finding.
# Exit codes are part of the CLI contract (0 clean / 1 findings / 2 usage
# or I/O error) and both corpus self-checks assert them explicitly.
# Runs before the slow bench smoke so violations fail fast.
echo "==> ladder-lint (workspace invariants, both passes)"
cargo run --release -q -p ladder-lint --offline -- --root .
set +e
cargo run --release -q -p ladder-lint --offline -- \
    --fixtures crates/lint/fixtures/bad >/dev/null 2>&1
bad_rc=$?
cargo run --release -q -p ladder-lint --offline -- \
    --fixtures crates/lint/fixtures/clean >/dev/null 2>&1
clean_rc=$?
set -e
if [ "$bad_rc" -ne 1 ]; then
    echo "error: bad-fixture corpus self-check exited $bad_rc (want 1: findings)" >&2
    exit 1
fi
if [ "$clean_rc" -ne 0 ]; then
    echo "error: clean-fixture corpus self-check exited $clean_rc (want 0: clean)" >&2
    exit 1
fi

# The criterion-shim benches double as gates: trace_overhead asserts the
# write hot path performs zero allocations with tracing disabled.
echo "==> bench smoke + tracing allocation gate"
cargo test -q -p ladder-bench --benches --offline

# Every ladder-bench binary must at least complete a scaled-down run:
# this catches panics in experiment drivers that unit tests don't reach
# (arg parsing, figure assembly, the event kernel under each scheme).
echo "==> smoke: ladder-bench binaries (--quick --jobs 2)"
for bin in fig2 fig4b fig11 fig15 main_eval lifetime variability tables \
           ablations crash mna_table extension faults interleave service \
           lifetime_campaign hotloop; do
    echo "  -> $bin"
    ./target/release/"$bin" --quick --jobs 2 >/dev/null
done

# Hot-loop gate: the fast/reference equivalence battery (SWAR kernels,
# quantized table lookup, calendar queue — including the differential
# full quick run on both queue backends) must pass, and the hotloop
# bench itself exits non-zero if the two backends' trace digests ever
# diverge (it already ran in the smoke loop above).
echo "==> hotloop: fast-path vs reference-path equivalence battery"
cargo test -q --offline --test hotloop_equivalence >/dev/null

# The --trace flag must produce valid-looking chrome://tracing JSON, and
# the canonical --quick digests must match tests/golden/.
echo "==> trace smoke (--trace) + golden-trace check"
trace_out=$(mktemp)
./target/release/fig2 --quick --jobs 2 --trace "$trace_out" >/dev/null 2>&1
grep -q '"traceEvents"' "$trace_out"
grep -q '"displayTimeUnit"' "$trace_out"
rm -f "$trace_out"
cargo test -q --offline --test golden_trace >/dev/null

# Sharded scale-out gate: the interleave sweep's whole output (per-cell
# merged trace digests included) must be bit-identical across worker
# counts, and the shard golden digests must match tests/golden/.
echo "==> shard smoke: --topology 4x2 jobs-invariance + shard golden check"
shard_seq=$(./target/release/interleave --quick --topology 4x2 --jobs 1 2>/dev/null)
shard_par=$(./target/release/interleave --quick --topology 4x2 --jobs 4 2>/dev/null)
if [ "$shard_seq" != "$shard_par" ]; then
    echo "error: sharded interleave sweep diverged between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "$shard_seq" | grep -q 'digest' || {
    echo "error: interleave sweep emitted no merged digests" >&2
    exit 1
}
cargo test -q --offline --test shard_determinism >/dev/null

# Open-loop service gate: the SLO sweep (per-tenant tail quantiles and
# the merged service-trace digest) must be bit-identical across worker
# counts, and the service golden digest must match tests/golden/.
echo "==> service smoke: open-loop SLO sweep jobs-invariance + service golden check"
svc_seq=$(./target/release/service --quick --topology 2x2 --jobs 1 2>/dev/null)
svc_par=$(./target/release/service --quick --topology 2x2 --jobs 4 2>/dev/null)
if [ "$svc_seq" != "$svc_par" ]; then
    echo "error: open-loop service sweep diverged between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "$svc_seq" | grep -q 'p99/ns' || {
    echo "error: service sweep emitted no SLO reports" >&2
    exit 1
}
cargo test -q --offline --test service_determinism >/dev/null

# Lifetime-campaign gate: the device-lifetime sweep CSV (skew × BER ×
# remap backend × code scheme) must be bit-identical across worker
# counts, and the coding/remap golden digest must match tests/golden/.
echo "==> lifetime smoke: campaign CSV jobs-invariance + lifetime golden check"
camp_seq=$(./target/release/lifetime_campaign --quick --jobs 1 2>/dev/null)
camp_par=$(./target/release/lifetime_campaign --quick --jobs 4 2>/dev/null)
if [ "$camp_seq" != "$camp_par" ]; then
    echo "error: lifetime campaign diverged between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "$camp_seq" | grep -q 'device_years' || {
    echo "error: lifetime campaign emitted no CSV header" >&2
    exit 1
}
cargo test -q --offline --test lifetime_determinism >/dev/null

echo "verify: OK"
