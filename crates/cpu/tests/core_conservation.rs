//! Property tests of the core state machine: instruction conservation,
//! monotone time, and stall accounting under arbitrary traces and arbitrary
//! (but causal) memory-system behaviour.

use ladder_cpu::{Core, CoreAction, CoreConfig, MemEvent, TraceOp, VecTrace};
use ladder_reram::{Instant, LineAddr, Picos};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = MemEvent> {
    (0u64..500, 0u64..10_000, any::<bool>(), any::<bool>()).prop_map(
        |(gap, addr, is_write, critical)| MemEvent {
            gap_instructions: gap,
            op: if is_write {
                TraceOp::Write {
                    addr: LineAddr::new(addr),
                    data: Box::new([0xA5; 64]),
                }
            } else {
                TraceOp::Read {
                    addr: LineAddr::new(addr),
                    critical,
                }
            },
        },
    )
}

/// Drives a core against a synthetic memory system that completes reads
/// after `read_delay` and rejects each write `write_rejects` times first.
fn drive(events: Vec<MemEvent>, read_delay: u64, write_rejects: u32) -> (Core, Instant) {
    let total_instructions: u64 = events.iter().map(|e| e.gap_instructions + 1).sum();
    let mut core = Core::new(
        CoreConfig::default(),
        Box::new(VecTrace::new("prop", events)),
    );
    let mut now = Instant::ZERO;
    let mut next_id = 0u64;
    let mut outstanding: Vec<(u64, Instant)> = Vec::new();
    let mut rejects_left = write_rejects;
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "driver runaway");
        // Deliver due completions.
        outstanding.retain(|&(id, at)| {
            if at <= now {
                core.on_read_completed(id, at);
                false
            } else {
                true
            }
        });
        match core.next_action(now) {
            CoreAction::Finished => break,
            CoreAction::Idle { until: Some(t) } => now = t.max(now + Picos::from_ps(1)),
            CoreAction::Idle { until: None } => {
                // Blocked on memory: advance to the next completion.
                let next = outstanding.iter().map(|&(_, at)| at).min();
                now = next.expect("blocked with nothing outstanding");
            }
            CoreAction::IssueRead { .. } => {
                let id = next_id;
                next_id += 1;
                core.on_read_issued(id, now);
                outstanding.push((id, now + Picos::from_ps(read_delay)));
            }
            CoreAction::IssueWrite { .. } => {
                if rejects_left > 0 {
                    rejects_left -= 1;
                    core.on_write_rejected(now);
                    now += Picos::from_ps(50);
                    // The retry presents the same write.
                    match core.next_action(now) {
                        CoreAction::IssueWrite { .. } => core.on_write_accepted(now),
                        other => panic!("expected write retry, got {other:?}"),
                    }
                } else {
                    core.on_write_accepted(now);
                }
            }
        }
    }
    assert_eq!(core.retired_instructions(), total_instructions);
    (core, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn core_retires_every_instruction(
        events in prop::collection::vec(arb_event(), 1..60),
        read_delay in 1u64..200_000,
        write_rejects in 0u32..3,
    ) {
        let (core, end) = drive(events, read_delay, write_rejects);
        prop_assert!(core.is_finished());
        // Stalls cannot exceed wall-clock time.
        prop_assert!(core.stall_time() <= end.duration_since(Instant::ZERO));
        // IPC is positive and bounded by the configured base rate.
        let ipc = core.ipc(end.max(Instant::from_ps(1)));
        prop_assert!(ipc >= 0.0);
    }

    #[test]
    fn slower_memory_never_finishes_earlier(
        events in prop::collection::vec(arb_event(), 5..40),
    ) {
        let (_, fast_end) = drive(events.clone(), 10_000, 0);
        let (_, slow_end) = drive(events, 500_000, 0);
        prop_assert!(slow_end >= fast_end, "slower reads finished earlier");
    }
}
