//! Trace-driven core model for the LADDER system simulator.
//!
//! The paper evaluates LADDER with gem5 full-system simulation; this crate
//! substitutes a bounded-MLP core model driven by LLC-level traces (see
//! DESIGN.md for why the substitution preserves the measured effects: all
//! of LADDER's action is at the memory controller, and what a core
//! contributes is read-latency sensitivity and write-back pressure, both of
//! which this model has).

mod core;
mod trace;

pub use crate::core::{Core, CoreAction, CoreConfig};
pub use trace::{MemEvent, TraceOp, TraceSource, VecTrace};
