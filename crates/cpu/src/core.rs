//! A bounded-MLP core model.
//!
//! Each core retires cache-resident instructions at its base IPC and
//! interacts with memory only at LLC-miss granularity. Reads occupy one of
//! `mlp` miss-status registers; when all are busy — or when a *critical*
//! (dependent) read is outstanding — the core stalls. Write-backs stall the
//! core only when the memory controller's write queue pushes back. This is
//! deliberately simpler than an out-of-order pipeline model, but it exposes
//! exactly the sensitivities the paper measures: read latency (queueing
//! behind write drains) and write-queue backpressure.
//!
//! # Event-kernel contract
//!
//! Cores are driven by a discrete-event kernel, not polled on a time
//! step. [`Core::next_action`] *posts* the core's next-ready instant:
//! `Idle { until: Some(t) }` promises the core has nothing to do strictly
//! before `t` (the kernel schedules exactly one wake there), while
//! `Idle { until: None }` means the core waits on an external event — a
//! read completion or controller queue space — and the kernel re-drives
//! it when one occurs. Calling `next_action` again at an instant where
//! the core is idle or blocked is harmless and changes no state, which is
//! what lets the kernel safely retry blocked cores after every controller
//! dispatch.

use crate::trace::{MemEvent, TraceOp, TraceSource};
use ladder_reram::{Instant, LineAddr, LineData, Picos};
use std::collections::HashSet;

/// Core model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Core cycle time (default 400 ps = 2.5 GHz).
    pub cycle: Picos,
    /// Instructions retired per cycle when no memory stall is pending
    /// (folds cache-hierarchy hit latencies into an effective rate).
    pub base_ipc: f64,
    /// Maximum outstanding LLC-miss reads (MSHRs).
    pub mlp: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            cycle: Picos::from_ps(400),
            // Effective IPC over the cache-resident instructions between
            // LLC misses. The trace abstracts the L1/L2/L3 hierarchy away,
            // so hit latencies are folded into this number: a 4-wide
            // out-of-order core sustains ~0.9 IPC on memory-intensive SPEC
            // code even when every access hits on-chip caches.
            base_ipc: 0.9,
            mlp: 8,
        }
    }
}

/// What the core asks of the simulator next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreAction {
    /// Issue this demand read (call [`Core::on_read_issued`] on success).
    IssueRead {
        /// Line to read.
        addr: LineAddr,
    },
    /// Enqueue this write-back (call [`Core::on_write_accepted`] on
    /// success; on failure retry when the controller drains).
    IssueWrite {
        /// Line to write.
        addr: LineAddr,
        /// New contents.
        data: Box<LineData>,
    },
    /// Nothing to do before `until` (compute phase or stall).
    Idle {
        /// When the core can act again; `None` means it waits on an
        /// external completion (read return or queue space).
        until: Option<Instant>,
    },
    /// Trace exhausted and all outstanding reads returned.
    Finished,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocked {
    None,
    /// All MSHRs busy; wake on any read completion.
    Mlp,
    /// A critical read is outstanding; wake when that id completes.
    Critical(u64),
    /// The write queue rejected the write; retry it.
    WriteQueue(Box<(LineAddr, LineData)>),
}

/// The core state machine.
///
/// # Examples
///
/// ```
/// use ladder_cpu::{Core, CoreAction, CoreConfig, MemEvent, TraceOp, VecTrace};
/// use ladder_reram::{Instant, LineAddr};
///
/// let trace = VecTrace::new(
///     "demo",
///     vec![MemEvent {
///         gap_instructions: 400,
///         op: TraceOp::Read { addr: LineAddr::new(7), critical: false },
///     }],
/// );
/// let cfg = CoreConfig { base_ipc: 4.0, ..CoreConfig::default() };
/// let mut core = Core::new(cfg, Box::new(trace));
/// // 400 instructions at IPC 4 and 400 ps/cycle → ready at 40 ns.
/// match core.next_action(Instant::ZERO) {
///     CoreAction::Idle { until: Some(t) } => assert_eq!(t.as_ps(), 40_000),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Core {
    config: CoreConfig,
    trace: Box<dyn TraceSource>,
    /// Core-local time up to which computation is already accounted.
    cursor: Instant,
    retired: u64,
    pending: Option<MemEvent>,
    outstanding: HashSet<u64>,
    blocked: Blocked,
    trace_done: bool,
    stall_time: Picos,
    last_stall_start: Option<Instant>,
}

impl std::fmt::Debug for Box<dyn TraceSource> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceSource({})", self.label())
    }
}

impl Core {
    /// Creates a core running `trace`.
    pub fn new(config: CoreConfig, trace: Box<dyn TraceSource>) -> Self {
        Self {
            config,
            trace,
            cursor: Instant::ZERO,
            retired: 0,
            pending: None,
            outstanding: HashSet::new(),
            blocked: Blocked::None,
            trace_done: false,
            stall_time: Picos::ZERO,
            last_stall_start: None,
        }
    }

    /// Instructions retired so far.
    pub fn retired_instructions(&self) -> u64 {
        self.retired
    }

    /// Total time spent stalled on memory.
    pub fn stall_time(&self) -> Picos {
        self.stall_time
    }

    /// Workload label.
    pub fn label(&self) -> &str {
        self.trace.label()
    }

    /// Instructions per cycle achieved up to `now`.
    pub fn ipc(&self, now: Instant) -> f64 {
        let cycles = now.as_ps() as f64 / self.config.cycle.as_ps() as f64;
        if cycles == 0.0 {
            0.0
        } else {
            self.retired as f64 / cycles
        }
    }

    fn gap_time(&self, instructions: u64) -> Picos {
        let cycles = instructions as f64 / self.config.base_ipc;
        Picos::from_ps((cycles * self.config.cycle.as_ps() as f64).ceil() as u64)
    }

    fn begin_stall(&mut self, now: Instant) {
        if self.last_stall_start.is_none() {
            self.last_stall_start = Some(now);
        }
    }

    fn end_stall(&mut self, now: Instant) {
        if let Some(start) = self.last_stall_start.take() {
            if now > start {
                self.stall_time += now.duration_since(start);
            }
        }
    }

    /// Decides the core's next step at time `now`.
    pub fn next_action(&mut self, now: Instant) -> CoreAction {
        match &self.blocked {
            Blocked::None => {}
            Blocked::Mlp | Blocked::Critical(_) => {
                self.begin_stall(now);
                return CoreAction::Idle { until: None };
            }
            Blocked::WriteQueue(boxed) => {
                let (addr, data) = (boxed.0, boxed.1);
                self.begin_stall(now);
                return CoreAction::IssueWrite {
                    addr,
                    data: Box::new(data),
                };
            }
        }
        if self.pending.is_none() {
            match self.trace.next_event() {
                Some(ev) => {
                    // Account the compute gap into the local time cursor.
                    let gap = self.gap_time(ev.gap_instructions);
                    self.retired += ev.gap_instructions;
                    self.cursor = self.cursor.max(now) + gap;
                    self.pending = Some(ev);
                }
                None => self.trace_done = true,
            }
        }
        if self.trace_done && self.pending.is_none() {
            return if self.outstanding.is_empty() {
                CoreAction::Finished
            } else {
                CoreAction::Idle { until: None }
            };
        }
        if self.cursor > now {
            return CoreAction::Idle {
                until: Some(self.cursor),
            };
        }
        // The memory op is due now.
        // lint: allow(panic-policy) — invariant: step() only reaches here after setting pending on this same path
        let ev = self.pending.as_ref().expect("pending op");
        match &ev.op {
            TraceOp::Read { addr, .. } => {
                if self.outstanding.len() >= self.config.mlp {
                    self.blocked = Blocked::Mlp;
                    self.begin_stall(now);
                    CoreAction::Idle { until: None }
                } else {
                    CoreAction::IssueRead { addr: *addr }
                }
            }
            TraceOp::Write { addr, data } => CoreAction::IssueWrite {
                addr: *addr,
                data: data.clone(),
            },
        }
    }

    /// The pending read was accepted by the controller under `id`.
    ///
    /// # Panics
    ///
    /// Panics if no read was pending.
    pub fn on_read_issued(&mut self, id: u64, now: Instant) {
        // lint: allow(panic-policy) — state-machine contract: on_read_issued requires a pending read, documented under # Panics
        let ev = self.pending.take().expect("a read must be pending");
        let critical = match ev.op {
            TraceOp::Read { critical, .. } => critical,
            // lint: allow(panic-policy) — state-machine contract: on_read_issued is only called for reads, documented under # Panics
            TraceOp::Write { .. } => panic!("pending op is a write"),
        };
        self.retired += 1;
        self.outstanding.insert(id);
        if critical {
            self.blocked = Blocked::Critical(id);
            self.begin_stall(now);
        }
    }

    /// The pending read was rejected (read queue full); the core stalls
    /// until the simulator retries.
    pub fn on_read_rejected(&mut self, now: Instant) {
        self.begin_stall(now);
    }

    /// A previously issued read completed.
    pub fn on_read_completed(&mut self, id: u64, at: Instant) {
        self.outstanding.remove(&id);
        match self.blocked {
            Blocked::Critical(waiting) if waiting == id => {
                self.blocked = Blocked::None;
                self.end_stall(at);
                self.cursor = self.cursor.max(at);
            }
            Blocked::Mlp => {
                self.blocked = Blocked::None;
                self.end_stall(at);
                self.cursor = self.cursor.max(at);
            }
            _ => {}
        }
    }

    /// The pending (or retried) write was accepted.
    ///
    /// # Panics
    ///
    /// Panics if no write was pending.
    pub fn on_write_accepted(&mut self, now: Instant) {
        match std::mem::replace(&mut self.blocked, Blocked::None) {
            Blocked::WriteQueue(_) => {
                self.end_stall(now);
                self.cursor = self.cursor.max(now);
                self.retired += 1;
            }
            Blocked::None => {
                // lint: allow(panic-policy) — state-machine contract: on_write_accepted requires a pending write, documented under # Panics
                let ev = self.pending.take().expect("a write must be pending");
                debug_assert!(matches!(ev.op, TraceOp::Write { .. }));
                self.retired += 1;
            }
            other => {
                self.blocked = other;
                // lint: allow(panic-policy) — state-machine contract: the simulator never accepts a write while the core is read-blocked
                panic!("write accepted while blocked on a read");
            }
        }
    }

    /// The pending write was rejected (write queue full); the core blocks
    /// until the simulator retries successfully.
    ///
    /// # Panics
    ///
    /// Panics if no write was pending.
    pub fn on_write_rejected(&mut self, now: Instant) {
        if matches!(self.blocked, Blocked::WriteQueue(_)) {
            self.begin_stall(now);
            return;
        }
        // lint: allow(panic-policy) — state-machine contract: on_write_rejected requires a pending write, documented under # Panics
        let ev = self.pending.take().expect("a write must be pending");
        match ev.op {
            TraceOp::Write { addr, data } => {
                self.blocked = Blocked::WriteQueue(Box::new((addr, *data)));
                self.begin_stall(now);
            }
            // lint: allow(panic-policy) — state-machine contract: on_write_rejected requires a pending write, documented under # Panics
            TraceOp::Read { .. } => panic!("pending op is a read"),
        }
    }

    /// Whether the core has consumed its whole trace and drained its reads.
    pub fn is_finished(&self) -> bool {
        self.trace_done && self.pending.is_none() && self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    fn read_ev(gap: u64, addr: u64, critical: bool) -> MemEvent {
        MemEvent {
            gap_instructions: gap,
            op: TraceOp::Read {
                addr: LineAddr::new(addr),
                critical,
            },
        }
    }

    fn write_ev(gap: u64, addr: u64) -> MemEvent {
        MemEvent {
            gap_instructions: gap,
            op: TraceOp::Write {
                addr: LineAddr::new(addr),
                data: Box::new([1; 64]),
            },
        }
    }

    fn core_with(events: Vec<MemEvent>) -> Core {
        // Tests pin base_ipc to 4 for round numbers.
        let cfg = CoreConfig {
            base_ipc: 4.0,
            ..CoreConfig::default()
        };
        Core::new(cfg, Box::new(VecTrace::new("test", events)))
    }

    #[test]
    fn compute_gap_advances_cursor() {
        let mut c = core_with(vec![read_ev(4000, 1, false)]);
        match c.next_action(Instant::ZERO) {
            CoreAction::Idle { until: Some(t) } => {
                // 4000 instr / 4 IPC = 1000 cycles = 400 000 ps.
                assert_eq!(t.as_ps(), 400_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.retired_instructions(), 4000);
        // At the due time the read is offered.
        match c.next_action(Instant::from_ps(400_000)) {
            CoreAction::IssueRead { addr } => assert_eq!(addr, LineAddr::new(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn critical_read_blocks_until_completion() {
        let mut c = core_with(vec![read_ev(0, 1, true), read_ev(0, 2, false)]);
        let t0 = Instant::ZERO;
        assert!(matches!(c.next_action(t0), CoreAction::IssueRead { .. }));
        c.on_read_issued(77, t0);
        // Blocked: no further actions.
        assert!(matches!(
            c.next_action(t0),
            CoreAction::Idle { until: None }
        ));
        let t1 = Instant::from_ps(50_000);
        c.on_read_completed(77, t1);
        // Second read becomes available, not before t1.
        match c.next_action(t1) {
            CoreAction::IssueRead { addr } => assert_eq!(addr, LineAddr::new(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stall_time(), Picos::from_ps(50_000));
    }

    #[test]
    fn mlp_limit_blocks_nth_read() {
        let cfg = CoreConfig {
            mlp: 2,
            base_ipc: 4.0,
            ..CoreConfig::default()
        };
        let mut c = Core::new(
            cfg,
            Box::new(VecTrace::new(
                "t",
                vec![
                    read_ev(0, 1, false),
                    read_ev(0, 2, false),
                    read_ev(0, 3, false),
                ],
            )),
        );
        let t0 = Instant::ZERO;
        for id in 0..2 {
            assert!(matches!(c.next_action(t0), CoreAction::IssueRead { .. }));
            c.on_read_issued(id, t0);
        }
        // Third read hits the MLP wall.
        assert!(matches!(
            c.next_action(t0),
            CoreAction::Idle { until: None }
        ));
        c.on_read_completed(0, Instant::from_ps(10_000));
        assert!(matches!(
            c.next_action(Instant::from_ps(10_000)),
            CoreAction::IssueRead { .. }
        ));
    }

    #[test]
    fn write_rejection_blocks_and_retries() {
        let mut c = core_with(vec![write_ev(0, 9), read_ev(0, 1, false)]);
        let t0 = Instant::ZERO;
        match c.next_action(t0) {
            CoreAction::IssueWrite { addr, .. } => assert_eq!(addr, LineAddr::new(9)),
            other => panic!("unexpected {other:?}"),
        }
        c.on_write_rejected(t0);
        // Retry presents the same write.
        let t1 = Instant::from_ps(5_000);
        match c.next_action(t1) {
            CoreAction::IssueWrite { addr, .. } => assert_eq!(addr, LineAddr::new(9)),
            other => panic!("unexpected {other:?}"),
        }
        c.on_write_accepted(t1);
        assert_eq!(c.stall_time(), Picos::from_ps(5_000));
        assert!(matches!(c.next_action(t1), CoreAction::IssueRead { .. }));
    }

    #[test]
    fn finishes_after_trace_and_outstanding_drain() {
        let mut c = core_with(vec![read_ev(0, 1, false)]);
        let t0 = Instant::ZERO;
        assert!(matches!(c.next_action(t0), CoreAction::IssueRead { .. }));
        c.on_read_issued(1, t0);
        assert!(matches!(
            c.next_action(t0),
            CoreAction::Idle { until: None }
        ));
        assert!(!c.is_finished());
        c.on_read_completed(1, Instant::from_ps(100));
        assert!(matches!(
            c.next_action(Instant::from_ps(100)),
            CoreAction::Finished
        ));
        assert!(c.is_finished());
    }

    #[test]
    fn ipc_reflects_retirement() {
        let mut c = core_with(vec![read_ev(8000, 1, false)]);
        let _ = c.next_action(Instant::ZERO);
        // 8000 instructions accounted; at their due time IPC = 4.
        let due = Instant::from_ps(800_000);
        assert!((c.ipc(due) - 4.0).abs() < 1e-9);
    }
}
