//! Memory-trace events: the interface between workload generators and the
//! core model.
//!
//! Traces are at the *memory-controller* level — each event is an LLC miss
//! (demand read) or an LLC write-back, separated by a count of instructions
//! that hit in the cache hierarchy and retire at the core's base IPC. This
//! is the level at which the paper's effects play out: write-latency
//! schemes change nothing above the LLC.

use ladder_reram::{LineAddr, LineData};

/// Kind of memory operation an event performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// LLC-miss demand read. `critical` reads stall the core until the
    /// data returns (a dependent load); others only occupy an MSHR.
    Read {
        /// Line to read.
        addr: LineAddr,
        /// Whether the core blocks on this read's completion.
        critical: bool,
    },
    /// LLC write-back of a dirty line.
    Write {
        /// Line to write.
        addr: LineAddr,
        /// The line's new contents.
        data: Box<LineData>,
    },
}

/// One trace event: `gap` instructions of cache-resident work, then `op`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEvent {
    /// Instructions retired (at base IPC) before the memory operation.
    pub gap_instructions: u64,
    /// The memory operation.
    pub op: TraceOp,
}

/// A source of trace events (implemented by workload generators).
pub trait TraceSource {
    /// Produces the next event, or `None` when the trace is exhausted.
    fn next_event(&mut self) -> Option<MemEvent>;

    /// Short label for reports.
    fn label(&self) -> &str;
}

/// A trace source backed by a pre-built vector (tests, replay).
#[derive(Debug, Clone)]
pub struct VecTrace {
    label: String,
    events: std::vec::IntoIter<MemEvent>,
}

impl VecTrace {
    /// Wraps a vector of events.
    pub fn new(label: impl Into<String>, events: Vec<MemEvent>) -> Self {
        Self {
            label: label.into(),
            events: events.into_iter(),
        }
    }
}

impl TraceSource for VecTrace {
    fn next_event(&mut self) -> Option<MemEvent> {
        self.events.next()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_replays_in_order() {
        let mut t = VecTrace::new(
            "t",
            vec![
                MemEvent {
                    gap_instructions: 10,
                    op: TraceOp::Read {
                        addr: LineAddr::new(1),
                        critical: true,
                    },
                },
                MemEvent {
                    gap_instructions: 5,
                    op: TraceOp::Write {
                        addr: LineAddr::new(2),
                        data: Box::new([0; 64]),
                    },
                },
            ],
        );
        assert_eq!(t.label(), "t");
        assert_eq!(t.next_event().expect("first").gap_instructions, 10);
        assert_eq!(t.next_event().expect("second").gap_instructions, 5);
        assert!(t.next_event().is_none());
    }
}
