//! The [`Mergeable`] trait, the [`MetricsRegistry`], and the
//! [`TraceTotals`] aggregate a recorder maintains alongside its ring.

use crate::histogram::LatencyHistogram;
use crate::record::{DispatchKind, PulseKind, ReadClass, TraceRecord};
use ladder_reram::Picos;
use std::collections::BTreeMap;

/// A value that folds with other values of its type.
///
/// The contract (checked by property tests at the workspace root):
///
/// * **associative** — `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`
/// * **commutative** — `a ⊕ b == b ⊕ a`
/// * **identity** — `a ⊕ Default::default() == a`
///
/// Together these make per-worker statistics fold deterministically at any
/// `--jobs`: a sharded fold over any partition equals the sequential fold.
pub trait Mergeable: Default {
    /// Folds `other` into `self`.
    fn merge_from(&mut self, other: &Self);
}

/// Folds an iterator of mergeable parts into one value.
///
/// # Examples
///
/// ```
/// let total: u64 = ladder_trace::fold([1u64, 2, 3]);
/// assert_eq!(total, 6);
/// ```
pub fn fold<M: Mergeable>(parts: impl IntoIterator<Item = M>) -> M {
    let mut acc = M::default();
    for p in parts {
        acc.merge_from(&p);
    }
    acc
}

/// Plain counters merge by addition.
impl Mergeable for u64 {
    fn merge_from(&mut self, other: &Self) {
        *self += other;
    }
}

impl Mergeable for Picos {
    fn merge_from(&mut self, other: &Self) {
        *self += *other;
    }
}

impl Mergeable for LatencyHistogram {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// A name-keyed registry of mergeable counters and latency histograms —
/// the generic container ad-hoc stat structs migrate toward. Keys are
/// ordered, so iteration (and therefore any export) is deterministic.
///
/// # Examples
///
/// ```
/// use ladder_reram::Picos;
/// use ladder_trace::{Mergeable, MetricsRegistry};
///
/// let mut a = MetricsRegistry::new();
/// a.add("writes", 3);
/// a.observe("read_latency", Picos::from_ns(35.0));
/// let mut b = MetricsRegistry::new();
/// b.add("writes", 4);
/// a.merge_from(&b);
/// assert_eq!(a.counter("writes"), 7);
/// assert_eq!(a.histogram("read_latency").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The named counter's value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, sample: Picos) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// The named histogram, when any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

impl Mergeable for MetricsRegistry {
    fn merge_from(&mut self, other: &Self) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// Exact aggregates over *every* record a recorder ever saw — maintained
/// at record time, so a bounded ring (which keeps only the most recent
/// events for export) never loses accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Kernel dispatches per [`DispatchKind`] (indexed by
    /// [`DispatchKind::index`]).
    pub dispatches: [u64; 9],
    /// Data-write RESET pulses.
    pub data_pulses: u64,
    /// Metadata write-back pulses.
    pub metadata_pulses: u64,
    /// Demand reads completed.
    pub demand_reads: u64,
    /// Stale-memory-block dependency reads completed.
    pub smb_reads: u64,
    /// Metadata fill reads completed.
    pub metadata_reads: u64,
    /// Σ demand-read latency.
    pub demand_read_latency: Picos,
    /// Metadata-cache hits.
    pub cache_hits: u64,
    /// Metadata-cache misses.
    pub cache_misses: u64,
    /// Dirty metadata write-backs enqueued by policy calls.
    pub cache_writebacks: u64,
    /// Failed verifies (== escalated retry pulses issued).
    pub failed_verifies: u64,
    /// Residual failed bits absorbed by correction budgets.
    pub ecc_corrected_bits: u64,
    /// Writes whose residue exceeded the correction budget.
    pub uncorrectable: u64,
    /// Σ write-queue wait across data writes.
    pub queue_wait: Picos,
    /// Σ chosen pulse width (`tWR`) across data writes.
    pub pulse_time: Picos,
    /// Σ verify/retry time across data writes.
    pub retry_time: Picos,
    /// Σ service window (dispatch → completion) across data writes.
    pub service_time: Picos,
    /// Σ worst-case pulse width across data writes.
    pub worst_pulse_time: Picos,
    /// Σ location-aware-bound pulse width across data writes.
    pub location_pulse_time: Picos,
    /// Σ pulse width (`tWR`) across metadata write-backs.
    pub metadata_pulse_time: Picos,
    /// Shard identity stamps seen (one per shard of a sharded run; zero
    /// on the monolithic path).
    pub shard_tags: u64,
    /// Tiered-ECC resolves seen (zero outside tiered coding modes).
    pub tier_ecc: u64,
    /// Residual bits handled by tiered resolves.
    pub tier_ecc_bits: u64,
    /// Remap-backend page moves traced at resolve time (zero outside
    /// non-default remap modes).
    pub pad_remaps: u64,
}

impl TraceTotals {
    /// Dispatch count for one kind.
    pub fn dispatch(&self, kind: DispatchKind) -> u64 {
        self.dispatches[kind.index()]
    }

    /// Total kernel dispatches.
    pub fn dispatch_total(&self) -> u64 {
        self.dispatches.iter().sum()
    }

    /// Controller overhead inside data-write service windows: everything
    /// that is neither the pulse nor verify/retry (tRCD, burst, bus
    /// serialization).
    pub fn overhead_time(&self) -> Picos {
        self.service_time
            .saturating_sub(self.pulse_time)
            .saturating_sub(self.retry_time)
    }

    /// Pulse time saved by knowing the write's location
    /// (`Σ t_worst − Σ t_loc`).
    pub fn location_saving(&self) -> Picos {
        self.worst_pulse_time
            .saturating_sub(self.location_pulse_time)
    }

    /// Pulse time saved by knowing the write's content on top of its
    /// location (`Σ t_loc − Σ t_wr`).
    pub fn content_saving(&self) -> Picos {
        self.location_pulse_time.saturating_sub(self.pulse_time)
    }

    /// Metadata-cache hit ratio over the traced run.
    pub fn cache_hit_ratio(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Folds one record into the totals.
    pub(crate) fn apply(&mut self, record: &TraceRecord) {
        match *record {
            TraceRecord::KernelDispatch { kind } => self.dispatches[kind.index()] += 1,
            TraceRecord::ResetPulse {
                kind,
                t_wr,
                queue_wait,
                retry_time,
                service,
                t_worst,
                t_loc,
                ..
            } => match kind {
                PulseKind::Data => {
                    self.data_pulses += 1;
                    self.queue_wait += queue_wait;
                    self.pulse_time += t_wr;
                    self.retry_time += retry_time;
                    self.service_time += service;
                    self.worst_pulse_time += t_worst;
                    self.location_pulse_time += t_loc;
                }
                PulseKind::Metadata => {
                    self.metadata_pulses += 1;
                    self.metadata_pulse_time += t_wr;
                }
            },
            TraceRecord::ReadComplete { class, latency } => match class {
                ReadClass::Demand => {
                    self.demand_reads += 1;
                    self.demand_read_latency += latency;
                }
                ReadClass::Smb => self.smb_reads += 1,
                ReadClass::Metadata => self.metadata_reads += 1,
            },
            TraceRecord::CacheAccess {
                hits,
                misses,
                writebacks,
            } => {
                self.cache_hits += hits as u64;
                self.cache_misses += misses as u64;
                self.cache_writebacks += writebacks as u64;
            }
            TraceRecord::VerifyRetry { .. } => self.failed_verifies += 1,
            TraceRecord::EccCorrection { bits } => self.ecc_corrected_bits += bits as u64,
            TraceRecord::Uncorrectable => self.uncorrectable += 1,
            TraceRecord::ShardTag { .. } => self.shard_tags += 1,
            TraceRecord::TierEcc { bits, .. } => {
                self.tier_ecc += 1;
                self.tier_ecc_bits += bits as u64;
            }
            TraceRecord::PadRemap { .. } => self.pad_remaps += 1,
        }
    }

    /// Renders the totals as a generic [`MetricsRegistry`] (the exporters'
    /// counter section).
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for k in DispatchKind::ALL {
            let n = self.dispatch(k);
            if n > 0 {
                reg.add(&format!("dispatch.{}", k.name()), n);
            }
        }
        reg.add("pulses.data", self.data_pulses);
        reg.add("pulses.metadata", self.metadata_pulses);
        reg.add("reads.demand", self.demand_reads);
        reg.add("reads.smb", self.smb_reads);
        reg.add("reads.metadata", self.metadata_reads);
        reg.add("cache.hits", self.cache_hits);
        reg.add("cache.misses", self.cache_misses);
        reg.add("cache.writebacks", self.cache_writebacks);
        reg.add("pv.failed_verifies", self.failed_verifies);
        reg.add("pv.ecc_corrected_bits", self.ecc_corrected_bits);
        reg.add("pv.uncorrectable", self.uncorrectable);
        reg.add("time.queue_wait_ps", self.queue_wait.as_ps());
        reg.add("time.pulse_ps", self.pulse_time.as_ps());
        reg.add("time.retry_ps", self.retry_time.as_ps());
        reg.add("time.service_ps", self.service_time.as_ps());
        reg.add("time.metadata_pulse_ps", self.metadata_pulse_time.as_ps());
        // Only sharded runs carry identity stamps; keep the monolithic
        // export byte-identical by omitting the zero counter.
        if self.shard_tags > 0 {
            reg.add("shard.tags", self.shard_tags);
        }
        // Coding/remap detail records only exist in non-default modes;
        // omit the zero counters so legacy exports stay byte-identical.
        if self.tier_ecc > 0 {
            reg.add("coding.tier_resolves", self.tier_ecc);
            reg.add("coding.tier_bits", self.tier_ecc_bits);
        }
        if self.pad_remaps > 0 {
            reg.add("coding.remaps", self.pad_remaps);
        }
        reg
    }
}

impl Mergeable for TraceTotals {
    fn merge_from(&mut self, other: &Self) {
        for (a, b) in self.dispatches.iter_mut().zip(&other.dispatches) {
            *a += b;
        }
        self.data_pulses += other.data_pulses;
        self.metadata_pulses += other.metadata_pulses;
        self.demand_reads += other.demand_reads;
        self.smb_reads += other.smb_reads;
        self.metadata_reads += other.metadata_reads;
        self.demand_read_latency += other.demand_read_latency;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_writebacks += other.cache_writebacks;
        self.failed_verifies += other.failed_verifies;
        self.ecc_corrected_bits += other.ecc_corrected_bits;
        self.uncorrectable += other.uncorrectable;
        self.queue_wait += other.queue_wait;
        self.pulse_time += other.pulse_time;
        self.retry_time += other.retry_time;
        self.service_time += other.service_time;
        self.worst_pulse_time += other.worst_pulse_time;
        self.location_pulse_time += other.location_pulse_time;
        self.metadata_pulse_time += other.metadata_pulse_time;
        self.shard_tags += other.shard_tags;
        self.tier_ecc += other.tier_ecc;
        self.tier_ecc_bits += other.tier_ecc_bits;
        self.pad_remaps += other.pad_remaps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", Picos::from_ps(100));
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 5);
        b.observe("h", Picos::from_ps(200));
        a.merge_from(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.counter("missing"), 0);
    }

    #[test]
    fn fold_helper_equals_manual_accumulation() {
        let parts = vec![
            TraceTotals {
                data_pulses: 2,
                ..Default::default()
            },
            TraceTotals {
                data_pulses: 3,
                cache_hits: 1,
                ..Default::default()
            },
        ];
        let total: TraceTotals = fold(parts);
        assert_eq!(total.data_pulses, 5);
        assert_eq!(total.cache_hits, 1);
    }

    #[test]
    fn totals_apply_routes_every_record() {
        let mut t = TraceTotals::default();
        t.apply(&TraceRecord::KernelDispatch {
            kind: DispatchKind::CtrlBankFree,
        });
        t.apply(&TraceRecord::ReadComplete {
            class: ReadClass::Demand,
            latency: Picos::from_ps(10),
        });
        t.apply(&TraceRecord::EccCorrection { bits: 4 });
        assert_eq!(t.dispatch(DispatchKind::CtrlBankFree), 1);
        assert_eq!(t.dispatch_total(), 1);
        assert_eq!(t.demand_reads, 1);
        assert_eq!(t.demand_read_latency, Picos::from_ps(10));
        assert_eq!(t.ecc_corrected_bits, 4);
    }

    #[test]
    fn attribution_splits_are_consistent() {
        let mut t = TraceTotals::default();
        t.apply(&TraceRecord::ResetPulse {
            kind: PulseKind::Data,
            wl: 1,
            bl: 2,
            c_lrs: 3,
            t_wr: Picos::from_ps(100),
            queue_wait: Picos::from_ps(50),
            retry_time: Picos::from_ps(20),
            service: Picos::from_ps(200),
            t_worst: Picos::from_ps(400),
            t_loc: Picos::from_ps(250),
        });
        assert_eq!(t.overhead_time(), Picos::from_ps(80));
        assert_eq!(t.location_saving(), Picos::from_ps(150));
        assert_eq!(t.content_saving(), Picos::from_ps(150));
    }
}
