//! Structured tracing and mergeable metrics for the LADDER simulator.
//!
//! Three layers, each usable on its own:
//!
//! * **Records** ([`TraceRecord`]) — typed, sim-time-stamped events at the
//!   granularity the paper reasons about: kernel event dispatches, RESET
//!   pulses with their ⟨WL, BL, C^w_lrs⟩ coordinates, metadata-cache
//!   activity, program-and-verify retries, ECC resolutions.
//! * **Recording** ([`TraceRecorder`]) — a per-worker ring buffer that is
//!   free when disabled: one branch per call site, no allocation, no
//!   atomics (each simulation worker owns its recorder outright, which is
//!   what makes it lock-free). While recording it also folds every record
//!   into a running [`TraceDigest`] and a [`TraceTotals`] aggregate, so
//!   bounded ring capacity never loses accounting — only raw events.
//! * **Merging & export** ([`Mergeable`], [`MetricsRegistry`],
//!   [`chrome_trace_json`], [`time_attribution`]) — per-worker results fold
//!   deterministically at any `--jobs`, and an assembled [`Trace`] renders
//!   to chrome://tracing JSON or a per-phase write-latency attribution
//!   summary.
//!
//! # Examples
//!
//! ```
//! use ladder_reram::{Instant, Picos};
//! use ladder_trace::{DispatchKind, Trace, TraceRecord, TraceRecorder};
//!
//! let mut rec = TraceRecorder::with_capacity(16);
//! rec.record(
//!     Instant::from_ps(100),
//!     TraceRecord::KernelDispatch { kind: DispatchKind::CoreWake },
//! );
//! let trace = Trace::assemble(vec![("kernel", rec)]);
//! assert_eq!(trace.totals.dispatch(DispatchKind::CoreWake), 1);
//! assert_eq!(trace.records, 1);
//!
//! // A disabled recorder costs one branch and records nothing.
//! let mut off = TraceRecorder::disabled();
//! off.record(Instant::ZERO, TraceRecord::Uncorrectable);
//! assert_eq!(off.records(), 0);
//! ```

mod export;
mod histogram;
mod metrics;
mod record;
mod recorder;
mod slo;

pub use export::{chrome_trace_json, time_attribution};
pub use histogram::LatencyHistogram;
pub use metrics::{fold, Mergeable, MetricsRegistry, TraceTotals};
pub use record::{DispatchKind, PulseKind, ReadClass, TraceEvent, TraceRecord, C_LRS_UNTRACKED};
pub use recorder::{merge_digests, Trace, TraceDigest, TracePart, TraceRecorder};
pub use slo::{qos_name, SloReport, SloRow, TenantGroup, TenantLatencies};
