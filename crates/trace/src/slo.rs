//! Per-tenant latency groups and the SLO report open-loop service runs
//! produce.
//!
//! The service model tags every request with its tenant; the kernel
//! records each read's arrival→completion latency into that tenant's
//! group here. Groups fold through [`Mergeable`] (keyed by tenant name,
//! in [`BTreeMap`] order), so a sharded run's per-tenant tails merge
//! bit-reproducibly at any `--jobs`, exactly like every other statistic.
//!
//! [`SloReport`] is the presentation layer: per-tenant p50/p99/p999 read
//! latency, achieved throughput, and Jain's fairness index over
//! weight-normalized throughput.

use crate::histogram::LatencyHistogram;
use crate::metrics::Mergeable;
use ladder_reram::Picos;
use std::collections::BTreeMap;

/// Tenant QoS class codes, as carried through the trace layer (which
/// cannot depend on the workload crate's `QosClass` enum): `1` premium,
/// `2` standard, `3` best-effort, `0` unset.
pub fn qos_name(code: u64) -> &'static str {
    match code {
        1 => "premium",
        2 => "standard",
        3 => "best-effort",
        _ => "unset",
    }
}

/// One tenant's latency group: identity metadata plus the read-latency
/// histogram and write counter the kernel maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantGroup {
    /// The tenant's mix weight in parts-per-million (identity metadata:
    /// merges by `max`, so folding shards that agree is a no-op).
    pub weight_ppm: u64,
    /// QoS class code (see [`qos_name`]; identity metadata, merges by
    /// `max`).
    pub qos_code: u64,
    /// Arrival→completion latency of every completed read.
    pub reads: LatencyHistogram,
    /// Writes accepted into the controller on this tenant's behalf.
    pub writes: u64,
}

impl Mergeable for TenantGroup {
    fn merge_from(&mut self, other: &Self) {
        // Identity fields agree across shards of one run; `max` keeps the
        // merge associative/commutative with the all-zero identity.
        self.weight_ppm = self.weight_ppm.max(other.weight_ppm);
        self.qos_code = self.qos_code.max(other.qos_code);
        self.reads.merge(&other.reads);
        self.writes += other.writes;
    }
}

/// Name-keyed per-tenant latency groups — the mergeable aggregate a
/// service-mode kernel maintains.
///
/// # Examples
///
/// ```
/// use ladder_reram::Picos;
/// use ladder_trace::{Mergeable, TenantLatencies};
///
/// let mut a = TenantLatencies::default();
/// a.ensure("t0", 500_000, 1);
/// a.record_read("t0", Picos::from_ns(40.0));
/// let mut b = TenantLatencies::default();
/// b.ensure("t0", 500_000, 1);
/// b.record_read("t0", Picos::from_ns(900.0));
/// a.merge_from(&b);
/// assert_eq!(a.group("t0").unwrap().reads.count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLatencies {
    groups: BTreeMap<String, TenantGroup>,
}

impl TenantLatencies {
    /// Creates (or re-stamps) a tenant's group with its identity
    /// metadata. Call once per tenant before recording, so every tenant
    /// appears in the report even when it completed no reads.
    pub fn ensure(&mut self, tenant: &str, weight_ppm: u64, qos_code: u64) {
        let g = self.groups.entry(tenant.to_string()).or_default();
        g.weight_ppm = g.weight_ppm.max(weight_ppm);
        g.qos_code = g.qos_code.max(qos_code);
    }

    /// Records one completed read's arrival→completion latency.
    pub fn record_read(&mut self, tenant: &str, latency: Picos) {
        self.groups
            .entry(tenant.to_string())
            .or_default()
            .reads
            .record(latency);
    }

    /// Counts one accepted write.
    pub fn note_write(&mut self, tenant: &str) {
        self.groups.entry(tenant.to_string()).or_default().writes += 1;
    }

    /// One tenant's group, when present.
    pub fn group(&self, tenant: &str) -> Option<&TenantGroup> {
        self.groups.get(tenant)
    }

    /// Iterates groups in tenant-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantGroup)> {
        self.groups.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether no tenant was ever registered or recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Reads completed across every tenant.
    pub fn total_reads(&self) -> u64 {
        self.groups.values().map(|g| g.reads.count()).sum()
    }

    /// Writes accepted across every tenant.
    pub fn total_writes(&self) -> u64 {
        self.groups.values().map(|g| g.writes).sum()
    }
}

impl Mergeable for TenantLatencies {
    fn merge_from(&mut self, other: &Self) {
        for (k, g) in &other.groups {
            self.groups.entry(k.clone()).or_default().merge_from(g);
        }
    }
}

/// One tenant's row of an [`SloReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloRow {
    /// Tenant name.
    pub tenant: String,
    /// QoS class name (see [`qos_name`]).
    pub qos: &'static str,
    /// Reads completed.
    pub reads: u64,
    /// Writes accepted.
    pub writes: u64,
    /// Median read latency.
    pub p50: Picos,
    /// 99th-percentile read latency.
    pub p99: Picos,
    /// 99.9th-percentile read latency.
    pub p999: Picos,
    /// Mean read latency.
    pub mean: Picos,
    /// Worst read latency.
    pub max: Picos,
    /// Achieved request throughput, requests per microsecond.
    pub throughput: f64,
}

/// The per-tenant tail-latency report of one open-loop service run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Per-tenant rows, in tenant-name order.
    pub rows: Vec<SloRow>,
    /// Achieved request throughput across all tenants, requests per
    /// microsecond (reads completed + writes accepted over the run's
    /// simulated span) — the saturation throughput when offered load
    /// exceeds capacity.
    pub throughput: f64,
    /// Jain's fairness index over weight-normalized per-tenant
    /// throughput: `(Σx)² / (n·Σx²)`, `x_i = requests_i / weight_i`.
    /// `1.0` means perfectly weight-proportional service.
    pub fairness: f64,
}

impl SloReport {
    /// Builds the report from folded per-tenant groups and the run's
    /// simulated span.
    pub fn build(tenants: &TenantLatencies, elapsed: Picos) -> Self {
        let us = (elapsed.as_ps() as f64 / 1e6).max(1e-12);
        let rows: Vec<SloRow> = tenants
            .iter()
            .map(|(name, g)| SloRow {
                tenant: name.to_string(),
                qos: qos_name(g.qos_code),
                reads: g.reads.count(),
                writes: g.writes,
                p50: g.reads.percentile(0.50),
                p99: g.reads.percentile(0.99),
                p999: g.reads.percentile(0.999),
                mean: g.reads.mean(),
                max: g.reads.max(),
                throughput: (g.reads.count() + g.writes) as f64 / us,
            })
            .collect();
        let throughput = (tenants.total_reads() + tenants.total_writes()) as f64 / us;
        let normalized: Vec<f64> = tenants
            .iter()
            .filter(|(_, g)| g.weight_ppm > 0)
            .map(|(_, g)| (g.reads.count() + g.writes) as f64 / g.weight_ppm as f64)
            .collect();
        let fairness = jain_index(&normalized);
        Self {
            rows,
            throughput,
            fairness,
        }
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "    {:<8} {:<12} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "tenant", "qos", "reads", "writes", "p50/ns", "p99/ns", "p999/ns", "mean/ns", "req/us"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "    {:<8} {:<12} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.3}",
                r.tenant,
                r.qos,
                r.reads,
                r.writes,
                r.p50.as_ns(),
                r.p99.as_ns(),
                r.p999.as_ns(),
                r.mean.as_ns(),
                r.throughput
            );
        }
        let _ = writeln!(
            out,
            "    total {:.3} req/us, fairness {:.4}",
            self.throughput, self.fairness
        );
        out
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` — `1.0` when all shares are
/// equal, `1/n` when one tenant takes everything.
fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TenantLatencies {
        let mut t = TenantLatencies::default();
        t.ensure("t0", 545_454, 1);
        t.ensure("t1", 272_727, 2);
        for i in 0..100u64 {
            t.record_read("t0", Picos::from_ns(30.0 + i as f64));
            if i % 2 == 0 {
                t.record_read("t1", Picos::from_ns(40.0 + i as f64));
            }
        }
        t.record_read("t0", Picos::from_ns(900.0));
        t.note_write("t0");
        t.note_write("t1");
        t
    }

    #[test]
    fn groups_fold_like_concatenation() {
        let mut half_a = TenantLatencies::default();
        let mut half_b = TenantLatencies::default();
        let mut whole = TenantLatencies::default();
        half_a.ensure("t0", 10, 1);
        half_b.ensure("t0", 10, 1);
        whole.ensure("t0", 10, 1);
        for i in 0..200u64 {
            let lat = Picos::from_ps(1000 + i * 7919);
            whole.record_read("t0", lat);
            if i % 2 == 0 {
                half_a.record_read("t0", lat);
            } else {
                half_b.record_read("t0", lat);
            }
        }
        half_a.merge_from(&half_b);
        assert_eq!(half_a, whole);
    }

    #[test]
    fn ensure_registers_idle_tenants() {
        let mut t = TenantLatencies::default();
        t.ensure("idle", 100, 3);
        let report = SloReport::build(&t, Picos::from_ns(1000.0));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].reads, 0);
        assert_eq!(report.rows[0].qos, "best-effort");
    }

    #[test]
    fn report_orders_rows_and_computes_tails() {
        let t = sample();
        let report = SloReport::build(&t, Picos::from_ps(101 * 1_000_000));
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].tenant, "t0");
        assert_eq!(report.rows[0].qos, "premium");
        assert_eq!(report.rows[1].qos, "standard");
        let r0 = &report.rows[0];
        assert_eq!(r0.reads, 101);
        assert_eq!(r0.writes, 1);
        assert!(r0.p50 <= r0.p99 && r0.p99 <= r0.p999);
        assert!(r0.p999.as_ns() >= 500.0, "tail must see the 900 ns read");
        // 153 requests over 101 us.
        assert!((report.throughput - 153.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_is_one_when_weight_proportional_and_low_when_starved() {
        let mut fair = TenantLatencies::default();
        fair.ensure("a", 500_000, 1);
        fair.ensure("b", 250_000, 2);
        for _ in 0..100 {
            fair.record_read("a", Picos::from_ns(30.0));
        }
        for _ in 0..50 {
            fair.record_read("b", Picos::from_ns(30.0));
        }
        let f = SloReport::build(&fair, Picos::from_ns(1000.0)).fairness;
        assert!((f - 1.0).abs() < 1e-9, "proportional service: {f}");

        let mut starved = TenantLatencies::default();
        starved.ensure("a", 500_000, 1);
        starved.ensure("b", 500_000, 2);
        for _ in 0..100 {
            starved.record_read("a", Picos::from_ns(30.0));
        }
        let s = SloReport::build(&starved, Picos::from_ns(1000.0)).fairness;
        assert!((s - 0.5).abs() < 1e-9, "one of two starved: {s}");
    }

    #[test]
    fn render_lists_every_tenant() {
        let report = SloReport::build(&sample(), Picos::from_ps(1_000_000));
        let text = report.render();
        assert!(text.contains("t0"), "{text}");
        assert!(text.contains("t1"), "{text}");
        assert!(text.contains("fairness"), "{text}");
        assert!(text.contains("p999/ns"), "{text}");
    }

    #[test]
    fn qos_names_cover_codes() {
        assert_eq!(qos_name(0), "unset");
        assert_eq!(qos_name(1), "premium");
        assert_eq!(qos_name(2), "standard");
        assert_eq!(qos_name(3), "best-effort");
        assert_eq!(qos_name(99), "unset");
    }
}
