//! The per-worker ring-buffer recorder and the assembled [`Trace`].

use crate::metrics::{Mergeable, TraceTotals};
use crate::record::{fold_u64, TraceEvent, TraceRecord, FNV_OFFSET};
use ladder_reram::Instant;
use std::fmt;

/// Default ring capacity: enough to keep every event of a `--quick` run
/// while bounding memory for long ones (totals and the digest keep exact
/// accounting regardless).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A per-worker structured trace recorder.
///
/// *Zero overhead when disabled*: [`TraceRecorder::disabled`] allocates
/// nothing, and [`TraceRecorder::record`] on it is a single predictable
/// branch. *Lock-free*: each simulation worker owns its recorder outright
/// — no sharing, hence no locks or atomics; per-worker recorders are
/// folded after the run.
///
/// While enabled, every record updates three things:
///
/// * a running FNV-1a **digest** over the canonical encoding of
///   `(timestamp, record)` — the golden-trace fingerprint;
/// * exact [`TraceTotals`] — counters and time sums over *all* records;
/// * a bounded **ring** of the most recent raw events (for export). When
///   the ring wraps, the oldest events are overwritten and counted in
///   [`TraceRecorder::dropped`]; digest and totals are unaffected.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    enabled: bool,
    ring: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    dropped: u64,
    records: u64,
    digest: u64,
    totals: TraceTotals,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TraceRecorder {
    /// A disabled recorder: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ring: Vec::new(),
            cap: 0,
            start: 0,
            dropped: 0,
            records: 0,
            digest: FNV_OFFSET,
            totals: TraceTotals::default(),
        }
    }

    /// An enabled recorder with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled recorder keeping at most `capacity` raw events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            enabled: true,
            ring: Vec::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            cap: capacity,
            start: 0,
            dropped: 0,
            records: 0,
            digest: FNV_OFFSET,
            totals: TraceTotals::default(),
        }
    }

    /// Whether this recorder captures records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at simulated time `at`. A no-op (one branch)
    /// when disabled.
    #[inline]
    pub fn record(&mut self, at: Instant, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        self.push(at, record);
    }

    fn push(&mut self, at: Instant, record: TraceRecord) {
        self.records += 1;
        self.digest = record.fold_digest(at, self.digest);
        self.totals.apply(&record);
        let ev = TraceEvent { at, record };
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            // Ring is full: overwrite the oldest event.
            self.ring[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Total records ever recorded (including any the ring dropped).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Raw events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact aggregates over every record ever recorded.
    pub fn totals(&self) -> &TraceTotals {
        &self.totals
    }

    /// The running digest over every record ever recorded.
    pub fn digest(&self) -> TraceDigest {
        TraceDigest(self.digest)
    }

    /// The retained raw events in recording order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.start..]);
        out.extend_from_slice(&self.ring[..self.start]);
        out
    }
}

/// A 64-bit fingerprint of a trace: FNV-1a over the canonical encoding of
/// every `(timestamp, record)` pair in recording order. Two runs produce
/// the same digest iff they emitted the same records with the same
/// timestamps in the same order — the golden-trace regression contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceDigest(pub u64);

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Folds per-shard trace digests into one merged fingerprint.
///
/// Each shard's position and digest are folded in iteration order, so the
/// result is order-sensitive: callers must fold shards in shard-index
/// order. Because a work-stealing runner returns shard results in
/// submission order regardless of worker count, the merged digest is
/// bit-identical at any `--jobs`.
///
/// # Examples
///
/// ```
/// use ladder_trace::{merge_digests, TraceDigest};
///
/// let shards = [TraceDigest(1), TraceDigest(2)];
/// let ab = merge_digests(shards);
/// let ba = merge_digests([TraceDigest(2), TraceDigest(1)]);
/// assert_ne!(ab, ba);
/// assert_eq!(ab, merge_digests(shards));
/// ```
pub fn merge_digests(digests: impl IntoIterator<Item = TraceDigest>) -> TraceDigest {
    let mut h = FNV_OFFSET;
    for (i, d) in digests.into_iter().enumerate() {
        h = fold_u64(h, i as u64);
        h = fold_u64(h, d.0);
    }
    TraceDigest(h)
}

/// One named recorder's contribution to an assembled [`Trace`].
#[derive(Debug, Clone)]
pub struct TracePart {
    /// Which component recorded these events (e.g. `"kernel"`,
    /// `"memctrl"`).
    pub name: &'static str,
    /// Retained raw events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Records ever recorded by this part.
    pub records: u64,
    /// Raw events this part's ring dropped.
    pub dropped: u64,
    /// This part's own digest.
    pub digest: TraceDigest,
}

/// A fully assembled trace: the per-part raw events plus exact merged
/// totals and a combined digest.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-component parts, in assembly order.
    pub parts: Vec<TracePart>,
    /// Exact aggregates over every record of every part.
    pub totals: TraceTotals,
    /// Total records across parts (including ring-dropped ones).
    pub records: u64,
    /// Total raw events lost to ring wrap-around.
    pub dropped: u64,
    /// Combined digest: each part's name, record count and digest folded
    /// in assembly order.
    pub digest: TraceDigest,
}

impl Trace {
    /// Assembles named recorders into one trace. Part order is part of
    /// the combined digest, so callers must assemble in a fixed order.
    pub fn assemble(recorders: Vec<(&'static str, TraceRecorder)>) -> Trace {
        let mut totals = TraceTotals::default();
        let mut records = 0;
        let mut dropped = 0;
        let mut digest = FNV_OFFSET;
        let mut parts = Vec::with_capacity(recorders.len());
        for (name, rec) in recorders {
            totals.merge_from(rec.totals());
            records += rec.records();
            dropped += rec.dropped();
            for b in name.bytes() {
                digest = fold_u64(digest, b as u64);
            }
            digest = fold_u64(digest, rec.records());
            digest = fold_u64(digest, rec.digest().0);
            parts.push(TracePart {
                name,
                events: rec.events(),
                records: rec.records(),
                dropped: rec.dropped(),
                digest: rec.digest(),
            });
        }
        Trace {
            parts,
            totals,
            records,
            dropped,
            digest: TraceDigest(digest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DispatchKind, ReadClass};
    use ladder_reram::Picos;

    fn dispatch(kind: DispatchKind) -> TraceRecord {
        TraceRecord::KernelDispatch { kind }
    }

    #[test]
    fn disabled_recorder_allocates_and_records_nothing() {
        let mut r = TraceRecorder::disabled();
        assert_eq!(r.ring.capacity(), 0);
        r.record(Instant::ZERO, TraceRecord::Uncorrectable);
        assert_eq!(r.records(), 0);
        assert_eq!(r.totals(), &TraceTotals::default());
        assert_eq!(r.digest(), TraceDigest(FNV_OFFSET));
    }

    #[test]
    fn ring_wraps_but_totals_and_digest_keep_everything() {
        let mut full = TraceRecorder::with_capacity(4);
        let mut tiny = TraceRecorder::with_capacity(2);
        for i in 0..4u64 {
            let ev = TraceRecord::ReadComplete {
                class: ReadClass::Demand,
                latency: Picos::from_ps(i * 10),
            };
            full.record(Instant::from_ps(i), ev);
            tiny.record(Instant::from_ps(i), ev);
        }
        assert_eq!(tiny.records(), 4);
        assert_eq!(tiny.dropped(), 2);
        assert_eq!(full.dropped(), 0);
        // The digest and the totals are capacity-independent…
        assert_eq!(tiny.digest(), full.digest());
        assert_eq!(tiny.totals(), full.totals());
        assert_eq!(tiny.totals().demand_reads, 4);
        // …while the ring keeps only the most recent events.
        let kept = tiny.events();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].at, Instant::from_ps(2));
        assert_eq!(kept[1].at, Instant::from_ps(3));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = TraceRecorder::with_capacity(8);
        let mut b = TraceRecorder::with_capacity(8);
        let t = Instant::from_ps(5);
        a.record(t, dispatch(DispatchKind::CoreWake));
        a.record(t, dispatch(DispatchKind::CtrlBankFree));
        b.record(t, dispatch(DispatchKind::CtrlBankFree));
        b.record(t, dispatch(DispatchKind::CoreWake));
        assert_ne!(a.digest(), b.digest());
        // Totals, by contrast, are order-insensitive.
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn assemble_merges_totals_and_binds_part_order() {
        let mut k = TraceRecorder::with_capacity(8);
        let mut c = TraceRecorder::with_capacity(8);
        k.record(Instant::from_ps(1), dispatch(DispatchKind::CoreWake));
        c.record(Instant::from_ps(2), dispatch(DispatchKind::CtrlWorkArrived));
        let ab = Trace::assemble(vec![("kernel", k.clone()), ("memctrl", c.clone())]);
        let ba = Trace::assemble(vec![("memctrl", c), ("kernel", k)]);
        assert_eq!(ab.records, 2);
        assert_eq!(ab.totals.dispatch_total(), 2);
        assert_eq!(ab.totals, ba.totals);
        assert_ne!(ab.digest, ba.digest);
        assert_eq!(ab.parts.len(), 2);
        assert_eq!(ab.parts[0].name, "kernel");
    }

    #[test]
    fn digest_displays_as_16_hex_digits() {
        let s = TraceDigest(0xdead_beef).to_string();
        assert_eq!(s, "00000000deadbeef");
        assert_eq!(s.len(), 16);
    }
}
