//! Typed trace records and their canonical digest encoding.

use ladder_reram::{Instant, Picos};

/// What kind of discrete-event-kernel dispatch fired.
///
/// Mirrors the kernel's per-kind dispatch counters one-to-one so trace
/// totals reconcile exactly with `EventCounts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchKind {
    /// A core's compute phase ended.
    CoreWake,
    /// A demand read's data burst was delivered to its core.
    ReadComplete,
    /// Controller wake: new work arrived in a queue.
    CtrlWorkArrived,
    /// Controller wake: a bank finished its operation.
    CtrlBankFree,
    /// Controller wake: a write-queue slot freed.
    CtrlQueueSlotFree,
    /// Controller wake: a queued write's last dependency read completed.
    CtrlDepReady,
    /// Controller wake: a channel switched read/write-drain mode.
    CtrlModeSwitch,
    /// Controller wake: a program-and-verify retry pulse fired.
    CtrlRetryPulse,
    /// An open-loop service request arrived at the controller's doorstep
    /// (never emitted on the closed-loop path, so legacy digests are
    /// unaffected).
    RequestArrival,
}

impl DispatchKind {
    /// Every kind, in counter order.
    pub const ALL: [DispatchKind; 9] = [
        DispatchKind::CoreWake,
        DispatchKind::ReadComplete,
        DispatchKind::CtrlWorkArrived,
        DispatchKind::CtrlBankFree,
        DispatchKind::CtrlQueueSlotFree,
        DispatchKind::CtrlDepReady,
        DispatchKind::CtrlModeSwitch,
        DispatchKind::CtrlRetryPulse,
        DispatchKind::RequestArrival,
    ];

    /// Stable index into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            DispatchKind::CoreWake => 0,
            DispatchKind::ReadComplete => 1,
            DispatchKind::CtrlWorkArrived => 2,
            DispatchKind::CtrlBankFree => 3,
            DispatchKind::CtrlQueueSlotFree => 4,
            DispatchKind::CtrlDepReady => 5,
            DispatchKind::CtrlModeSwitch => 6,
            DispatchKind::CtrlRetryPulse => 7,
            DispatchKind::RequestArrival => 8,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchKind::CoreWake => "core-wake",
            DispatchKind::ReadComplete => "read-complete",
            DispatchKind::CtrlWorkArrived => "work-arrived",
            DispatchKind::CtrlBankFree => "bank-free",
            DispatchKind::CtrlQueueSlotFree => "queue-slot-free",
            DispatchKind::CtrlDepReady => "dep-ready",
            DispatchKind::CtrlModeSwitch => "mode-switch",
            DispatchKind::CtrlRetryPulse => "retry-pulse",
            DispatchKind::RequestArrival => "request-arrival",
        }
    }
}

/// Which queue a serviced write came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PulseKind {
    /// A data write (an LLC write-back).
    Data,
    /// A metadata write-back.
    Metadata,
}

/// Which class of read completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// A demand (CPU) read.
    Demand,
    /// A stale-memory-block dependency read.
    Smb,
    /// A metadata fill read.
    Metadata,
}

impl ReadClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReadClass::Demand => "demand",
            ReadClass::Smb => "smb",
            ReadClass::Metadata => "metadata",
        }
    }
}

/// The content value a [`TraceRecord::ResetPulse`] carries when the scheme
/// does not track `C^w_lrs` for the write (baseline, Split-reset).
pub const C_LRS_UNTRACKED: u32 = u32::MAX;

/// One typed trace record. Timestamps live in the enclosing
/// [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// The event kernel dispatched one scheduled event.
    KernelDispatch {
        /// What fired.
        kind: DispatchKind,
    },
    /// A RESET pulse was issued and its completion scheduled — one record
    /// per serviced write, carrying the paper's ⟨WL, BL, C^w_lrs⟩
    /// coordinates and the full latency decomposition of the service
    /// window.
    ResetPulse {
        /// Data write or metadata write-back.
        kind: PulseKind,
        /// Wordline of the write location.
        wl: u32,
        /// (Worst) bitline/column of the write location.
        bl: u32,
        /// Scheme-tracked `C^w_lrs` content value, or
        /// [`C_LRS_UNTRACKED`].
        c_lrs: u32,
        /// The pulse width the policy chose (`tWR`).
        t_wr: Picos,
        /// Time the request waited in the write queue before dispatch.
        queue_wait: Picos,
        /// Extra time spent on verify reads and retry pulses.
        retry_time: Picos,
        /// Full service window, dispatch → data-burst completion.
        service: Picos,
        /// The scheme's worst-case pulse width (what a location/content
        /// oblivious controller would have charged).
        t_worst: Picos,
        /// The location-aware bound: this ⟨WL, BL⟩ under worst-case
        /// content. `t_worst − t_loc` is the location saving;
        /// `t_loc − t_wr` is the content saving.
        t_loc: Picos,
    },
    /// A read completed (timestamped at completion).
    ReadComplete {
        /// Demand, SMB or metadata fill.
        class: ReadClass,
        /// Enqueue → data-burst completion.
        latency: Picos,
    },
    /// Metadata-cache activity of one policy call (prepare or service),
    /// recorded as deltas of the cache's counters so totals reconcile
    /// exactly with the cache's own statistics.
    CacheAccess {
        /// Lookups that hit.
        hits: u32,
        /// Lookups that missed.
        misses: u32,
        /// Dirty metadata write-backs the call enqueued.
        writebacks: u32,
    },
    /// A failed verify triggered one escalated retry pulse.
    VerifyRetry {
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Bits that failed the preceding verify.
        failed_bits: u32,
        /// Width of the escalated pulse (including its verify read).
        pulse: Picos,
    },
    /// Residual failed bits were absorbed by the line's correction budget.
    EccCorrection {
        /// Bits corrected.
        bits: u32,
    },
    /// Residual failed bits exceeded the correction budget (data loss).
    Uncorrectable,
    /// A tiered code resolved a line: which protection tier absorbed (or
    /// failed to absorb) the residue. Emitted only when a tiered scheme is
    /// installed, alongside the legacy [`TraceRecord::EccCorrection`] /
    /// [`TraceRecord::Uncorrectable`] record — default-mode digests never
    /// see it.
    TierEcc {
        /// Protection tier of the line's position.
        tier: u32,
        /// Residual bits the tier faced.
        bits: u32,
    },
    /// A resolve moved a faulty page to a new physical frame through the
    /// remap backend (PAD decoder swap or retirement). Emitted only in
    /// non-default remap modes.
    PadRemap {
        /// The faulty physical page.
        page: u64,
        /// The frame now serving its traffic.
        frame: u64,
    },
    /// Identity stamp of a sharded run: emitted once at t=0 by each
    /// shard's event kernel, so every shard's record stream — and hence
    /// its digest — is bound to its shard index. Never emitted on the
    /// monolithic (topology-free) path.
    ShardTag {
        /// The shard (channel) index.
        shard: u32,
    },
}

impl TraceRecord {
    /// Stable tag for the digest encoding.
    fn tag(&self) -> u64 {
        match self {
            TraceRecord::KernelDispatch { .. } => 1,
            TraceRecord::ResetPulse { .. } => 2,
            TraceRecord::ReadComplete { .. } => 3,
            TraceRecord::CacheAccess { .. } => 4,
            TraceRecord::VerifyRetry { .. } => 5,
            TraceRecord::EccCorrection { .. } => 6,
            TraceRecord::Uncorrectable => 7,
            TraceRecord::ShardTag { .. } => 8,
            TraceRecord::TierEcc { .. } => 9,
            TraceRecord::PadRemap { .. } => 10,
        }
    }

    /// Folds the canonical encoding of `(at, self)` into an FNV-1a state.
    /// Every field participates, so any drift in event content or order
    /// changes the digest.
    pub(crate) fn fold_digest(&self, at: Instant, h: u64) -> u64 {
        let mut h = fold_u64(h, at.as_ps());
        h = fold_u64(h, self.tag());
        match *self {
            TraceRecord::KernelDispatch { kind } => fold_u64(h, kind.index() as u64),
            TraceRecord::ResetPulse {
                kind,
                wl,
                bl,
                c_lrs,
                t_wr,
                queue_wait,
                retry_time,
                service,
                t_worst,
                t_loc,
            } => {
                h = fold_u64(h, matches!(kind, PulseKind::Metadata) as u64);
                h = fold_u64(h, wl as u64);
                h = fold_u64(h, bl as u64);
                h = fold_u64(h, c_lrs as u64);
                h = fold_u64(h, t_wr.as_ps());
                h = fold_u64(h, queue_wait.as_ps());
                h = fold_u64(h, retry_time.as_ps());
                h = fold_u64(h, service.as_ps());
                h = fold_u64(h, t_worst.as_ps());
                fold_u64(h, t_loc.as_ps())
            }
            TraceRecord::ReadComplete { class, latency } => {
                h = fold_u64(h, class as u64);
                fold_u64(h, latency.as_ps())
            }
            TraceRecord::CacheAccess {
                hits,
                misses,
                writebacks,
            } => {
                h = fold_u64(h, hits as u64);
                h = fold_u64(h, misses as u64);
                fold_u64(h, writebacks as u64)
            }
            TraceRecord::VerifyRetry {
                attempt,
                failed_bits,
                pulse,
            } => {
                h = fold_u64(h, attempt as u64);
                h = fold_u64(h, failed_bits as u64);
                fold_u64(h, pulse.as_ps())
            }
            TraceRecord::EccCorrection { bits } => fold_u64(h, bits as u64),
            TraceRecord::Uncorrectable => h,
            TraceRecord::ShardTag { shard } => fold_u64(h, shard as u64),
            TraceRecord::TierEcc { tier, bits } => {
                h = fold_u64(h, tier as u64);
                fold_u64(h, bits as u64)
            }
            TraceRecord::PadRemap { page, frame } => {
                h = fold_u64(h, page);
                fold_u64(h, frame)
            }
        }
    }
}

/// FNV-1a over the little-endian bytes of one `u64`.
pub(crate) fn fold_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis — the digest's initial state.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One sim-time-stamped record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the record was emitted (simulated time).
    pub at: Instant,
    /// The typed record.
    pub record: TraceRecord,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_kind_indices_are_stable_and_dense() {
        for (i, k) in DispatchKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn digest_encoding_separates_fields() {
        // Swapping two field values must not collide (a naive sum would).
        let a = TraceRecord::CacheAccess {
            hits: 3,
            misses: 5,
            writebacks: 0,
        };
        let b = TraceRecord::CacheAccess {
            hits: 5,
            misses: 3,
            writebacks: 0,
        };
        let t = Instant::from_ps(42);
        assert_ne!(a.fold_digest(t, FNV_OFFSET), b.fold_digest(t, FNV_OFFSET));
    }

    #[test]
    fn digest_depends_on_timestamp() {
        let r = TraceRecord::Uncorrectable;
        assert_ne!(
            r.fold_digest(Instant::from_ps(1), FNV_OFFSET),
            r.fold_digest(Instant::from_ps(2), FNV_OFFSET)
        );
    }
}
