//! Trace exporters: chrome://tracing JSON and the per-phase
//! time-attribution summary.

use crate::metrics::TraceTotals;
use crate::record::{PulseKind, TraceRecord, C_LRS_UNTRACKED};
use crate::recorder::Trace;
use ladder_reram::Picos;
use std::fmt::Write as _;

/// Simulated picoseconds rendered as the microseconds chrome://tracing
/// expects, at full picosecond resolution.
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Renders an assembled [`Trace`] as chrome://tracing JSON (the
/// `traceEvents` object format, loadable in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev)).
///
/// Each part becomes one thread: RESET pulses and verify retries render
/// as complete (`"X"`) slices, reads as complete slices ending at their
/// completion time, and everything else as instant (`"i"`) events. The
/// trace digest and exact record counts ride along in `otherData`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        // Deferred commas keep the array valid for any event count.
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"ladder-sim\"}}"
            .to_string(),
        &mut first,
    );
    for (tid, part) in trace.parts.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                part.name
            ),
            &mut first,
        );
        for ev in &part.events {
            push(render_event(tid, ev.at.as_ps(), &ev.record), &mut first);
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\
         \"digest\":\"{}\",\"records\":\"{}\",\"dropped\":\"{}\"",
        trace.digest, trace.records, trace.dropped
    );
    for (name, value) in trace.totals.to_registry().counters() {
        let _ = write!(out, ",\"{name}\":\"{value}\"");
    }
    out.push_str("}}");
    out
}

fn render_event(tid: usize, at_ps: u64, record: &TraceRecord) -> String {
    match *record {
        TraceRecord::KernelDispatch { kind } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"dispatch:{}\"}}",
            ts_us(at_ps),
            kind.name()
        ),
        TraceRecord::ResetPulse {
            kind,
            wl,
            bl,
            c_lrs,
            t_wr,
            queue_wait,
            retry_time,
            service,
            ..
        } => {
            let name = match kind {
                PulseKind::Data => "reset-pulse",
                PulseKind::Metadata => "metadata-writeback",
            };
            let c_lrs_str = if c_lrs == C_LRS_UNTRACKED {
                "\"untracked\"".to_string()
            } else {
                c_lrs.to_string()
            };
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"name\":\"{name}\",\"args\":{{\"wl\":{wl},\"bl\":{bl},\
                 \"c_lrs\":{c_lrs_str},\"t_wr_ns\":{},\"queue_wait_ns\":{},\
                 \"retry_ns\":{}}}}}",
                ts_us(at_ps),
                ts_us(service.as_ps()),
                t_wr.as_ns(),
                queue_wait.as_ns(),
                retry_time.as_ns()
            )
        }
        TraceRecord::ReadComplete { class, latency } => format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
             \"name\":\"read:{}\"}}",
            // Reads are stamped at completion; the slice starts at enqueue.
            ts_us(at_ps.saturating_sub(latency.as_ps())),
            ts_us(latency.as_ps()),
            class.name()
        ),
        TraceRecord::CacheAccess {
            hits,
            misses,
            writebacks,
        } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"cache\",\"args\":{{\"hits\":{hits},\"misses\":{misses},\
             \"writebacks\":{writebacks}}}}}",
            ts_us(at_ps)
        ),
        TraceRecord::VerifyRetry {
            attempt,
            failed_bits,
            pulse,
        } => format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
             \"name\":\"verify-retry\",\"args\":{{\"attempt\":{attempt},\
             \"failed_bits\":{failed_bits}}}}}",
            ts_us(at_ps),
            ts_us(pulse.as_ps())
        ),
        TraceRecord::EccCorrection { bits } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"ecc-correction\",\"args\":{{\"bits\":{bits}}}}}",
            ts_us(at_ps)
        ),
        TraceRecord::Uncorrectable => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"uncorrectable\"}}",
            ts_us(at_ps)
        ),
        TraceRecord::ShardTag { shard } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"p\",\
             \"name\":\"shard:{shard}\"}}",
            ts_us(at_ps)
        ),
        TraceRecord::TierEcc { tier, bits } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"tier-ecc\",\"args\":{{\"tier\":{tier},\"bits\":{bits}}}}}",
            ts_us(at_ps)
        ),
        TraceRecord::PadRemap { page, frame } => format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"pad-remap\",\"args\":{{\"page\":{page},\"frame\":{frame}}}}}",
            ts_us(at_ps)
        ),
    }
}

fn pct(part: Picos, whole: Picos) -> f64 {
    if whole.as_ps() == 0 {
        0.0
    } else {
        100.0 * part.as_ps() as f64 / whole.as_ps() as f64
    }
}

/// Renders the per-phase time-attribution summary: where each nanosecond
/// of data-write latency went (queueing vs. pulse vs. retry vs.
/// controller overhead), and how the chosen pulse widths compare against
/// the worst-case and location-aware bounds (the paper's location
/// vs. content savings split).
pub fn time_attribution(totals: &TraceTotals) -> String {
    let mut s = String::new();
    let writes = totals.data_pulses.max(1);
    let end_to_end = totals.queue_wait + totals.service_time;
    let _ = writeln!(
        s,
        "write-latency attribution ({} data writes)",
        totals.data_pulses
    );
    for (label, t) in [
        ("queue wait", totals.queue_wait),
        ("RESET pulse", totals.pulse_time),
        ("verify/retry", totals.retry_time),
        ("ctrl overhead", totals.overhead_time()),
    ] {
        let _ = writeln!(
            s,
            "  {label:<14} {:>12.3} ns/write  ({:5.1} % of end-to-end)",
            (t / writes).as_ns(),
            pct(t, end_to_end)
        );
    }
    let _ = writeln!(
        s,
        "  {:<14} {:>12.3} ns/write",
        "end-to-end",
        (end_to_end / writes).as_ns()
    );
    let _ = writeln!(s, "pulse-width decomposition (vs. oblivious worst case)");
    for (label, t) in [
        ("worst-case", totals.worst_pulse_time),
        ("location saving", totals.location_saving()),
        ("content saving", totals.content_saving()),
        ("charged pulse", totals.pulse_time),
    ] {
        let _ = writeln!(
            s,
            "  {label:<16} {:>12.3} ns/write  ({:5.1} % of worst)",
            (t / writes).as_ns(),
            pct(t, totals.worst_pulse_time)
        );
    }
    let _ = writeln!(
        s,
        "metadata cache: {} hits, {} misses (hit ratio {:.4}), {} writebacks",
        totals.cache_hits,
        totals.cache_misses,
        totals.cache_hit_ratio(),
        totals.cache_writebacks
    );
    let _ = writeln!(
        s,
        "reliability: {} failed verifies, {} ECC-corrected bits, {} uncorrectable",
        totals.failed_verifies, totals.ecc_corrected_bits, totals.uncorrectable
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DispatchKind, ReadClass};
    use crate::recorder::TraceRecorder;
    use ladder_reram::Instant;

    /// Minimal recursive-descent JSON checker: accepts exactly the RFC
    /// 8259 grammar (modulo numeric range). Returns the rest after one
    /// value.
    fn json_value(s: &[u8]) -> Result<&[u8], String> {
        let s = skip_ws(s);
        match s.first() {
            Some(b'{') => {
                let mut s = skip_ws(&s[1..]);
                if s.first() == Some(&b'}') {
                    return Ok(&s[1..]);
                }
                loop {
                    s = json_string(skip_ws(s))?;
                    s = skip_ws(s);
                    if s.first() != Some(&b':') {
                        return Err("expected ':'".into());
                    }
                    s = json_value(&s[1..])?;
                    s = skip_ws(s);
                    match s.first() {
                        Some(b',') => s = &s[1..],
                        Some(b'}') => return Ok(&s[1..]),
                        _ => return Err("expected ',' or '}'".into()),
                    }
                }
            }
            Some(b'[') => {
                let mut s = skip_ws(&s[1..]);
                if s.first() == Some(&b']') {
                    return Ok(&s[1..]);
                }
                loop {
                    s = json_value(s)?;
                    s = skip_ws(s);
                    match s.first() {
                        Some(b',') => s = &s[1..],
                        Some(b']') => return Ok(&s[1..]),
                        _ => return Err("expected ',' or ']'".into()),
                    }
                }
            }
            Some(b'"') => json_string(s),
            Some(b't') => s.strip_prefix(b"true" as &[u8]).ok_or("bad literal".into()),
            Some(b'f') => s
                .strip_prefix(b"false" as &[u8])
                .ok_or("bad literal".into()),
            Some(b'n') => s.strip_prefix(b"null" as &[u8]).ok_or("bad literal".into()),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut i = 0;
                while i < s.len()
                    && (s[i].is_ascii_digit() || matches!(s[i], b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    i += 1;
                }
                Ok(&s[i..])
            }
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn json_string(s: &[u8]) -> Result<&[u8], String> {
        if s.first() != Some(&b'"') {
            return Err("expected string".into());
        }
        let mut i = 1;
        while i < s.len() {
            match s[i] {
                b'"' => return Ok(&s[i + 1..]),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn skip_ws(mut s: &[u8]) -> &[u8] {
        while let Some(c) = s.first() {
            if c.is_ascii_whitespace() {
                s = &s[1..];
            } else {
                break;
            }
        }
        s
    }

    fn assert_valid_json(doc: &str) {
        let rest = json_value(doc.as_bytes()).unwrap_or_else(|e| panic!("{e} in {doc}"));
        assert!(
            skip_ws(rest).is_empty(),
            "trailing garbage: {:?}",
            String::from_utf8_lossy(rest)
        );
    }

    fn sample_trace() -> Trace {
        let mut k = TraceRecorder::with_capacity(64);
        let mut c = TraceRecorder::with_capacity(64);
        k.record(
            Instant::from_ps(1_000),
            TraceRecord::KernelDispatch {
                kind: DispatchKind::CoreWake,
            },
        );
        c.record(
            Instant::from_ps(2_000),
            TraceRecord::ResetPulse {
                kind: PulseKind::Data,
                wl: 7,
                bl: 120,
                c_lrs: 33,
                t_wr: Picos::from_ns(155.0),
                queue_wait: Picos::from_ns(12.0),
                retry_time: Picos::ZERO,
                service: Picos::from_ns(173.75),
                t_worst: Picos::from_ns(658.0),
                t_loc: Picos::from_ns(213.0),
            },
        );
        c.record(
            Instant::from_ps(3_000),
            TraceRecord::ResetPulse {
                kind: PulseKind::Data,
                wl: 1,
                bl: 2,
                c_lrs: C_LRS_UNTRACKED,
                t_wr: Picos::from_ns(658.0),
                queue_wait: Picos::ZERO,
                retry_time: Picos::from_ns(40.0),
                service: Picos::from_ns(700.0),
                t_worst: Picos::from_ns(658.0),
                t_loc: Picos::from_ns(658.0),
            },
        );
        c.record(
            Instant::from_ps(4_000),
            TraceRecord::ReadComplete {
                class: ReadClass::Demand,
                latency: Picos::from_ns(35.0),
            },
        );
        c.record(
            Instant::from_ps(4_500),
            TraceRecord::CacheAccess {
                hits: 1,
                misses: 1,
                writebacks: 1,
            },
        );
        c.record(
            Instant::from_ps(5_000),
            TraceRecord::VerifyRetry {
                attempt: 1,
                failed_bits: 3,
                pulse: Picos::from_ns(790.0),
            },
        );
        c.record(
            Instant::from_ps(6_000),
            TraceRecord::EccCorrection { bits: 2 },
        );
        c.record(Instant::from_ps(7_000), TraceRecord::Uncorrectable);
        Trace::assemble(vec![("kernel", k), ("memctrl", c)])
    }

    #[test]
    fn chrome_export_is_valid_json_covering_every_record_kind() {
        let trace = sample_trace();
        let doc = chrome_trace_json(&trace);
        assert_valid_json(&doc);
        assert!(doc.starts_with("{\"traceEvents\":["));
        for needle in [
            "dispatch:core-wake",
            "reset-pulse",
            "read:demand",
            "\"cache\"",
            "verify-retry",
            "ecc-correction",
            "uncorrectable",
            "\"untracked\"",
            "thread_name",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
        // otherData carries the digest for quick eyeballing.
        assert!(doc.contains(&format!("\"digest\":\"{}\"", trace.digest)));
    }

    #[test]
    fn empty_trace_still_exports_valid_json() {
        let doc = chrome_trace_json(&Trace::assemble(vec![]));
        assert_valid_json(&doc);
    }

    #[test]
    fn ts_us_keeps_picosecond_resolution() {
        assert_eq!(ts_us(0), "0.000000");
        assert_eq!(ts_us(1), "0.000001");
        assert_eq!(ts_us(13_750), "0.013750");
        assert_eq!(ts_us(2_500_000), "2.500000");
    }

    #[test]
    fn attribution_summary_adds_up() {
        let trace = sample_trace();
        let text = time_attribution(&trace.totals);
        assert!(text.contains("2 data writes"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("location saving"));
        assert!(text.contains("1 hits, 1 misses"));
        assert!(text.contains("1 failed verifies, 2 ECC-corrected bits, 1 uncorrectable"));
        // The four phases partition end-to-end time exactly.
        let t = &trace.totals;
        assert_eq!(
            t.queue_wait + t.pulse_time + t.retry_time + t.overhead_time(),
            t.queue_wait + t.service_time
        );
        // And the pulse decomposition partitions the worst-case budget.
        assert_eq!(
            t.location_saving() + t.content_saving() + t.pulse_time,
            t.worst_pulse_time
        );
    }
}
