//! Log-bucketed latency histogram for tail-latency reporting.
//!
//! The paper's motivation is that long RESETs block reads; averages hide
//! how bad the blocked reads get. The controller records every demand-read
//! latency here so experiments can report P50/P95/P99 alongside the mean.
//!
//! Bucket boundaries are hoisted to construction time (a compile-time
//! table), so recording a sample never re-derives them.

use ladder_reram::Picos;

/// Number of logarithmic buckets (~1 ns to ~1 ms at 2 buckets/octave).
const BUCKETS: usize = 64;

/// Bucket index from which the bounds table saturates: `500 ps << 54`
/// would overflow `u64`, so buckets from here up are overflow buckets
/// whose precomputed bound no longer covers their samples.
const SATURATED: usize = 53;

/// Upper latency bound of every bucket, derived once: bucket `i` covers
/// latencies up to `500 ps << i` (half-nanosecond granularity at the low
/// end), with the overflow buckets absorbing everything larger.
const BOUNDS: [Picos; BUCKETS] = build_bounds();

const fn build_bounds() -> [Picos; BUCKETS] {
    let mut bounds = [Picos::ZERO; BUCKETS];
    let mut i = 0;
    while i < BUCKETS {
        // Cap the shift so the bound never overflows u64 picoseconds.
        let shift = if i < SATURATED { i } else { SATURATED };
        bounds[i] = Picos::from_ps(500u64 << shift);
        i += 1;
    }
    bounds
}

/// A latency histogram with logarithmic buckets.
///
/// # Examples
///
/// ```
/// use ladder_reram::Picos;
/// use ladder_trace::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [30.0, 35.0, 40.0, 600.0] {
///     h.record(Picos::from_ns(ns));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.50).as_ns() < 100.0);
/// assert!(h.percentile(0.99).as_ns() > 300.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: Picos,
    max: Picos,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum: Picos::ZERO,
            max: Picos::ZERO,
        }
    }

    /// Bucket index for a latency: the first precomputed bound that
    /// covers it; samples above every bound land in the last bucket
    /// rather than being dropped.
    fn bucket_of(lat: Picos) -> usize {
        let ns2 = (lat.as_ps() / 500).max(1); // half-nanoseconds
        let idx = (64 - ns2.leading_zeros()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, lat: Picos) {
        self.counts[Self::bucket_of(lat)] += 1;
        self.total += 1;
        self.sum += lat;
        self.max = self.max.max(lat);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency.
    pub fn mean(&self) -> Picos {
        if self.total == 0 {
            Picos::ZERO
        } else {
            self.sum / self.total
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Picos {
        self.max
    }

    /// Approximate percentile (`q` in `0..=1`): the upper bound of the
    /// bucket containing the q-quantile sample, clamped at the observed
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Picos {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Picos::ZERO;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // An overflow bucket's table bound does not cover its
                // samples; the observed max is the honest answer there.
                if i >= SATURATED {
                    return self.max;
                }
                return BOUNDS[i].min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Picos::ZERO);
        assert_eq!(h.percentile(0.99), Picos::ZERO);
    }

    #[test]
    fn bounds_table_is_monotone_and_covers_every_bucket() {
        for w in BOUNDS.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // The precomputed bound of a sample's bucket covers the sample
        // (until the table saturates at the overflow bucket).
        for shift in 0..53u64 {
            for ps in [
                500u64 << shift,
                (500u64 << shift) - 1,
                (500u64 << shift) + 1,
            ] {
                let b = LatencyHistogram::bucket_of(Picos::from_ps(ps));
                if b < BUCKETS - 1 {
                    assert!(BOUNDS[b].as_ps() >= ps, "bound {b} misses {ps}");
                }
            }
        }
    }

    #[test]
    fn overflow_samples_count_in_the_last_bucket() {
        // Values above the largest bound must be counted, not dropped.
        let mut h = LatencyHistogram::new();
        let above_max_bound = BOUNDS[BUCKETS - 1] + Picos::from_ps(1);
        let huge = Picos::from_ps(1 << 62);
        assert!(huge > BOUNDS[BUCKETS - 1]);
        h.record(above_max_bound);
        h.record(huge);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), huge);
        // Both land in saturated overflow buckets, and the tail
        // percentile reports the observed max, not a stale bound.
        assert!(LatencyHistogram::bucket_of(huge) >= SATURATED);
        assert!(LatencyHistogram::bucket_of(above_max_bound) >= SATURATED);
        assert_eq!(h.percentile(1.0), huge);
        assert_eq!(h.percentile(0.5), huge);
    }

    #[test]
    fn percentiles_order_correctly() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Picos::from_ps(i * 1000)); // 1..1000 ns uniform
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50.as_ns() >= 400.0 && p50.as_ns() <= 1024.0);
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = LatencyHistogram::new();
        h.record(Picos::from_ps(100));
        h.record(Picos::from_ps(300));
        assert_eq!(h.mean(), Picos::from_ps(200));
    }

    #[test]
    fn bimodal_distribution_shows_in_the_tail() {
        // 95 % fast reads at ~35 ns, 5 % blocked behind a 658 ns write.
        let mut h = LatencyHistogram::new();
        for _ in 0..950 {
            h.record(Picos::from_ns(35.0));
        }
        for _ in 0..50 {
            h.record(Picos::from_ns(690.0));
        }
        assert!(h.percentile(0.50).as_ns() < 70.0);
        assert!(h.percentile(0.99).as_ns() > 500.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Picos::from_ns(10.0));
        b.record(Picos::from_ns(1000.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(1.0).as_ns() >= 1000.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(1.5);
    }
}
