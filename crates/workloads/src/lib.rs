//! Synthetic workload generators standing in for SPEC2006 / PARSEC.
//!
//! The paper drives its evaluation with eight single-programmed benchmarks
//! and eight four-way mixes (Table 3). SPEC binaries cannot be shipped, so
//! each benchmark is replaced by a seeded generator calibrated to the
//! properties that matter at the memory controller — intensity, locality,
//! latency sensitivity, data-pattern shape and compressibility (see
//! [`BenchmarkProfile`] and DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use ladder_cpu::TraceSource;
//! use ladder_workloads::{profile_of, WorkloadGen, MIXES};
//!
//! let mut gen = WorkloadGen::for_instructions(profile_of("libq"), 1, 0, 50_000, 100_000);
//! assert_eq!(gen.label(), "libq");
//! assert!(gen.next_event().is_some());
//! assert_eq!(MIXES.len(), 8);
//! ```

mod data;
mod generator;
mod profile;
mod rng;
pub mod service;
mod trace_io;

pub use data::{generate_line, DataSpec, PagePattern};
pub use generator::WorkloadGen;
pub use profile::{profile_of, BenchmarkProfile, MIXES, SINGLE_BENCHMARKS};
pub use rng::SplitMix64;
pub use service::{
    ArrivalProcess, BurstyArrivals, ClosedLoop, KeyPopularity, Pacing, PoissonArrivals, QosClass,
    ServiceGen, ServiceRequest, Tenant, TenantMix, UniformKeys, ZipfianKeys,
};
pub use trace_io::{load_trace, parse_trace, record_trace, serialize_trace};
