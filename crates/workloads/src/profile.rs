//! Benchmark profiles: the calibrated knobs that make a synthetic trace
//! behave like its SPEC2006/PARSEC namesake at the memory controller.
//!
//! We cannot ship SPEC binaries, so each benchmark is modelled by the
//! properties that actually drive the paper's results (DESIGN.md §2):
//! memory intensity (RPKI/WPKI), access locality (metadata cache hits),
//! latency sensitivity (dependent-load fraction, MLP), data-pattern shape
//! (`1`-bit density and clustering → LRS counters and shifting benefit) and
//! FPC compressibility (Split-reset's lever). Values are drawn from
//! published SPEC characterization studies and tuned so the relative
//! scheme ordering matches the paper's figures.

/// Tunable characteristics of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Short name used in the paper's figures (e.g. `"astar"`).
    pub name: &'static str,
    /// LLC-miss demand reads per kilo-instruction.
    pub rpki: f64,
    /// LLC write-backs per kilo-instruction.
    pub wpki: f64,
    /// Fraction of reads the core blocks on (dependent loads).
    pub dependency_fraction: f64,
    /// Maximum outstanding misses the core sustains.
    pub mlp: usize,
    /// Working-set size in 4 KB pages.
    pub working_set_pages: u64,
    /// Probability the next access stays in the current page.
    pub page_locality: f64,
    /// When leaving the current page, probability of jumping to a
    /// recently used page instead of a fresh one (temporal reuse; drives
    /// the metadata cache hit ratio).
    pub page_reuse: f64,
    /// Whether in-page accesses walk sequentially (streaming) or jump.
    pub sequential: bool,
    /// Mean fraction of `1` bits in written data.
    pub bit_density: f64,
    /// Fraction of a line's `1`s packed into per-page hot bytes
    /// (repetitive clustered patterns; what bit shifting untangles).
    pub clustering: f64,
    /// Fraction of written lines that FPC-compress to half size.
    pub compressible_fraction: f64,
}

/// The eight single-programmed benchmarks of Table 3, in figure order.
pub const SINGLE_BENCHMARKS: [&str; 8] = [
    "astar", "bwavs", "cannl", "fsim", "lbm", "libq", "mcf", "perlb",
];

/// The eight multi-programmed mixes of Table 3.
pub const MIXES: [(&str, [&str; 4]); 8] = [
    ("mix-1", ["astar", "lbm", "mcf", "cactus"]),
    ("mix-2", ["cactus", "bwavs", "perlb", "zeusmp"]),
    ("mix-3", ["bwavs", "zeusmp", "astar", "mcf"]),
    ("mix-4", ["zeusmp", "perlb", "lbm", "cactus"]),
    ("mix-5", ["cactus", "astar", "lbm", "perlb"]),
    ("mix-6", ["zeusmp", "cactus", "bwavs", "mcf"]),
    ("mix-7", ["astar", "lbm", "bwavs", "mcf"]),
    ("mix-8", ["mcf", "cactus", "zeusmp", "perlb"]),
];

/// Looks up a benchmark profile by its short name.
///
/// # Panics
///
/// Panics on an unknown name; use [`SINGLE_BENCHMARKS`]/[`MIXES`] to
/// enumerate valid ones.
///
/// # Examples
///
/// ```
/// use ladder_workloads::profile_of;
/// let mcf = profile_of("mcf");
/// assert!(mcf.dependency_fraction >= 0.15, "mcf is pointer-chasing");
/// ```
pub fn profile_of(name: &str) -> BenchmarkProfile {
    #[allow(clippy::too_many_arguments)]
    fn p(
        name: &'static str,
        rpki: f64,
        wpki: f64,
        dependency_fraction: f64,
        mlp: usize,
        working_set_pages: u64,
        page_locality: f64,
        page_reuse: f64,
        sequential: bool,
        bit_density: f64,
        clustering: f64,
        compressible_fraction: f64,
    ) -> BenchmarkProfile {
        BenchmarkProfile {
            name,
            rpki,
            wpki,
            dependency_fraction,
            mlp,
            working_set_pages,
            page_locality,
            page_reuse,
            sequential,
            bit_density,
            clustering,
            compressible_fraction,
        }
    }
    match name {
        // Pathfinding: pointer-heavy, moderate intensity, sparse clustered
        // integer data.
        "astar" => p(
            "astar", 12.0, 2.2, 0.14, 12, 20_000, 0.70, 0.80, false, 0.12, 0.60, 0.35,
        ),
        // Streaming FP solver: high bandwidth, dense FP mantissas.
        "bwavs" => p(
            "bwavs", 16.0, 4.2, 0.05, 16, 60_000, 0.85, 0.80, true, 0.35, 0.20, 0.30,
        ),
        // Simulated annealing over a netlist: random access, highly
        // compressible element data (paper Section 6.3 singles it out).
        "cannl" => p(
            "cannl", 14.0, 3.2, 0.12, 12, 50_000, 0.50, 0.75, false, 0.10, 0.50, 0.75,
        ),
        // Physics simulation: streaming FP with moderate reuse.
        "fsim" => p(
            "fsim", 9.0, 2.8, 0.07, 12, 30_000, 0.80, 0.80, true, 0.30, 0.30, 0.45,
        ),
        // Lattice-Boltzmann: the heaviest write stream, dense FP data.
        "lbm" => p(
            "lbm", 14.0, 6.5, 0.04, 16, 70_000, 0.90, 0.85, true, 0.38, 0.25, 0.30,
        ),
        // Quantum simulation: streaming over a large sparse amplitude
        // array; mostly-zero, very compressible.
        "libq" => p(
            "libq", 22.0, 3.2, 0.06, 14, 40_000, 0.90, 0.85, true, 0.08, 0.40, 0.80,
        ),
        // Sparse network simplex: the classic latency-bound pointer chaser.
        "mcf" => p(
            "mcf", 28.0, 4.2, 0.18, 14, 90_000, 0.55, 0.72, false, 0.10, 0.55, 0.55,
        ),
        // Interpreter: modest intensity, compressible heap data (paper
        // Section 6.3 singles it out).
        "perlb" => p(
            "perlb", 5.0, 1.4, 0.10, 10, 10_000, 0.75, 0.85, false, 0.15, 0.50, 0.75,
        ),
        // FP grid solvers used in the mixes.
        "cactus" => p(
            "cactus", 9.0, 3.2, 0.07, 12, 40_000, 0.80, 0.80, true, 0.33, 0.30, 0.40,
        ),
        "zeusmp" => p(
            "zeusmp", 8.0, 2.3, 0.07, 12, 35_000, 0.80, 0.80, true, 0.30, 0.30, 0.45,
        ),
        // lint: allow(panic-policy) — caller contract: benchmark names are validated against the catalog at workload parse time
        other => panic!("unknown benchmark {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_benchmarks_resolve() {
        for b in SINGLE_BENCHMARKS {
            let p = profile_of(b);
            assert_eq!(p.name, b);
            assert!(p.rpki > 0.0 && p.wpki > 0.0);
            assert!((0.0..=1.0).contains(&p.dependency_fraction));
            assert!((0.0..=1.0).contains(&p.page_locality));
            assert!((0.0..=1.0).contains(&p.page_reuse));
            assert!((0.0..=1.0).contains(&p.bit_density));
            assert!((0.0..=1.0).contains(&p.clustering));
            assert!((0.0..=1.0).contains(&p.compressible_fraction));
            assert!(p.mlp >= 1);
        }
    }

    #[test]
    fn all_mix_members_resolve() {
        for (mix, members) in MIXES {
            assert!(mix.starts_with("mix-"));
            for m in members {
                let _ = profile_of(m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = profile_of("doom");
    }

    #[test]
    fn intensity_ordering_is_sane() {
        // mcf and libq are the most read-intensive; lbm writes the most.
        let rpki_max = SINGLE_BENCHMARKS
            .iter()
            .map(|b| (profile_of(b).rpki, *b))
            .fold((0.0, ""), |a, b| if b.0 > a.0 { b } else { a });
        assert_eq!(rpki_max.1, "mcf");
        let wpki_max = SINGLE_BENCHMARKS
            .iter()
            .map(|b| (profile_of(b).wpki, *b))
            .fold((0.0, ""), |a, b| if b.0 > a.0 { b } else { a });
        assert_eq!(wpki_max.1, "lbm");
    }
}
