//! The trace generator: turns a [`BenchmarkProfile`] into a deterministic
//! stream of LLC-level memory events.

use crate::data::{generate_line, DataSpec, PagePattern};
use crate::profile::BenchmarkProfile;
use crate::rng::SplitMix64;
use crate::service::{ArrivalProcess, ClosedLoop, Pacing};
use ladder_cpu::{MemEvent, TraceOp, TraceSource};
use ladder_reram::{LineAddr, LINES_PER_WLG};
use std::collections::VecDeque;

/// Recently-used pages a jump may return to (models the reuse set real
/// applications exhibit; sized like a few levels of hot data structures).
const RECENT_PAGES: usize = 96;

/// Deterministic synthetic workload implementing [`TraceSource`].
///
/// # Examples
///
/// ```
/// use ladder_cpu::TraceSource;
/// use ladder_workloads::{profile_of, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(profile_of("astar"), 42, 1000, 5000, 200);
/// let mut reads = 0;
/// let mut writes = 0;
/// while let Some(ev) = gen.next_event() {
///     match ev.op {
///         ladder_cpu::TraceOp::Read { .. } => reads += 1,
///         ladder_cpu::TraceOp::Write { .. } => writes += 1,
///     }
/// }
/// assert_eq!(reads + writes, 200);
/// assert!(reads > writes, "astar reads more than it writes");
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    profile: BenchmarkProfile,
    rng: SplitMix64,
    seed: u64,
    page_base: u64,
    page_count: u64,
    current_page: u64,
    current_slot: u64,
    recent_pages: VecDeque<u64>,
    events_left: u64,
    arrivals: ClosedLoop,
    write_prob: f64,
}

impl WorkloadGen {
    /// Creates a generator over pages `[page_base, page_base + page_limit)`
    /// emitting `memory_events` events.
    ///
    /// The working set is the smaller of the profile's nominal working set
    /// and `page_limit`.
    ///
    /// # Panics
    ///
    /// Panics if `page_limit` is zero.
    pub fn new(
        profile: BenchmarkProfile,
        seed: u64,
        page_base: u64,
        page_limit: u64,
        memory_events: u64,
    ) -> Self {
        assert!(page_limit > 0, "page window must be nonempty");
        let page_count = profile.working_set_pages.min(page_limit);
        let arrivals = ClosedLoop::new(1000.0 / (profile.rpki + profile.wpki));
        let write_prob = profile.wpki / (profile.rpki + profile.wpki);
        Self {
            rng: SplitMix64::new(seed),
            seed,
            page_base,
            page_count,
            current_page: 0,
            current_slot: 0,
            recent_pages: VecDeque::new(),
            events_left: memory_events,
            arrivals,
            write_prob,
            profile,
        }
    }

    /// Creates a generator sized for `instructions` of execution.
    pub fn for_instructions(
        profile: BenchmarkProfile,
        seed: u64,
        page_base: u64,
        page_limit: u64,
        instructions: u64,
    ) -> Self {
        let events = (instructions as f64 * (profile.rpki + profile.wpki) / 1000.0).round() as u64;
        Self::new(profile, seed, page_base, page_limit, events.max(1))
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn advance_address(&mut self) -> LineAddr {
        let stay = self.rng.next_f64() < self.profile.page_locality;
        if self.profile.sequential {
            if stay {
                self.current_slot += 1;
                if self.current_slot >= LINES_PER_WLG as u64 {
                    self.current_slot = 0;
                    self.jump_page(true);
                }
            } else {
                self.jump_page(false);
                self.current_slot = self.rng.next_below(LINES_PER_WLG as u64);
            }
        } else {
            if !stay {
                self.jump_page(false);
            }
            self.current_slot = self.rng.next_below(LINES_PER_WLG as u64);
        }
        LineAddr::new(
            (self.page_base + self.current_page) * LINES_PER_WLG as u64 + self.current_slot,
        )
    }

    /// Leaves the current page. A `stream` departure (sequential slot
    /// wrap) continues to the next page; any other departure jumps to a
    /// recently-used page with probability `page_reuse`, else to a fresh
    /// uniform one.
    fn jump_page(&mut self, stream: bool) {
        if self.recent_pages.front() != Some(&self.current_page) {
            self.recent_pages.push_front(self.current_page);
            self.recent_pages.truncate(RECENT_PAGES);
        }
        if stream {
            self.current_page = (self.current_page + 1) % self.page_count;
            return;
        }
        let reuse = !self.recent_pages.is_empty() && self.rng.next_f64() < self.profile.page_reuse;
        self.current_page = if reuse {
            let idx = self.rng.next_below(self.recent_pages.len() as u64) as usize;
            self.recent_pages[idx]
        } else {
            self.rng.next_below(self.page_count)
        };
    }
}

impl TraceSource for WorkloadGen {
    fn next_event(&mut self) -> Option<MemEvent> {
        if self.events_left == 0 {
            return None;
        }
        self.events_left -= 1;
        // The closed-loop process draws exactly the one gap value the
        // inline `next_gap` call always drew, keeping the stream (and the
        // golden digests downstream) byte-identical.
        let gap_instructions = match self.arrivals.next_pacing(&mut self.rng) {
            Pacing::Compute(gap) | Pacing::Delay(gap) => gap,
        };
        let addr = self.advance_address();
        let op = if self.rng.next_f64() < self.write_prob {
            let spec = DataSpec {
                bit_density: self.profile.bit_density,
                clustering: self.profile.clustering,
                compressible_fraction: self.profile.compressible_fraction,
            };
            let pattern = PagePattern::for_page(addr.page(), self.seed);
            let data = generate_line(&spec, &pattern, &mut self.rng);
            TraceOp::Write {
                addr,
                data: Box::new(data),
            }
        } else {
            TraceOp::Read {
                addr,
                critical: self.rng.next_f64() < self.profile.dependency_fraction,
            }
        };
        Some(MemEvent {
            gap_instructions,
            op,
        })
    }

    fn label(&self) -> &str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_of;

    fn drain(gen: &mut WorkloadGen) -> Vec<MemEvent> {
        let mut out = Vec::new();
        while let Some(e) = gen.next_event() {
            out.push(e);
        }
        out
    }

    #[test]
    fn event_count_and_determinism() {
        let mut a = WorkloadGen::new(profile_of("mcf"), 7, 100, 1000, 500);
        let mut b = WorkloadGen::new(profile_of("mcf"), 7, 100, 1000, 500);
        let ea = drain(&mut a);
        let eb = drain(&mut b);
        assert_eq!(ea.len(), 500);
        assert_eq!(ea, eb);
    }

    #[test]
    fn addresses_stay_in_window() {
        let mut gen = WorkloadGen::new(profile_of("lbm"), 3, 5000, 2000, 2000);
        for ev in drain(&mut gen) {
            let page = match ev.op {
                TraceOp::Read { addr, .. } => addr.page(),
                TraceOp::Write { addr, .. } => addr.page(),
            };
            assert!((5000..7000).contains(&page), "page {page} outside window");
        }
    }

    #[test]
    fn read_write_ratio_tracks_profile() {
        let p = profile_of("lbm"); // rpki 14, wpki 6.5 → writes ≈ 32 %
        let expect = p.wpki / (p.rpki + p.wpki);
        let mut gen = WorkloadGen::new(p, 11, 0, 100_000, 20_000);
        let events = drain(&mut gen);
        let writes = events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Write { .. }))
            .count() as f64;
        let frac = writes / events.len() as f64;
        assert!((frac - expect).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn gap_mean_tracks_intensity() {
        let p = profile_of("perlb");
        let expect = 1000.0 / (p.rpki + p.wpki);
        let mut gen = WorkloadGen::new(p, 13, 0, 100_000, 20_000);
        let events = drain(&mut gen);
        let mean: f64 = events
            .iter()
            .map(|e| e.gap_instructions as f64)
            .sum::<f64>()
            / events.len() as f64;
        assert!((mean - expect).abs() < expect * 0.06, "mean gap {mean}");
    }

    #[test]
    fn sequential_workloads_walk_pages() {
        let mut gen = WorkloadGen::new(profile_of("bwavs"), 17, 0, 100_000, 300);
        let events = drain(&mut gen);
        let mut sequential_steps = 0;
        let mut last: Option<u64> = None;
        for ev in &events {
            let line = match ev.op {
                TraceOp::Read { addr, .. } => addr.raw(),
                TraceOp::Write { addr, .. } => addr.raw(),
            };
            if let Some(prev) = last {
                if line == prev + 1 {
                    sequential_steps += 1;
                }
            }
            last = Some(line);
        }
        assert!(
            sequential_steps > events.len() / 2,
            "streaming workload must walk sequentially ({sequential_steps})"
        );
    }

    #[test]
    fn instruction_sizing_scales_events() {
        let p = profile_of("mcf");
        let expect = ((p.rpki + p.wpki) * 1000.0).round() as u64;
        let gen = WorkloadGen::for_instructions(p, 1, 0, 100_000, 1_000_000);
        assert_eq!(gen.events_left, expect);
    }
}
