//! SplitMix64: a tiny, fast, fully deterministic PRNG.
//!
//! Workload generation must be reproducible bit-for-bit across runs and
//! platforms so every experiment is replayable; SplitMix64 (Steele et al.,
//! OOPSLA'14) is the standard seeding generator with exactly that property
//! and needs no external dependency.

/// SplitMix64 generator state.
///
/// # Examples
///
/// ```
/// use ladder_workloads::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant at workload-generation scale).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Geometric-ish gap with the given mean (rounded, at least 0).
    pub fn next_gap(&mut self, mean: f64) -> u64 {
        // Inverse-CDF exponential draw, rounded to instructions.
        let u = self.next_f64().max(1e-12);
        (-mean * u.ln()).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_reference_values() {
        // Reference outputs for seed 1234567 from the SplitMix64 paper's
        // constants (validated against the canonical C implementation).
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draws_stay_bounded() {
        let mut r = SplitMix64::new(5);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gap_mean_is_approximately_right() {
        let mut r = SplitMix64::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_gap(50.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.5, "observed mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let mut r = SplitMix64::new(1);
        let _ = r.next_below(0);
    }
}
