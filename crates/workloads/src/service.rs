//! The layered open-loop service model: arrival processes, key
//! popularity, and weighted multi-tenant request streams.
//!
//! The closed-loop generators ([`crate::WorkloadGen`]) model SPEC-like
//! LLC-miss streams: a core computes for a gap, then issues its next miss,
//! so the request rate falls whenever the memory system backs up. A ReRAM
//! module serving a key-value cache sees the opposite regime — open-loop,
//! Zipf-skewed, multi-tenant traffic that keeps arriving at wall-clock
//! rate no matter how busy the banks are. This module decomposes request
//! generation into the three layers that regime needs:
//!
//! 1. [`ArrivalProcess`] — *when* requests happen: the closed-loop
//!    compute-gap pacing the legacy generator uses, or open-loop Poisson /
//!    bursty on-off arrivals in picoseconds.
//! 2. [`KeyPopularity`] — *which key* a request touches: uniform or
//!    Zipfian (YCSB-style, Gray et al.), mapped onto a tenant's page
//!    window and then through the module's `AddressMap` like every other
//!    access.
//! 3. [`TenantMix`] — *who* is asking: weighted per-tenant streams, each
//!    carrying a [`QosClass`], so per-tenant tail latency and fairness are
//!    measurable.
//!
//! [`ServiceGen`] composes the three into a deterministic stream of
//! timestamped [`ServiceRequest`]s from a single seeded [`SplitMix64`].

use crate::data::{generate_line, DataSpec, PagePattern};
use crate::rng::SplitMix64;
use ladder_cpu::TraceOp;
use ladder_reram::{LineAddr, LINES_PER_WLG};

/// How the next request is paced relative to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Closed-loop: the issuing core computes this many instructions
    /// first (back-pressure applies — a stalled core stops the stream).
    Compute(u64),
    /// Open-loop: the request arrives this many picoseconds after the
    /// previous arrival, regardless of service-side back-pressure.
    Delay(u64),
}

/// A deterministic arrival process: the *when* layer of the service
/// model. Implementations draw exclusively from the caller's RNG so the
/// composed stream stays bit-reproducible.
pub trait ArrivalProcess: std::fmt::Debug {
    /// Draws the pacing of the next request.
    fn next_pacing(&mut self, rng: &mut SplitMix64) -> Pacing;

    /// Whether this process yields open-loop [`Pacing::Delay`] values.
    fn is_open_loop(&self) -> bool;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The closed-loop compute-gap process: exponential instruction gaps with
/// a fixed mean — exactly the pacing the legacy [`crate::WorkloadGen`]
/// always used (it is now implemented in terms of this type, preserving
/// its RNG draw order bit-for-bit).
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop {
    /// Mean compute gap in instructions between memory events.
    pub mean_gap_instructions: f64,
}

impl ClosedLoop {
    /// A closed-loop process with the given mean instruction gap.
    pub fn new(mean_gap_instructions: f64) -> Self {
        Self {
            mean_gap_instructions,
        }
    }
}

impl ArrivalProcess for ClosedLoop {
    fn next_pacing(&mut self, rng: &mut SplitMix64) -> Pacing {
        Pacing::Compute(rng.next_gap(self.mean_gap_instructions))
    }

    fn is_open_loop(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "closed-loop"
    }
}

/// Open-loop Poisson arrivals: independent exponential inter-arrival
/// times with a fixed offered load.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Mean inter-arrival time in picoseconds.
    pub mean_gap_ps: f64,
}

impl PoissonArrivals {
    /// A Poisson process with mean inter-arrival `mean_gap_ps`.
    pub fn new(mean_gap_ps: f64) -> Self {
        Self { mean_gap_ps }
    }

    /// A Poisson process offering `load` requests per microsecond.
    pub fn with_load(load_requests_per_us: f64) -> Self {
        Self::new(1e6 / load_requests_per_us.max(1e-9))
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_pacing(&mut self, rng: &mut SplitMix64) -> Pacing {
        Pacing::Delay(rng.next_gap(self.mean_gap_ps))
    }

    fn is_open_loop(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

/// Open-loop bursty on/off arrivals: geometric-length bursts of fast
/// Poisson arrivals separated by long exponential silences. With the
/// default shape (burst rate 2× the offered load, off-gap sized to one
/// mean burst), the long-run rate matches [`PoissonArrivals::with_load`]
/// at the same load while the instantaneous rate alternates between 2×
/// and 0 — the regime where open-loop queueing hurts tails most.
#[derive(Debug, Clone, Copy)]
pub struct BurstyArrivals {
    /// Mean inter-arrival time inside a burst, picoseconds.
    pub on_gap_ps: f64,
    /// Mean silent gap separating bursts, picoseconds.
    pub off_gap_ps: f64,
    /// Mean number of requests per burst.
    pub burst_len: u64,
    /// Requests left in the current burst.
    remaining: u64,
}

impl BurstyArrivals {
    /// A bursty process offering `load` requests per microsecond long-run.
    pub fn with_load(load_requests_per_us: f64) -> Self {
        let base_gap = 1e6 / load_requests_per_us.max(1e-9);
        let burst_len = 32u64;
        Self {
            // Bursts run at twice the offered rate...
            on_gap_ps: base_gap / 2.0,
            // ...and the silence between bursts averages out the excess:
            // burst_len · on_gap of quiet per burst_len requests.
            off_gap_ps: burst_len as f64 * base_gap / 2.0,
            burst_len,
            remaining: 0,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_pacing(&mut self, rng: &mut SplitMix64) -> Pacing {
        if self.remaining == 0 {
            // Start a new burst: uniform length with the configured mean,
            // preceded by the inter-burst silence.
            self.remaining = 1 + rng.next_below(2 * self.burst_len.max(1));
            let silence = rng.next_gap(self.off_gap_ps);
            let first = rng.next_gap(self.on_gap_ps);
            return Pacing::Delay(silence + first);
        }
        self.remaining -= 1;
        Pacing::Delay(rng.next_gap(self.on_gap_ps))
    }

    fn is_open_loop(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// A key-popularity distribution: the *which key* layer of the service
/// model. Keys are dense indices in `[0, keys)`; [`ServiceGen`] scatters
/// them over a tenant's page window before they reach the `AddressMap`.
pub trait KeyPopularity: std::fmt::Debug {
    /// Draws the next key index.
    fn next_key(&mut self, rng: &mut SplitMix64) -> u64;

    /// Size of the key space.
    fn keys(&self) -> u64;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Uniform key popularity: every key equally likely.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    keys: u64,
}

impl UniformKeys {
    /// A uniform distribution over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: u64) -> Self {
        assert!(keys > 0, "key space must be nonempty");
        Self { keys }
    }
}

impl KeyPopularity for UniformKeys {
    fn next_key(&mut self, rng: &mut SplitMix64) -> u64 {
        rng.next_below(self.keys)
    }

    fn keys(&self) -> u64 {
        self.keys
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Zipfian key popularity with skew `theta` (YCSB's generator, after
/// Gray et al., "Quickly Generating Billion-Record Synthetic Databases"):
/// key `k` is drawn with probability proportional to `1 / (k+1)^theta`.
/// The harmonic normalizer is precomputed once at construction, so draws
/// are O(1).
#[derive(Debug, Clone, Copy)]
pub struct ZipfianKeys {
    keys: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfianKeys {
    /// A Zipfian distribution over `keys` keys with skew `theta`
    /// (`0 < theta < 1`; YCSB's default is `0.99`).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `theta` is outside `(0, 1)`.
    pub fn new(keys: u64, theta: f64) -> Self {
        assert!(keys > 0, "key space must be nonempty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian skew must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(keys, theta);
        let zeta2 = Self::zeta(keys.min(2), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if keys < 2 {
            0.0
        } else {
            (1.0 - (2.0 / keys as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Self {
            keys,
            theta,
            zetan,
            alpha,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// The generalized harmonic number `Σ_{i=1..n} 1 / i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The skew parameter this distribution was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl KeyPopularity for ZipfianKeys {
    fn next_key(&mut self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.keys - 1);
        }
        let k = (self.keys as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.keys - 1)
    }

    fn keys(&self) -> u64 {
        self.keys
    }

    fn name(&self) -> &'static str {
        "zipfian"
    }
}

/// A tenant's quality-of-service class, carried through to the per-tenant
/// SLO report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosClass {
    /// Latency-SLO tenant (interactive traffic).
    Premium,
    /// Throughput-oriented tenant.
    Standard,
    /// Scavenger-class tenant (batch traffic).
    BestEffort,
}

impl QosClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Premium => "premium",
            QosClass::Standard => "standard",
            QosClass::BestEffort => "best-effort",
        }
    }

    /// Stable small-integer code (used by the trace layer, which cannot
    /// depend on this crate).
    pub fn code(self) -> u64 {
        match self {
            QosClass::Premium => 1,
            QosClass::Standard => 2,
            QosClass::BestEffort => 3,
        }
    }
}

/// One weighted per-tenant request stream: who is asking, how often
/// relative to the mix, which keys, over which page window, and with what
/// data shape when writing.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant label (the SLO report's row key).
    pub name: String,
    /// Relative arrival weight within the mix.
    pub weight: f64,
    /// Quality-of-service class.
    pub qos: QosClass,
    /// Fraction of the tenant's requests that are reads (GETs).
    pub read_fraction: f64,
    /// Key-popularity distribution over the tenant's key space.
    pub popularity: Box<dyn KeyPopularity>,
    /// First page of the tenant's window.
    pub page_base: u64,
    /// Pages in the tenant's window.
    pub page_count: u64,
    /// Shape of written values.
    pub data: DataSpec,
}

/// A weighted mix of tenants: the *who* layer of the service model.
#[derive(Debug)]
pub struct TenantMix {
    tenants: Vec<Tenant>,
    cumulative: Vec<f64>,
    total_weight: f64,
}

impl TenantMix {
    /// Builds a mix from explicit tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any weight is non-positive.
    pub fn new(tenants: Vec<Tenant>) -> Self {
        assert!(
            !tenants.is_empty(),
            "a tenant mix needs at least one tenant"
        );
        let mut cumulative = Vec::with_capacity(tenants.len());
        let mut total_weight = 0.0;
        for t in &tenants {
            assert!(t.weight > 0.0, "tenant {} weight must be positive", t.name);
            total_weight += t.weight;
            cumulative.push(total_weight);
        }
        Self {
            tenants,
            cumulative,
            total_weight,
        }
    }

    /// The tenants, in index order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Draws a tenant index proportionally to the weights.
    pub fn pick(&self, rng: &mut SplitMix64) -> usize {
        let x = rng.next_f64() * self.total_weight;
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.tenants.len() - 1)
    }

    /// The standard n-tenant mix over the page window
    /// `[page_base, page_base + page_span)`: harmonic weights
    /// (tenant `i` weighted `1/(i+1)`), QoS classes rotating
    /// premium → standard → best-effort, the window partitioned evenly,
    /// and Zipfian keys with skew `zipf_theta` (uniform when `0`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the window cannot give every tenant at
    /// least one page.
    pub fn standard(
        n: usize,
        page_base: u64,
        page_span: u64,
        zipf_theta: f64,
        read_fraction: f64,
    ) -> Self {
        assert!(
            n > 0 && page_span >= n as u64,
            "window of {page_span} pages cannot host {n} tenants"
        );
        let per_tenant = page_span / n as u64;
        const QOS_ROTATION: [QosClass; 3] =
            [QosClass::Premium, QosClass::Standard, QosClass::BestEffort];
        let tenants = (0..n)
            .map(|i| {
                // Bound the key space so the Zipfian normalizer stays
                // cheap to precompute and the hot set is meaningful.
                let keys = per_tenant.clamp(1, 16_384);
                let popularity: Box<dyn KeyPopularity> = if zipf_theta > 0.0 {
                    Box::new(ZipfianKeys::new(keys, zipf_theta))
                } else {
                    Box::new(UniformKeys::new(keys))
                };
                Tenant {
                    name: format!("t{i}"),
                    weight: 1.0 / (i as f64 + 1.0),
                    qos: QOS_ROTATION[i % QOS_ROTATION.len()],
                    read_fraction,
                    popularity,
                    page_base: page_base + i as u64 * per_tenant,
                    page_count: per_tenant,
                    data: DataSpec {
                        bit_density: 0.35,
                        clustering: 0.55,
                        compressible_fraction: 0.3,
                    },
                }
            })
            .collect();
        Self::new(tenants)
    }
}

/// One timestamped open-loop request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Arrival time, picoseconds of simulated time.
    pub at_ps: u64,
    /// Index of the issuing tenant within the mix.
    pub tenant: usize,
    /// The memory operation (read or write with generated contents).
    pub op: TraceOp,
}

/// The composed open-loop request stream:
/// arrival process × tenant mix × key popularity, all drawn from one
/// seeded [`SplitMix64`] so the stream is bit-reproducible.
#[derive(Debug)]
pub struct ServiceGen {
    arrivals: Box<dyn ArrivalProcess>,
    mix: TenantMix,
    rng: SplitMix64,
    seed: u64,
    clock_ps: u64,
    requests_left: u64,
}

impl ServiceGen {
    /// Composes an open-loop stream of `requests` requests.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is a closed-loop process — closed-loop pacing
    /// is instruction-relative and belongs to a core-driven generator.
    pub fn new(
        arrivals: Box<dyn ArrivalProcess>,
        mix: TenantMix,
        seed: u64,
        requests: u64,
    ) -> Self {
        assert!(
            arrivals.is_open_loop(),
            "{} is closed-loop; ServiceGen needs an open-loop arrival process",
            arrivals.name()
        );
        Self {
            arrivals,
            mix,
            rng: SplitMix64::new(seed),
            seed,
            clock_ps: 0,
            requests_left: requests,
        }
    }

    /// The tenant mix (for seeding per-tenant reports).
    pub fn mix(&self) -> &TenantMix {
        &self.mix
    }

    /// The arrival process's display name.
    pub fn arrival_name(&self) -> &'static str {
        self.arrivals.name()
    }

    /// Scatters a dense key index over a tenant's page window: a
    /// SplitMix64-style hash keyed by the tenant index, so hot keys land
    /// on unrelated pages (and therefore unrelated banks after address
    /// interleaving) instead of clustering at the window base.
    fn key_page(&self, tenant: usize, key: u64) -> u64 {
        let t = &self.mix.tenants()[tenant];
        let mut h = SplitMix64::new(
            self.seed
                .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(key.wrapping_mul(0x517c_c1b7_2722_0a95)),
        );
        t.page_base + h.next_below(t.page_count)
    }

    /// Draws the next request, or `None` when the stream is exhausted.
    ///
    /// Draw order per request (fixed — the stream's digest depends on
    /// it): arrival gap, tenant pick, key, line slot, read/write
    /// decision, then write data when writing.
    pub fn next_request(&mut self) -> Option<ServiceRequest> {
        if self.requests_left == 0 {
            return None;
        }
        self.requests_left -= 1;
        match self.arrivals.next_pacing(&mut self.rng) {
            Pacing::Delay(gap) => self.clock_ps += gap,
            // Unreachable: the constructor rejects closed-loop processes.
            Pacing::Compute(_) => return None,
        }
        let tenant = self.mix.pick(&mut self.rng);
        let key = self.mix.tenants[tenant].popularity.next_key(&mut self.rng);
        let page = self.key_page(tenant, key);
        let slot = self.rng.next_below(LINES_PER_WLG as u64);
        let addr = LineAddr::new(page * LINES_PER_WLG as u64 + slot);
        let t = &self.mix.tenants[tenant];
        let op = if self.rng.next_f64() < t.read_fraction {
            // Open-loop requests have no issuing core to stall, so the
            // criticality flag is irrelevant; mark them non-critical.
            TraceOp::Read {
                addr,
                critical: false,
            }
        } else {
            let pattern = PagePattern::for_page(page, self.seed);
            let data = generate_line(&t.data, &pattern, &mut self.rng);
            TraceOp::Write {
                addr,
                data: Box::new(data),
            }
        };
        Some(ServiceRequest {
            at_ps: self.clock_ps,
            tenant,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(g: &mut ServiceGen) -> Vec<ServiceRequest> {
        let mut out = Vec::new();
        while let Some(r) = g.next_request() {
            out.push(r);
        }
        out
    }

    fn mix3() -> TenantMix {
        TenantMix::standard(3, 1_000, 30_000, 0.99, 0.9)
    }

    #[test]
    fn closed_loop_matches_raw_gap_draws() {
        // The trait implementation must consume the RNG exactly like the
        // legacy inline draw (golden digests depend on it).
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let mut p = ClosedLoop::new(40.0);
        for _ in 0..100 {
            assert_eq!(p.next_pacing(&mut a), Pacing::Compute(b.next_gap(40.0)));
        }
        assert!(!p.is_open_loop());
    }

    #[test]
    fn poisson_hits_its_offered_load() {
        let mut rng = SplitMix64::new(7);
        let mut p = PoissonArrivals::with_load(4.0); // 4 req/us => 250 000 ps mean
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| match p.next_pacing(&mut rng) {
                Pacing::Delay(d) => d,
                Pacing::Compute(_) => 0,
            })
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 250_000.0).abs() < 10_000.0, "mean gap {mean}");
        assert!(p.is_open_loop());
    }

    #[test]
    fn bursty_long_run_rate_tracks_load_but_gaps_are_bimodal() {
        let mut rng = SplitMix64::new(11);
        let mut p = BurstyArrivals::with_load(4.0);
        let n = 50_000;
        let gaps: Vec<u64> = (0..n)
            .map(|_| match p.next_pacing(&mut rng) {
                Pacing::Delay(d) => d,
                Pacing::Compute(_) => 0,
            })
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / n as f64;
        // Long-run mean gap matches the Poisson process at the same load
        // (within sampling noise).
        assert!((mean - 250_000.0).abs() < 25_000.0, "mean gap {mean}");
        // But the distribution is bimodal: most gaps are burst-fast.
        let fast = gaps.iter().filter(|&&g| g < 250_000).count();
        assert!(fast as f64 > 0.7 * n as f64, "only {fast}/{n} burst gaps");
    }

    #[test]
    fn zipfian_is_skewed_and_uniform_is_not() {
        let mut rng = SplitMix64::new(3);
        let mut zipf = ZipfianKeys::new(1000, 0.99);
        let mut uni = UniformKeys::new(1000);
        let n = 40_000;
        let mut zipf_hot = 0u64;
        let mut uni_hot = 0u64;
        for _ in 0..n {
            if zipf.next_key(&mut rng) < 10 {
                zipf_hot += 1;
            }
            if uni.next_key(&mut rng) < 10 {
                uni_hot += 1;
            }
        }
        // The 1 % hottest keys take a large share under Zipf 0.99 …
        assert!(zipf_hot as f64 / n as f64 > 0.25, "zipf hot {zipf_hot}");
        // … and ~1 % under uniform.
        assert!(
            (uni_hot as f64) / (n as f64) < 0.03,
            "uniform hot {uni_hot}"
        );
        for _ in 0..1000 {
            assert!(zipf.next_key(&mut rng) < 1000);
        }
    }

    #[test]
    fn tenant_mix_picks_follow_weights() {
        let mix = mix3();
        let mut rng = SplitMix64::new(5);
        let mut counts = [0u64; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[mix.pick(&mut rng)] += 1;
        }
        // Harmonic weights 1, 1/2, 1/3 => shares 6/11, 3/11, 2/11.
        let share0 = counts[0] as f64 / n as f64;
        let share2 = counts[2] as f64 / n as f64;
        assert!((share0 - 6.0 / 11.0).abs() < 0.02, "t0 share {share0}");
        assert!((share2 - 2.0 / 11.0).abs() < 0.02, "t2 share {share2}");
        // QoS classes rotate.
        assert_eq!(mix.tenants()[0].qos, QosClass::Premium);
        assert_eq!(mix.tenants()[1].qos, QosClass::Standard);
        assert_eq!(mix.tenants()[2].qos, QosClass::BestEffort);
    }

    #[test]
    fn service_stream_is_deterministic_and_monotone() {
        let make = || ServiceGen::new(Box::new(PoissonArrivals::with_load(4.0)), mix3(), 42, 2_000);
        let a = drain(&mut make());
        let b = drain(&mut make());
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, b);
        // Arrival timestamps never go backwards.
        for w in a.windows(2) {
            assert!(w[0].at_ps <= w[1].at_ps);
        }
    }

    #[test]
    fn requests_stay_in_their_tenants_window() {
        let mut g = ServiceGen::new(Box::new(PoissonArrivals::with_load(8.0)), mix3(), 17, 3_000);
        for r in drain(&mut g) {
            let page = match &r.op {
                TraceOp::Read { addr, .. } => addr.page(),
                TraceOp::Write { addr, .. } => addr.page(),
            };
            let t = r.tenant;
            let base = 1_000 + t as u64 * 10_000;
            assert!(
                (base..base + 10_000).contains(&page),
                "tenant {t} page {page} outside its window"
            );
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let mut g = ServiceGen::new(
            Box::new(PoissonArrivals::with_load(8.0)),
            mix3(),
            23,
            20_000,
        );
        let reqs = drain(&mut g);
        let reads = reqs
            .iter()
            .filter(|r| matches!(r.op, TraceOp::Read { .. }))
            .count() as f64;
        let frac = reads / reqs.len() as f64;
        assert!((frac - 0.9).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "closed-loop")]
    fn service_gen_rejects_closed_loop_pacing() {
        let _ = ServiceGen::new(Box::new(ClosedLoop::new(50.0)), mix3(), 1, 10);
    }
}
