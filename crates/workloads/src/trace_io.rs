//! Trace recording and replay.
//!
//! Generated traces can be captured to a plain-text file and replayed
//! later, pinning an experiment's memory-event stream independently of the
//! generator's implementation (useful for regression baselines, for
//! sharing workloads, or for feeding externally captured traces in).
//!
//! Format: one event per line.
//!
//! ```text
//! <gap> R <line-addr-hex> <0|1 critical>
//! <gap> W <line-addr-hex> <128 hex chars of line data>
//! ```

use ladder_cpu::{MemEvent, TraceOp, TraceSource, VecTrace};
use ladder_reram::{LineAddr, LINE_BYTES};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

/// Serializes a trace source to the text format.
pub fn serialize_trace(mut source: impl TraceSource) -> String {
    let mut out = String::new();
    while let Some(ev) = source.next_event() {
        match ev.op {
            TraceOp::Read { addr, critical } => {
                let _ = writeln!(
                    out,
                    "{} R {:x} {}",
                    ev.gap_instructions,
                    addr.raw(),
                    u8::from(critical)
                );
            }
            TraceOp::Write { addr, data } => {
                let mut hex = String::with_capacity(LINE_BYTES * 2);
                for b in data.iter() {
                    let _ = write!(hex, "{b:02x}");
                }
                let _ = writeln!(out, "{} W {:x} {hex}", ev.gap_instructions, addr.raw());
            }
        }
    }
    out
}

/// Parses the text format back into events.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<MemEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let gap: u64 = parts
            .next()
            .ok_or_else(|| err("missing gap"))?
            .parse()
            .map_err(|_| err("bad gap"))?;
        let kind = parts.next().ok_or_else(|| err("missing op"))?;
        let addr = u64::from_str_radix(parts.next().ok_or_else(|| err("missing addr"))?, 16)
            .map_err(|_| err("bad addr"))?;
        let op = match kind {
            "R" => {
                let critical = parts.next().ok_or_else(|| err("missing critical flag"))? == "1";
                TraceOp::Read {
                    addr: LineAddr::new(addr),
                    critical,
                }
            }
            "W" => {
                let hex = parts.next().ok_or_else(|| err("missing data"))?;
                if hex.len() != LINE_BYTES * 2 {
                    return Err(err("data must be 128 hex chars"));
                }
                let mut data = [0u8; LINE_BYTES];
                for (i, b) in data.iter_mut().enumerate() {
                    *b = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                        .map_err(|_| err("bad hex byte"))?;
                }
                TraceOp::Write {
                    addr: LineAddr::new(addr),
                    data: Box::new(data),
                }
            }
            other => return Err(err(&format!("unknown op {other:?}"))),
        };
        events.push(MemEvent {
            gap_instructions: gap,
            op,
        });
    }
    Ok(events)
}

/// Records a trace source into a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn record_trace(path: &Path, source: impl TraceSource) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(serialize_trace(source).as_bytes())
}

/// Loads a recorded trace for replay.
///
/// # Errors
///
/// Propagates I/O errors and reports malformed lines as
/// `io::ErrorKind::InvalidData`.
pub fn load_trace(path: &Path, label: impl Into<String>) -> std::io::Result<VecTrace> {
    let mut text = String::new();
    for line in BufReader::new(std::fs::File::open(path)?).lines() {
        text.push_str(&line?);
        text.push('\n');
    }
    let events =
        parse_trace(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(VecTrace::new(label, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGen;
    use crate::profile::profile_of;

    fn collect(mut t: impl TraceSource) -> Vec<MemEvent> {
        let mut v = Vec::new();
        while let Some(e) = t.next_event() {
            v.push(e);
        }
        v
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let gen = WorkloadGen::new(profile_of("astar"), 3, 100, 1000, 300);
        let original = collect(WorkloadGen::new(profile_of("astar"), 3, 100, 1000, 300));
        let text = serialize_trace(gen);
        let parsed = parse_trace(&text).expect("parse");
        assert_eq!(parsed, original);
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("ladder_trace_io_test.trace");
        let gen = WorkloadGen::new(profile_of("lbm"), 9, 0, 500, 150);
        record_trace(&path, gen).expect("record");
        let replay = collect(load_trace(&path, "replay").expect("load"));
        let original = collect(WorkloadGen::new(profile_of("lbm"), 9, 0, 500, 150));
        assert_eq!(replay, original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\n10 R ff 1\n";
        let events = parse_trace(text).expect("parse");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].gap_instructions, 10);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        assert!(parse_trace("10 R").unwrap_err().contains("line 1"));
        assert!(parse_trace("10 R zz 1\nx W 0 00")
            .unwrap_err()
            .contains("bad addr"));
        let short_data = "5 W 40 aabb";
        assert!(parse_trace(short_data).unwrap_err().contains("128 hex"));
        assert!(parse_trace("1 Q 0 0").unwrap_err().contains("unknown op"));
    }
}
