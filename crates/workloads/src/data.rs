//! Synthetic line-content generation.
//!
//! Written data drives four scheme-relevant behaviours: the LRS population
//! of wordlines (latency), the clustering of `1`s into hot bytes (what
//! intra-line shifting fixes), page-level pattern repetition (why
//! clustering hurts: consecutive lines stack their dense bytes on the same
//! mats), and FPC compressibility (Split-reset). The generator reproduces
//! each knob explicitly and deterministically.

use crate::rng::SplitMix64;
use ladder_reram::{LineData, LINE_BYTES};

/// Per-page pattern state: hot-byte positions repeat across the lines of a
/// page, as observed in real applications (paper Section 4.1, citing
/// DEUCE's repetitive-pattern observation).
#[derive(Debug, Clone)]
pub struct PagePattern {
    /// One hot byte index per 8-byte chip group.
    hot_bytes: [usize; 8],
}

impl PagePattern {
    /// Derives the page's hot-byte layout from its page number.
    pub fn for_page(page: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ page.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let mut hot_bytes = [0usize; 8];
        for (g, h) in hot_bytes.iter_mut().enumerate() {
            *h = g * 8 + (rng.next_u64() % 8) as usize;
        }
        Self { hot_bytes }
    }
}

/// Parameters for one generated line.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    /// Mean fraction of `1` bits.
    pub bit_density: f64,
    /// Fraction of the `1`s packed into the page's hot bytes.
    pub clustering: f64,
    /// Probability the line is FPC-half-compressible.
    pub compressible_fraction: f64,
}

/// Generates the contents of one written line.
pub fn generate_line(spec: &DataSpec, pattern: &PagePattern, rng: &mut SplitMix64) -> LineData {
    if rng.next_f64() < spec.compressible_fraction {
        return compressible_line(rng);
    }
    dense_line(spec, pattern, rng)
}

/// A line that FPC compresses to ≤ half size: zeros, small integers or a
/// repeated byte.
fn compressible_line(rng: &mut SplitMix64) -> LineData {
    let mut line = [0u8; LINE_BYTES];
    match rng.next_u64() % 3 {
        0 => {} // all-zero
        1 => {
            // Small positive integers, one per 32-bit word.
            for w in 0..LINE_BYTES / 4 {
                let v = (rng.next_u64() % 128) as u32;
                line[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            // Repeated byte (struct padding / fill patterns).
            let b = (rng.next_u64() % 256) as u8;
            line.fill(b);
        }
    }
    line
}

/// An incompressible line with the requested density and clustering.
fn dense_line(spec: &DataSpec, pattern: &PagePattern, rng: &mut SplitMix64) -> LineData {
    let mut line = [0u8; LINE_BYTES];
    let total_ones = (spec.bit_density * (LINE_BYTES * 8) as f64).round() as usize;
    let clustered = (total_ones as f64 * spec.clustering).round() as usize;
    let scattered = total_ones - clustered;
    // Clustered ones: fill the page's hot bytes (one per chip group),
    // spilling into the byte after each hot byte when they overflow.
    let mut remaining = clustered;
    let mut level = 0usize;
    while remaining > 0 && level < 16 {
        for g in 0..8 {
            if remaining == 0 {
                break;
            }
            let byte = (pattern.hot_bytes[g] + level / 8) % LINE_BYTES;
            let bit = level % 8;
            if line[byte] & (1 << bit) == 0 {
                line[byte] |= 1 << bit;
                remaining -= 1;
            }
        }
        level += 1;
    }
    // Scattered ones: uniform random positions.
    let mut placed = 0;
    let mut guard = 0;
    while placed < scattered && guard < scattered * 8 {
        guard += 1;
        let pos = (rng.next_u64() % (LINE_BYTES * 8) as u64) as usize;
        let (byte, bit) = (pos / 8, pos % 8);
        if line[byte] & (1 << bit) == 0 {
            line[byte] |= 1 << bit;
            placed += 1;
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_baselines::is_half_compressible;

    fn spec(d: f64, c: f64, z: f64) -> DataSpec {
        DataSpec {
            bit_density: d,
            clustering: c,
            compressible_fraction: z,
        }
    }

    fn ones(l: &LineData) -> usize {
        ladder_reram::bits::ones(l) as usize
    }

    #[test]
    fn density_is_respected_on_average() {
        let pattern = PagePattern::for_page(3, 42);
        let mut rng = SplitMix64::new(7);
        let s = spec(0.2, 0.3, 0.0);
        let mean: f64 = (0..200)
            .map(|_| ones(&generate_line(&s, &pattern, &mut rng)) as f64)
            .sum::<f64>()
            / 200.0;
        let target = 0.2 * 512.0;
        assert!(
            (mean - target).abs() < target * 0.15,
            "mean {mean} vs {target}"
        );
    }

    #[test]
    fn compressible_lines_actually_compress() {
        let pattern = PagePattern::for_page(0, 1);
        let mut rng = SplitMix64::new(9);
        let s = spec(0.3, 0.3, 1.0);
        for _ in 0..50 {
            let l = generate_line(&s, &pattern, &mut rng);
            assert!(is_half_compressible(&l));
        }
    }

    #[test]
    fn clustering_concentrates_ones_in_hot_bytes() {
        let pattern = PagePattern::for_page(11, 5);
        let mut rng = SplitMix64::new(3);
        let tight = spec(0.1, 1.0, 0.0);
        let loose = spec(0.1, 0.0, 0.0);
        let worst_byte = |l: &LineData| ladder_reram::bits::worst_byte_ones(l);
        let tight_worst: u32 = (0..50)
            .map(|_| worst_byte(&generate_line(&tight, &pattern, &mut rng)))
            .sum();
        let loose_worst: u32 = (0..50)
            .map(|_| worst_byte(&generate_line(&loose, &pattern, &mut rng)))
            .sum();
        assert!(
            tight_worst > loose_worst,
            "clustered lines must have denser worst bytes ({tight_worst} vs {loose_worst})"
        );
    }

    #[test]
    fn page_pattern_repeats_within_page_and_differs_across() {
        let a1 = PagePattern::for_page(5, 99);
        let a2 = PagePattern::for_page(5, 99);
        let b = PagePattern::for_page(6, 99);
        assert_eq!(a1.hot_bytes, a2.hot_bytes);
        assert_ne!(a1.hot_bytes, b.hot_bytes);
        // Hot bytes stay inside their chip group.
        for (g, h) in a1.hot_bytes.iter().enumerate() {
            assert!((g * 8..(g + 1) * 8).contains(h));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let pattern = PagePattern::for_page(1, 2);
        let s = spec(0.25, 0.5, 0.5);
        let mut r1 = SplitMix64::new(1234);
        let mut r2 = SplitMix64::new(1234);
        for _ in 0..20 {
            assert_eq!(
                generate_line(&s, &pattern, &mut r1),
                generate_line(&s, &pattern, &mut r2)
            );
        }
    }
}
