//! Criterion bench for end-to-end controller throughput: how many memory
//! operations per second the simulator sustains under the heaviest scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use ladder_core::LadderVariant;
use ladder_memctrl::{standard_tables, LadderPolicy, MemCtrlConfig, MemoryController};
use ladder_reram::{AddressMap, Geometry, Instant, LineAddr};
use ladder_xbar::TableConfig;
use std::hint::black_box;

fn bench_controller(c: &mut Criterion) {
    let ladder_table = standard_tables(&TableConfig::ladder_default()).ladder;
    c.bench_function("controller_1k_mixed_ops_hybrid", |b| {
        b.iter(|| {
            let map = AddressMap::new(Geometry::default());
            let policy = Box::new(LadderPolicy::for_variant(
                LadderVariant::Hybrid,
                ladder_table.clone(),
                map.clone(),
            ));
            let mut mc = MemoryController::new(MemCtrlConfig::default(), map, policy);
            let mut now = Instant::ZERO;
            for i in 0..1000u64 {
                let addr = LineAddr::new(40_000 * 64 + (i * 17) % 8192);
                if i % 3 == 0 {
                    while !mc.enqueue_write(addr, [i as u8; 64], now) {
                        now = mc.next_wake(now).expect("progress");
                        mc.process(now);
                    }
                } else {
                    while mc.enqueue_read(addr, now).is_none() {
                        now = mc.next_wake(now).expect("progress");
                        mc.process(now);
                    }
                }
                mc.process(now);
            }
            black_box(mc.finish(now))
        })
    });
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
