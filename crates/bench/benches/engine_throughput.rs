//! Criterion benches for the LADDER engine's per-write work: the full
//! prepare+service path per variant, plus the individual transforms.

use criterion::{criterion_group, criterion_main, Criterion};
use ladder_core::{
    apply_fnw, shift_line, FnwPolicy, LadderConfig, LadderEngine, LadderVariant, PartialCounters,
};
use ladder_reram::{AddressMap, Geometry, LineAddr, LineStore};
use std::hint::black_box;

fn line(seed: u8) -> [u8; 64] {
    std::array::from_fn(|i| (i as u8).wrapping_mul(31).wrapping_add(seed) & 0x77)
}

fn bench_service_write(c: &mut Criterion) {
    for variant in [
        LadderVariant::Basic,
        LadderVariant::Est,
        LadderVariant::Hybrid,
    ] {
        let map = AddressMap::new(Geometry::default());
        let mut engine = LadderEngine::new(LadderConfig::for_variant(variant), map);
        let mut store = LineStore::new();
        let base = engine.layout().first_data_page() * 64;
        let mut i = 0u64;
        c.bench_function(&format!("engine_write_{variant:?}"), |b| {
            b.iter(|| {
                let addr = LineAddr::new(base + i % 4096);
                engine.prepare_write(addr);
                let out = engine.service_write(addr, line(i as u8), &mut store);
                i += 1;
                black_box(out.cw_lrs)
            })
        });
    }
}

fn bench_transforms(c: &mut Criterion) {
    let data = line(3);
    let old = line(9);
    c.bench_function("shift_line", |b| {
        b.iter(|| shift_line(black_box(&data), black_box(13)))
    });
    c.bench_function("fnw_constrained", |b| {
        b.iter(|| apply_fnw(black_box(&data), black_box(&old), FnwPolicy::Constrained))
    });
    c.bench_function("partial_counters_from_line", |b| {
        b.iter(|| PartialCounters::from_line(black_box(&data)))
    });
}

criterion_group!(benches, bench_service_write, bench_transforms);
criterion_main!(benches);
