//! Criterion bench gating the tracing subsystem's disabled-path cost
//! contract: with tracing off (the default), the controller's write hot
//! path must not allocate at all in steady state, and a disabled
//! [`TraceRecorder`] must never allocate. Run by `cargo test --benches`
//! (one checked iteration) and by `cargo bench` (measured).

// The counting allocator must implement `GlobalAlloc`, which is an unsafe
// trait; this is the one sanctioned unsafe block in the workspace
// (`unsafe_code` is denied everywhere else via `[workspace.lints]`).
#![allow(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use ladder_memctrl::{standard_tables, FixedWorstPolicy, MemCtrlConfig, MemoryController};
use ladder_reram::{AddressMap, Geometry, Instant, LineAddr, Picos};
use ladder_trace::{DispatchKind, TraceRecord, TraceRecorder};
use ladder_xbar::{TableConfig, TimingTable};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter, so the benches can
/// assert "zero allocations" over a region of code.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A disabled recorder's `record` is a branch and nothing else: no ring,
/// no digest, no totals, and — gated here — no allocation, ever (not even
/// a first lazy one).
fn bench_disabled_recorder(c: &mut Criterion) {
    c.bench_function("trace_recorder_disabled_100k_records", |b| {
        b.iter(|| {
            let mut rec = TraceRecorder::disabled();
            let before = allocations();
            for i in 0..100_000u64 {
                rec.record(
                    Instant::from_ps(i),
                    TraceRecord::KernelDispatch {
                        kind: DispatchKind::CoreWake,
                    },
                );
            }
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "disabled TraceRecorder::record allocated"
            );
            black_box(rec.records())
        })
    });
}

/// Drives `writes` line writes through a controller, letting it drain
/// whenever the queue is full, and returns the finish time.
fn drive_writes(mc: &mut MemoryController, mut now: Instant, writes: u64) -> Instant {
    for i in 0..writes {
        let addr = LineAddr::new(40_000 * 64 + (i * 17 % 8192) * 64);
        while !mc.enqueue_write(addr, [i as u8; 64], now) {
            now = mc.next_wake(now).expect("progress");
            mc.process(now);
        }
        mc.process(now);
    }
    now
}

fn fresh_controller(table: &TimingTable) -> MemoryController {
    let map = AddressMap::new(Geometry::default());
    let policy = Box::new(FixedWorstPolicy::new(table));
    MemoryController::new(MemCtrlConfig::default(), map, policy)
}

/// With tracing disabled (the default controller state), the steady-state
/// write hot path — enqueue, drain scheduling, pulse issue, completion —
/// must be allocation-free: queues and event heaps keep their warmed
/// capacity, and the disabled recorder adds nothing. This is the gate that
/// the tracing subsystem costs nothing when off.
fn bench_write_hotpath_disabled(c: &mut Criterion) {
    let table = standard_tables(&TableConfig::ladder_default()).ladder;
    c.bench_function("controller_write_hotpath_tracing_disabled", |b| {
        b.iter(|| {
            let mut mc = fresh_controller(&table);
            // Warm-up: let every queue, heap and map reach capacity.
            let now = drive_writes(&mut mc, Instant::ZERO, 2_000);
            let before = allocations();
            let now = drive_writes(&mut mc, now, 2_000);
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "write hot path allocated with tracing disabled"
            );
            black_box(mc.finish(now))
        })
    });
}

/// The same hot path with an enabled recorder, for comparison in bench
/// output. Not allocation-gated: the ring buffer grows to its bounded
/// capacity on first use, which is the documented enabled-mode cost.
fn bench_write_hotpath_traced(c: &mut Criterion) {
    let table = standard_tables(&TableConfig::ladder_default()).ladder;
    c.bench_function("controller_write_hotpath_tracing_enabled", |b| {
        b.iter(|| {
            let mut mc = fresh_controller(&table);
            mc.set_trace_recorder(TraceRecorder::enabled());
            let now = drive_writes(&mut mc, Instant::ZERO, 4_000);
            let end = mc.finish(now);
            let rec = mc.take_trace_recorder();
            assert!(rec.records() > 0, "enabled recorder captured nothing");
            assert!(rec.totals().pulse_time > Picos::ZERO);
            black_box((end, rec.digest()))
        })
    });
}

criterion_group!(
    benches,
    bench_disabled_recorder,
    bench_write_hotpath_disabled,
    bench_write_hotpath_traced
);
criterion_main!(benches);
