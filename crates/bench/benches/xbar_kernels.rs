//! Criterion benches for the crossbar-physics kernels: the analytic IR-drop
//! estimator, full table generation, and the exact MNA solver.

use criterion::{criterion_group, criterion_main, Criterion};
use ladder_xbar::{
    analytic, solve_reset, CrossbarParams, PatternSpec, ResetOp, SolverKind, TableConfig,
    TimingTable,
};
use std::hint::black_box;

fn bench_analytic(c: &mut Criterion) {
    let params = CrossbarParams::default();
    let op = analytic::OperatingPoint {
        target_wl: 400,
        target_bls: (504..512).collect(),
        wl_ones: 256,
        bl_ones: 512,
    };
    c.bench_function("analytic_estimate_vd_512x512", |b| {
        b.iter(|| analytic::estimate_vd(black_box(&params), black_box(&op)))
    });
}

fn bench_table_generation(c: &mut Criterion) {
    let cfg = TableConfig::ladder_default();
    c.bench_function("timing_table_generate_8x8x8", |b| {
        b.iter(|| TimingTable::generate(black_box(&cfg)).expect("table"))
    });
}

fn bench_mna(c: &mut Criterion) {
    let params = CrossbarParams::with_size(64, 64);
    let grid = PatternSpec::WorstCaseWl { wl_ones: 32 }.materialize(64, 64, 63, &[56, 63]);
    let op = ResetOp::new(63, vec![56, 63]);
    c.bench_function("mna_line_relaxation_64x64", |b| {
        b.iter(|| {
            solve_reset(
                black_box(&params),
                black_box(&grid),
                black_box(&op),
                SolverKind::LineRelaxation,
            )
            .expect("solve")
        })
    });
}

criterion_group!(benches, bench_analytic, bench_table_generation, bench_mna);
criterion_main!(benches);
