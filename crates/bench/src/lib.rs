//! Benchmark harness for the LADDER reproduction.
//!
//! Each `bin` target regenerates one of the paper's tables or figures (see
//! DESIGN.md §5 for the index):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2` | Fig. 2 — motivation IPC study |
//! | `fig4b` | Fig. 4b — latency vs. wordline LRS % |
//! | `fig11` | Fig. 11 — latency surfaces over (WL, BL) |
//! | `main_eval` | Figs. 12, 13, 14a/b, 16, 17 — the evaluation matrix |
//! | `fig15` | Fig. 15 — estimation accuracy with/without shifting |
//! | `lifetime` | Section 6.4 — wear-leveling and lifetime |
//! | `variability` | Section 7 — shrunk latency range |
//! | `tables` | Tables 1–4 — configuration and overheads |
//! | `faults` | Extension — raw BER sweep: P&V retries, ECC, data loss |
//! | `interleave` | Extension — striping-policy sweep over a sharded topology |
//!
//! Every binary parses the same command line through [`BenchArgs`]:
//! strict by default (unknown flags exit with the usage message), so the
//! whole fleet accepts `--quick/--instructions/--seed/--jobs/--trace`
//! plus the topology surface `--topology CxR` and `--interleave P`.
//!
//! Criterion micro-benchmarks for the hot kernels live under `benches/`.

use ladder_sim::experiments::{ExperimentConfig, Workload};
use ladder_sim::{run_sharded, run_sim, Interleave, Runner, Scheme, SimConfig, Topology};

/// The flags every binary accepts, printed when parsing fails.
pub const USAGE: &str = "usage: [--quick] [--instructions N] [--seed S] [--jobs N] [--topology CxR]
       [--interleave P] [--csv DIR] [--trace PATH]
  --quick           smoke-test scale (120 k instructions per core)
  --instructions N  instructions per core (overrides --quick)
  --seed S          master workload seed (default 2021)
  --jobs N          worker threads (default: LADDER_JOBS or all cores)
  --topology CxR    shard runs over C channels x R ranks (e.g. 4x2);
                    traced runs fold per-shard digests bit-reproducibly
  --interleave P    address striping policy: channel | bank | page
  --csv DIR         also write CSV output into DIR (main_eval only)
  --trace PATH      additionally run one traced LADDER-Est simulation and
                    write chrome://tracing JSON to PATH (summary on stderr)";

/// The parsed bench command line, shared by every binary.
///
/// Parse strictly from the process arguments with [`BenchArgs::parse`]
/// (unknown flags and malformed values print [`USAGE`] and exit with
/// status 2), or fallibly from a slice with [`BenchArgs::parse_from`].
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Experiment scale and seed: `--quick` starts from
    /// [`ExperimentConfig::quick`], then `--instructions` and `--seed`
    /// override individual fields.
    pub cfg: ExperimentConfig,
    /// `--jobs N`: worker threads. `None` falls back to `LADDER_JOBS` /
    /// `available_parallelism()` inside [`BenchArgs::runner`].
    pub jobs: Option<usize>,
    /// Whether `--quick` was passed. Binaries whose workload is not
    /// derived from [`ExperimentConfig`] (e.g. `mna_table`, `fig11`) use
    /// this to scale their own inputs down to smoke-run size.
    pub quick: bool,
    /// `--trace PATH`: run one additional traced simulation and write
    /// chrome://tracing JSON there (see
    /// [`BenchArgs::emit_trace_if_requested`]).
    pub trace: Option<String>,
    /// `--topology CxR`: shard topology-aware runs (the traced run and
    /// the `interleave` sweep) over `C` channel shards of `R` ranks.
    pub topology: Option<Topology>,
    /// `--interleave P`: address striping policy for topology-aware runs.
    pub interleave: Option<Interleave>,
    /// `--csv DIR`: CSV output directory (consumed by `main_eval`).
    pub csv: Option<String>,
    /// Non-flag arguments in order (e.g. `tables`' table selector).
    pub positional: Vec<String>,
}

impl BenchArgs {
    /// Parses the process command line; parse failures print [`USAGE`]
    /// and exit with status 2.
    pub fn parse() -> BenchArgs {
        Self::parse_from(&cli_args()).unwrap_or_else(|e| usage_exit(&e))
    }

    /// Parses an argument list (defaults: 1 M instructions, seed 2021,
    /// channel interleave, no topology).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument on an unknown
    /// flag, a flag missing its value, or an unparsable value.
    pub fn parse_from(argv: &[String]) -> Result<BenchArgs, String> {
        let mut quick = false;
        let mut instructions: Option<u64> = None;
        let mut seed: Option<u64> = None;
        let mut jobs = None;
        let mut trace = None;
        let mut topology = None;
        let mut interleave = None;
        let mut csv = None;
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => {
                    quick = true;
                    i += 1;
                }
                "--instructions" => {
                    instructions = Some(flag_value(argv, i)?);
                    i += 2;
                }
                "--seed" => {
                    seed = Some(flag_value(argv, i)?);
                    i += 2;
                }
                "--jobs" => {
                    jobs = Some(flag_value(argv, i)?);
                    i += 2;
                }
                "--trace" => {
                    trace = Some(flag_value::<String>(argv, i)?);
                    i += 2;
                }
                "--topology" => {
                    topology = Some(flag_value(argv, i)?);
                    i += 2;
                }
                "--interleave" => {
                    interleave = Some(flag_value(argv, i)?);
                    i += 2;
                }
                "--csv" => {
                    csv = Some(flag_value::<String>(argv, i)?);
                    i += 2;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown argument `{other}`"))
                }
                other => {
                    positional.push(other.to_string());
                    i += 1;
                }
            }
        }
        let mut cfg = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::default()
        };
        if let Some(n) = instructions {
            cfg.instructions_per_core = n;
        }
        if let Some(s) = seed {
            cfg.seed = s;
        }
        Ok(BenchArgs {
            cfg,
            jobs,
            quick,
            trace,
            topology,
            interleave,
            csv,
            positional,
        })
    }

    /// Builds the experiment [`Runner`]: `--jobs N` wins, then the
    /// `LADDER_JOBS` environment variable, then `available_parallelism()`.
    /// Parallel execution is byte-identical to `--jobs 1` — results always
    /// come back in submission order.
    pub fn runner(&self) -> Runner {
        match self.jobs {
            Some(n) => Runner::with_jobs(n),
            None => Runner::new(),
        }
    }

    /// The topology to shard over, defaulting to `default` when
    /// `--topology` was absent.
    pub fn topology_or(&self, default: Topology) -> Topology {
        self.topology.unwrap_or(default)
    }

    /// If `--trace PATH` was passed, runs one traced LADDER-Est simulation
    /// of `astar` at `cfg`'s scale, writes chrome://tracing JSON to
    /// `PATH`, and prints the per-phase time-attribution summary plus a
    /// stats-reconciliation line to stderr. Does nothing when the flag is
    /// absent. An unwritable path exits with status 1.
    ///
    /// With `--topology CxR` the traced run shards over the topology
    /// instead: the chrome JSON holds shard 0's stream, and the summary
    /// reports every shard plus the merged digest (bit-identical at any
    /// `--jobs`).
    ///
    /// Every bench binary calls this after its main output, so any of them
    /// can produce a trace without disturbing the figure pipeline (the
    /// traced run is a separate, additional simulation).
    pub fn emit_trace_if_requested(&self, cfg: &ExperimentConfig) {
        let Some(path) = &self.trace else { return };
        let tables = cfg.tables();
        let builder = SimConfig::builder()
            .scheme(Scheme::LadderEst)
            .workload(Workload::Single("astar"))
            .interleave(self.interleave.unwrap_or_default())
            .trace(true);
        if let Some(topology) = self.topology {
            let run = run_sharded(
                &builder.topology(topology).build(),
                cfg,
                &tables,
                &self.runner(),
            );
            let Some(shard0) = run.shards.first().and_then(|r| r.trace.as_ref()) else {
                eprintln!("error: traced sharded run returned no trace buffer");
                std::process::exit(1);
            };
            write_or_die(path, ladder_trace::chrome_trace_json(shard0));
            eprintln!(
                "trace: LADDER-Est/astar topology {topology} -> {path} (shard 0 of {})",
                run.shards.len()
            );
            eprint!("{}", run.summary());
            return;
        }
        let r = run_sim(&builder.build(), cfg, &tables);
        let Some(trace) = r.trace.as_ref() else {
            // SimConfig.trace was set above, so this is unreachable in
            // practice; fail loudly rather than panicking in library code.
            eprintln!("error: traced run returned no trace buffer");
            std::process::exit(1);
        };
        write_or_die(path, ladder_trace::chrome_trace_json(trace));
        eprintln!(
            "trace: LADDER-Est/astar -> {path} ({} records, {} dropped from ring, digest {})",
            trace.records, trace.dropped, trace.digest
        );
        eprintln!(
            "trace: reconciliation — pulses {}+{} vs writes {}+{}, reads {} vs {}, dispatches {} vs {}",
            trace.totals.data_pulses,
            trace.totals.metadata_pulses,
            r.mem.data_writes,
            r.mem.metadata_writes,
            trace.totals.demand_reads + trace.totals.smb_reads + trace.totals.metadata_reads,
            r.mem.demand_reads + r.mem.smb_reads + r.mem.metadata_reads,
            trace.totals.dispatch_total(),
            r.events.total()
        );
        eprint!("{}", ladder_trace::time_attribution(&trace.totals));
    }
}

/// The value following `argv[i]`, parsed; errors name the flag instead of
/// indexing out of bounds.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> Result<T, String> {
    let flag = &argv[i];
    let raw = argv
        .get(i + 1)
        .ok_or_else(|| format!("`{flag}` is missing its value"))?;
    raw.parse()
        .map_err(|_| format!("`{flag}` value `{raw}` is not valid"))
}

fn cli_args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

fn usage_exit(err: &str) -> ! {
    eprintln!("error: {err}\n{USAGE}");
    std::process::exit(2)
}

fn write_or_die(path: &str, json: String) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write trace to `{path}`: {e}");
        std::process::exit(1);
    }
}

/// Prints the runner's cumulative batch statistics to stderr (so figure
/// data on stdout stays clean).
pub fn report_runner(runner: &Runner) {
    let stats = runner.cumulative();
    if stats.jobs > 0 {
        eprintln!("{}", stats.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<BenchArgs, String> {
        let argv: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        BenchArgs::parse_from(&argv)
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.cfg.instructions_per_core, 1_000_000);
        assert_eq!(a.cfg.seed, 2021);
        assert_eq!(a.jobs, None);
        assert!(!a.quick);
        assert_eq!(a.trace, None);
        assert_eq!(a.topology, None);
        assert_eq!(a.interleave, None);
        assert_eq!(a.csv, None);
        assert!(a.positional.is_empty());
    }

    #[test]
    fn quick_scales_down_but_instructions_override() {
        let a = parse(&["--quick"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.cfg.instructions_per_core, 120_000);
        let a = parse(&["--quick", "--instructions", "777"]).unwrap();
        assert_eq!(a.cfg.instructions_per_core, 777);
    }

    #[test]
    fn all_flags_parse_together() {
        let a = parse(&[
            "--seed",
            "7",
            "--jobs",
            "3",
            "--instructions",
            "42",
            "--topology",
            "4x2",
            "--interleave",
            "bank",
            "--csv",
            "/tmp/csv",
            "--trace",
            "/tmp/t.json",
        ])
        .unwrap();
        assert_eq!((a.cfg.seed, a.cfg.instructions_per_core), (7, 42));
        assert_eq!(a.jobs, Some(3));
        assert_eq!(a.topology, Some(Topology::new(4, 2).unwrap()));
        assert_eq!(a.interleave, Some(Interleave::Bank));
        assert_eq!(a.csv.as_deref(), Some("/tmp/csv"));
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn positional_arguments_ride_along() {
        let a = parse(&["table2", "--quick"]).unwrap();
        assert_eq!(a.positional, vec!["table2".to_string()]);
        assert!(a.quick);
    }

    #[test]
    fn topology_and_interleave_reject_garbage() {
        let err = parse(&["--topology", "4"]).unwrap_err();
        assert!(err.contains("--topology") && err.contains('4'), "{err}");
        let err = parse(&["--interleave", "diagonal"]).unwrap_err();
        assert!(err.contains("--interleave"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn trailing_flag_reports_missing_value() {
        for trailing in [
            "--seed",
            "--instructions",
            "--jobs",
            "--trace",
            "--topology",
        ] {
            let err = parse(&[trailing]).unwrap_err();
            assert!(err.contains("missing its value"), "{err}");
            assert!(err.contains(trailing), "{err}");
        }
    }

    #[test]
    fn unparsable_value_names_flag_and_value() {
        let err = parse(&["--seed", "xyz"]).unwrap_err();
        assert!(err.contains("--seed") && err.contains("xyz"), "{err}");
        let err = parse(&["--jobs", "-1"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn topology_or_prefers_the_flag() {
        let dflt = Topology::new(4, 2).unwrap();
        assert_eq!(parse(&[]).unwrap().topology_or(dflt), dflt);
        assert_eq!(
            parse(&["--topology", "8x1"]).unwrap().topology_or(dflt),
            Topology::new(8, 1).unwrap()
        );
    }
}
