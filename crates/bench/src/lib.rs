//! Benchmark harness for the LADDER reproduction.
//!
//! Each `bin` target regenerates one of the paper's tables or figures (see
//! DESIGN.md §5 for the index):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2` | Fig. 2 — motivation IPC study |
//! | `fig4b` | Fig. 4b — latency vs. wordline LRS % |
//! | `fig11` | Fig. 11 — latency surfaces over (WL, BL) |
//! | `main_eval` | Figs. 12, 13, 14a/b, 16, 17 — the evaluation matrix |
//! | `fig15` | Fig. 15 — estimation accuracy with/without shifting |
//! | `lifetime` | Section 6.4 — wear-leveling and lifetime |
//! | `variability` | Section 7 — shrunk latency range |
//! | `tables` | Tables 1–4 — configuration and overheads |
//! | `faults` | Extension — raw BER sweep: P&V retries, ECC, data loss |
//! | `interleave` | Extension — striping-policy sweep over a sharded topology |
//! | `service` | Extension — open-loop tail-latency SLO sweep (load × arrival × scheme) |
//! | `lifetime_campaign` | Extension — device-lifetime CSV (skew × BER × remap × code scheme) |
//! | `hotloop` | Extension — hot-loop throughput: writes/sec, events/sec, fast vs. reference paths |
//!
//! Every binary parses the same command line through [`BenchArgs`]:
//! strict by default (unknown flags exit with the usage message, and a
//! flag given twice is rejected rather than silently last-wins), so the
//! whole fleet accepts `--quick/--instructions/--seed/--jobs/--trace`
//! plus the topology surface `--topology CxR` / `--interleave P` and the
//! service-sweep knobs `--arrival/--zipf/--tenants/--load`.
//!
//! Criterion micro-benchmarks for the hot kernels live under `benches/`.

use ladder_sim::experiments::{ExperimentConfig, Workload};
use ladder_sim::{
    run_sharded, run_sim, ArrivalKind, Interleave, Runner, Scheme, SimConfig, Topology,
};

/// The flags every binary accepts, printed when parsing fails.
pub const USAGE: &str = "usage: [--quick] [--instructions N] [--seed S] [--jobs N] [--topology CxR]
       [--interleave P] [--csv DIR] [--trace PATH]
       [--arrival A] [--zipf T] [--tenants N] [--load L1,L2,..]
  --quick           smoke-test scale (120 k instructions per core)
  --instructions N  instructions per core (overrides --quick)
  --seed S          master workload seed (default 2021)
  --jobs N          worker threads (default: LADDER_JOBS or all cores)
  --topology CxR    shard runs over C channels x R ranks (e.g. 4x2);
                    traced runs fold per-shard digests bit-reproducibly
  --interleave P    address striping policy: channel | bank | page
  --csv DIR         also write CSV output into DIR (main_eval only)
  --trace PATH      additionally run one traced LADDER-Est simulation and
                    write chrome://tracing JSON to PATH (summary on stderr)
  --arrival A       open-loop arrival process: poisson | bursty
                    (service only; default: sweep both)
  --zipf T          Zipfian key skew in (0,1), 0 = uniform (service only)
  --tenants N       tenant count in the service mix (service only)
  --load L1,L2,..   offered loads in requests/us to sweep (service only)

Every flag may appear at most once; duplicates are rejected.";

/// The parsed bench command line, shared by every binary.
///
/// Parse strictly from the process arguments with [`BenchArgs::parse`]
/// (unknown flags and malformed values print [`USAGE`] and exit with
/// status 2), or fallibly from a slice with [`BenchArgs::parse_from`].
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Experiment scale and seed: `--quick` starts from
    /// [`ExperimentConfig::quick`], then `--instructions` and `--seed`
    /// override individual fields.
    pub cfg: ExperimentConfig,
    /// `--jobs N`: worker threads. `None` falls back to `LADDER_JOBS` /
    /// `available_parallelism()` inside [`BenchArgs::runner`].
    pub jobs: Option<usize>,
    /// Whether `--quick` was passed. Binaries whose workload is not
    /// derived from [`ExperimentConfig`] (e.g. `mna_table`, `fig11`) use
    /// this to scale their own inputs down to smoke-run size.
    pub quick: bool,
    /// `--trace PATH`: run one additional traced simulation and write
    /// chrome://tracing JSON there (see
    /// [`BenchArgs::emit_trace_if_requested`]).
    pub trace: Option<String>,
    /// `--topology CxR`: shard topology-aware runs (the traced run and
    /// the `interleave` sweep) over `C` channel shards of `R` ranks.
    pub topology: Option<Topology>,
    /// `--interleave P`: address striping policy for topology-aware runs.
    pub interleave: Option<Interleave>,
    /// `--csv DIR`: CSV output directory (consumed by `main_eval`).
    pub csv: Option<String>,
    /// `--arrival A`: restrict the `service` sweep to one arrival
    /// process. `None` sweeps every [`ArrivalKind`].
    pub arrival: Option<ArrivalKind>,
    /// `--zipf T`: Zipfian key skew for the `service` tenant mix.
    pub zipf: Option<f64>,
    /// `--tenants N`: tenant count for the `service` mix.
    pub tenants: Option<usize>,
    /// `--load L1,L2,..`: offered loads (requests/µs) the `service`
    /// binary sweeps. Empty when the flag was absent.
    pub load: Vec<f64>,
    /// Non-flag arguments in order (e.g. `tables`' table selector).
    pub positional: Vec<String>,
}

impl BenchArgs {
    /// Parses the process command line; parse failures print [`USAGE`]
    /// and exit with status 2.
    pub fn parse() -> BenchArgs {
        Self::parse_from(&cli_args()).unwrap_or_else(|e| usage_exit(&e))
    }

    /// Parses an argument list (defaults: 1 M instructions, seed 2021,
    /// channel interleave, no topology).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument on an unknown
    /// flag, a duplicate flag, a flag missing its value, or an
    /// unparsable value.
    pub fn parse_from(argv: &[String]) -> Result<BenchArgs, String> {
        let mut quick = false;
        let mut instructions: Option<u64> = None;
        let mut seed: Option<u64> = None;
        let mut jobs = None;
        let mut trace = None;
        let mut topology = None;
        let mut interleave = None;
        let mut csv = None;
        let mut arrival = None;
        let mut zipf = None;
        let mut tenants = None;
        let mut load: Option<Vec<f64>> = None;
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => {
                    if quick {
                        return Err("duplicate flag `--quick`".to_string());
                    }
                    quick = true;
                    i += 1;
                }
                "--instructions" => {
                    set_once(&mut instructions, flag_value(argv, i)?, "--instructions")?;
                    i += 2;
                }
                "--seed" => {
                    set_once(&mut seed, flag_value(argv, i)?, "--seed")?;
                    i += 2;
                }
                "--jobs" => {
                    set_once(&mut jobs, flag_value(argv, i)?, "--jobs")?;
                    i += 2;
                }
                "--trace" => {
                    set_once(&mut trace, flag_value::<String>(argv, i)?, "--trace")?;
                    i += 2;
                }
                "--topology" => {
                    set_once(&mut topology, flag_value(argv, i)?, "--topology")?;
                    i += 2;
                }
                "--interleave" => {
                    set_once(&mut interleave, flag_value(argv, i)?, "--interleave")?;
                    i += 2;
                }
                "--csv" => {
                    set_once(&mut csv, flag_value::<String>(argv, i)?, "--csv")?;
                    i += 2;
                }
                "--arrival" => {
                    set_once(&mut arrival, flag_value(argv, i)?, "--arrival")?;
                    i += 2;
                }
                "--zipf" => {
                    set_once(&mut zipf, flag_value(argv, i)?, "--zipf")?;
                    i += 2;
                }
                "--tenants" => {
                    set_once(&mut tenants, flag_value(argv, i)?, "--tenants")?;
                    i += 2;
                }
                "--load" => {
                    set_once(&mut load, load_list(argv, i)?, "--load")?;
                    i += 2;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown argument `{other}`"))
                }
                other => {
                    positional.push(other.to_string());
                    i += 1;
                }
            }
        }
        let mut cfg = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::default()
        };
        if let Some(n) = instructions {
            cfg.instructions_per_core = n;
        }
        if let Some(s) = seed {
            cfg.seed = s;
        }
        Ok(BenchArgs {
            cfg,
            jobs,
            quick,
            trace,
            topology,
            interleave,
            csv,
            arrival,
            zipf,
            tenants,
            load: load.unwrap_or_default(),
            positional,
        })
    }

    /// Builds the experiment [`Runner`]: `--jobs N` wins, then the
    /// `LADDER_JOBS` environment variable, then `available_parallelism()`.
    /// Parallel execution is byte-identical to `--jobs 1` — results always
    /// come back in submission order.
    pub fn runner(&self) -> Runner {
        match self.jobs {
            Some(n) => Runner::with_jobs(n),
            None => Runner::new(),
        }
    }

    /// The topology to shard over, defaulting to `default` when
    /// `--topology` was absent.
    pub fn topology_or(&self, default: Topology) -> Topology {
        self.topology.unwrap_or(default)
    }

    /// If `--trace PATH` was passed, runs one traced LADDER-Est simulation
    /// of `astar` at `cfg`'s scale, writes chrome://tracing JSON to
    /// `PATH`, and prints the per-phase time-attribution summary plus a
    /// stats-reconciliation line to stderr. Does nothing when the flag is
    /// absent. An unwritable path exits with status 1.
    ///
    /// With `--topology CxR` the traced run shards over the topology
    /// instead: the chrome JSON holds shard 0's stream, and the summary
    /// reports every shard plus the merged digest (bit-identical at any
    /// `--jobs`).
    ///
    /// Every bench binary calls this after its main output, so any of them
    /// can produce a trace without disturbing the figure pipeline (the
    /// traced run is a separate, additional simulation).
    pub fn emit_trace_if_requested(&self, cfg: &ExperimentConfig) {
        let Some(path) = &self.trace else { return };
        let tables = cfg.tables();
        let builder = SimConfig::builder()
            .scheme(Scheme::LadderEst)
            .workload(Workload::Single("astar"))
            .interleave(self.interleave.unwrap_or_default())
            .trace(true);
        if let Some(topology) = self.topology {
            let run = run_sharded(
                &builder.topology(topology).build(),
                cfg,
                &tables,
                &self.runner(),
            );
            let Some(shard0) = run.shards.first().and_then(|r| r.trace.as_ref()) else {
                eprintln!("error: traced sharded run returned no trace buffer");
                std::process::exit(1);
            };
            write_or_die(path, ladder_trace::chrome_trace_json(shard0));
            eprintln!(
                "trace: LADDER-Est/astar topology {topology} -> {path} (shard 0 of {})",
                run.shards.len()
            );
            eprint!("{}", run.summary());
            return;
        }
        let r = run_sim(&builder.build(), cfg, &tables);
        let Some(trace) = r.trace.as_ref() else {
            // SimConfig.trace was set above, so this is unreachable in
            // practice; fail loudly rather than panicking in library code.
            eprintln!("error: traced run returned no trace buffer");
            std::process::exit(1);
        };
        write_or_die(path, ladder_trace::chrome_trace_json(trace));
        eprintln!(
            "trace: LADDER-Est/astar -> {path} ({} records, {} dropped from ring, digest {})",
            trace.records, trace.dropped, trace.digest
        );
        eprintln!(
            "trace: reconciliation — pulses {}+{} vs writes {}+{}, reads {} vs {}, dispatches {} vs {}",
            trace.totals.data_pulses,
            trace.totals.metadata_pulses,
            r.mem.data_writes,
            r.mem.metadata_writes,
            trace.totals.demand_reads + trace.totals.smb_reads + trace.totals.metadata_reads,
            r.mem.demand_reads + r.mem.smb_reads + r.mem.metadata_reads,
            trace.totals.dispatch_total(),
            r.events.total()
        );
        eprint!("{}", ladder_trace::time_attribution(&trace.totals));
    }
}

/// Stores a flag's parsed value, rejecting a second occurrence — flags
/// are single-shot, so a silent last-wins would hide operator typos in
/// long sweep invocations.
fn set_once<T>(slot: &mut Option<T>, value: T, flag: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("duplicate flag `{flag}`"));
    }
    *slot = Some(value);
    Ok(())
}

/// Parses `--load`'s comma-separated list of offered loads; every entry
/// must be a positive finite requests/µs figure.
fn load_list(argv: &[String], i: usize) -> Result<Vec<f64>, String> {
    let raw: String = flag_value(argv, i)?;
    let mut loads = Vec::new();
    for part in raw.split(',') {
        let v: f64 = part
            .trim()
            .parse()
            .map_err(|_| format!("`--load` value `{raw}` is not valid"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("`--load` value `{raw}` is not valid"));
        }
        loads.push(v);
    }
    Ok(loads)
}

/// The value following `argv[i]`, parsed; errors name the flag instead of
/// indexing out of bounds.
fn flag_value<T: std::str::FromStr>(argv: &[String], i: usize) -> Result<T, String> {
    let flag = &argv[i];
    let raw = argv
        .get(i + 1)
        .ok_or_else(|| format!("`{flag}` is missing its value"))?;
    raw.parse()
        .map_err(|_| format!("`{flag}` value `{raw}` is not valid"))
}

fn cli_args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

fn usage_exit(err: &str) -> ! {
    eprintln!("error: {err}\n{USAGE}");
    std::process::exit(2)
}

fn write_or_die(path: &str, json: String) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write trace to `{path}`: {e}");
        std::process::exit(1);
    }
}

/// Prints the runner's cumulative batch statistics to stderr (so figure
/// data on stdout stays clean).
pub fn report_runner(runner: &Runner) {
    let stats = runner.cumulative();
    if stats.jobs > 0 {
        eprintln!("{}", stats.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<BenchArgs, String> {
        let argv: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        BenchArgs::parse_from(&argv)
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.cfg.instructions_per_core, 1_000_000);
        assert_eq!(a.cfg.seed, 2021);
        assert_eq!(a.jobs, None);
        assert!(!a.quick);
        assert_eq!(a.trace, None);
        assert_eq!(a.topology, None);
        assert_eq!(a.interleave, None);
        assert_eq!(a.csv, None);
        assert_eq!(a.arrival, None);
        assert_eq!(a.zipf, None);
        assert_eq!(a.tenants, None);
        assert!(a.load.is_empty());
        assert!(a.positional.is_empty());
    }

    #[test]
    fn quick_scales_down_but_instructions_override() {
        let a = parse(&["--quick"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.cfg.instructions_per_core, 120_000);
        let a = parse(&["--quick", "--instructions", "777"]).unwrap();
        assert_eq!(a.cfg.instructions_per_core, 777);
    }

    #[test]
    fn all_flags_parse_together() {
        let a = parse(&[
            "--seed",
            "7",
            "--jobs",
            "3",
            "--instructions",
            "42",
            "--topology",
            "4x2",
            "--interleave",
            "bank",
            "--csv",
            "/tmp/csv",
            "--trace",
            "/tmp/t.json",
            "--arrival",
            "bursty",
            "--zipf",
            "0.7",
            "--tenants",
            "5",
            "--load",
            "2.0,6.5",
        ])
        .unwrap();
        assert_eq!((a.cfg.seed, a.cfg.instructions_per_core), (7, 42));
        assert_eq!(a.jobs, Some(3));
        assert_eq!(a.topology, Some(Topology::new(4, 2).unwrap()));
        assert_eq!(a.interleave, Some(Interleave::Bank));
        assert_eq!(a.csv.as_deref(), Some("/tmp/csv"));
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(a.arrival, Some(ArrivalKind::Bursty));
        assert_eq!(a.zipf, Some(0.7));
        assert_eq!(a.tenants, Some(5));
        assert_eq!(a.load, vec![2.0, 6.5]);
    }

    #[test]
    fn duplicate_flags_are_rejected_not_last_wins() {
        let err = parse(&["--seed", "1", "--seed", "2"]).unwrap_err();
        assert!(err.contains("duplicate flag `--seed`"), "{err}");
        let err = parse(&["--quick", "--quick"]).unwrap_err();
        assert!(err.contains("duplicate flag `--quick`"), "{err}");
        let err = parse(&["--load", "1", "--load", "2"]).unwrap_err();
        assert!(err.contains("duplicate flag `--load`"), "{err}");
        // A single occurrence of each still parses.
        assert!(parse(&["--quick", "--seed", "1"]).is_ok());
    }

    #[test]
    fn load_list_rejects_garbage_entries() {
        let err = parse(&["--load", "2.0,zebra"]).unwrap_err();
        assert!(err.contains("--load"), "{err}");
        let err = parse(&["--load", "0"]).unwrap_err();
        assert!(err.contains("--load"), "{err}");
        let err = parse(&["--load", "-3"]).unwrap_err();
        assert!(err.contains("--load"), "{err}");
        let err = parse(&["--arrival", "diagonal"]).unwrap_err();
        assert!(err.contains("--arrival"), "{err}");
        assert_eq!(parse(&["--load", " 4.0 "]).unwrap().load, vec![4.0]);
    }

    #[test]
    fn positional_arguments_ride_along() {
        let a = parse(&["table2", "--quick"]).unwrap();
        assert_eq!(a.positional, vec!["table2".to_string()]);
        assert!(a.quick);
    }

    #[test]
    fn topology_and_interleave_reject_garbage() {
        let err = parse(&["--topology", "4"]).unwrap_err();
        assert!(err.contains("--topology") && err.contains('4'), "{err}");
        let err = parse(&["--interleave", "diagonal"]).unwrap_err();
        assert!(err.contains("--interleave"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn trailing_flag_reports_missing_value() {
        for trailing in [
            "--seed",
            "--instructions",
            "--jobs",
            "--trace",
            "--topology",
            "--arrival",
            "--zipf",
            "--tenants",
            "--load",
        ] {
            let err = parse(&[trailing]).unwrap_err();
            assert!(err.contains("missing its value"), "{err}");
            assert!(err.contains(trailing), "{err}");
        }
    }

    #[test]
    fn unparsable_value_names_flag_and_value() {
        let err = parse(&["--seed", "xyz"]).unwrap_err();
        assert!(err.contains("--seed") && err.contains("xyz"), "{err}");
        let err = parse(&["--jobs", "-1"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn topology_or_prefers_the_flag() {
        let dflt = Topology::new(4, 2).unwrap();
        assert_eq!(parse(&[]).unwrap().topology_or(dflt), dflt);
        assert_eq!(
            parse(&["--topology", "8x1"]).unwrap().topology_or(dflt),
            Topology::new(8, 1).unwrap()
        );
    }
}
