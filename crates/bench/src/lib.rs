//! Benchmark harness for the LADDER reproduction.
//!
//! Each `bin` target regenerates one of the paper's tables or figures (see
//! DESIGN.md §5 for the index):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2` | Fig. 2 — motivation IPC study |
//! | `fig4b` | Fig. 4b — latency vs. wordline LRS % |
//! | `fig11` | Fig. 11 — latency surfaces over (WL, BL) |
//! | `main_eval` | Figs. 12, 13, 14a/b, 16, 17 — the evaluation matrix |
//! | `fig15` | Fig. 15 — estimation accuracy with/without shifting |
//! | `lifetime` | Section 6.4 — wear-leveling and lifetime |
//! | `variability` | Section 7 — shrunk latency range |
//! | `tables` | Tables 1–4 — configuration and overheads |
//! | `faults` | Extension — raw BER sweep: P&V retries, ECC, data loss |
//!
//! Criterion micro-benchmarks for the hot kernels live under `benches/`.

use ladder_sim::experiments::{run_one, ExperimentConfig, RunOptions, Workload};
use ladder_sim::{Runner, Scheme};

/// The flags every binary accepts, printed when parsing fails.
pub const USAGE: &str =
    "usage: [--quick] [--instructions N] [--seed S] [--jobs N] [--csv DIR] [--trace PATH]
  --quick           smoke-test scale (120 k instructions per core)
  --instructions N  instructions per core (overrides --quick)
  --seed S          master workload seed (default 2021)
  --jobs N          worker threads (default: LADDER_JOBS or all cores)
  --csv DIR         also write CSV output into DIR (main_eval only)
  --trace PATH      additionally run one traced LADDER-Est simulation and
                    write chrome://tracing JSON to PATH (summary on stderr)";

/// Parses the experiment configuration out of an argument list
/// (defaults: 1 M instructions, seed 2021). `--quick` starts from
/// [`ExperimentConfig::quick`] — the smoke-test scale CI uses — and an
/// explicit `--instructions` still overrides it.
///
/// # Errors
///
/// Returns a message naming the offending argument on an unknown flag, a
/// flag missing its value, or an unparsable value.
pub fn parse_config(args: &[String]) -> Result<ExperimentConfig, String> {
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--instructions" => {
                cfg.instructions_per_core = flag_value(args, i)?;
                i += 2;
            }
            "--seed" => {
                cfg.seed = flag_value(args, i)?;
                i += 2;
            }
            "--jobs" | "--csv" | "--trace" => {
                // `--jobs` is validated by parse_jobs, `--csv` is read by
                // main_eval and `--trace` by parse_trace; here just
                // require the value to exist.
                let _: String = flag_value(args, i)?;
                i += 2;
            }
            "--quick" => i += 1,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

/// Parses `--jobs N` out of an argument list. `Ok(None)` means the flag was
/// absent (fall back to `LADDER_JOBS` / `available_parallelism()`).
///
/// # Errors
///
/// Returns a message when `--jobs` is missing its value or the value does
/// not parse.
pub fn parse_jobs(args: &[String]) -> Result<Option<usize>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            return flag_value(args, i).map(Some);
        }
        i += 1;
    }
    Ok(None)
}

/// Parses `--trace PATH` out of an argument list. `Ok(None)` means the
/// flag was absent (no trace requested).
///
/// # Errors
///
/// Returns a message when `--trace` is missing its value.
pub fn parse_trace(args: &[String]) -> Result<Option<String>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            return flag_value(args, i).map(Some);
        }
        i += 1;
    }
    Ok(None)
}

/// The value following `args[i]`, parsed; errors name the flag instead of
/// indexing out of bounds.
fn flag_value<T: std::str::FromStr>(args: &[String], i: usize) -> Result<T, String> {
    let flag = &args[i];
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("`{flag}` is missing its value"))?;
    raw.parse()
        .map_err(|_| format!("`{flag}` value `{raw}` is not valid"))
}

fn cli_args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

fn usage_exit(err: &str) -> ! {
    eprintln!("error: {err}\n{USAGE}");
    std::process::exit(2)
}

/// Parses `--quick`, `--instructions N` and `--seed S` from the command
/// line into an experiment configuration. Unknown flags and malformed or
/// missing values print a usage message and exit with status 2.
pub fn config_from_args() -> ExperimentConfig {
    parse_config(&cli_args()).unwrap_or_else(|e| usage_exit(&e))
}

/// Whether `--quick` was passed on the command line. Binaries whose
/// workload is not derived from [`ExperimentConfig`] (e.g. `mna_table`,
/// `crash`) use this to scale their own inputs down to smoke-run size.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Builds the experiment [`Runner`] from the command line: `--jobs N`
/// wins, then the `LADDER_JOBS` environment variable, then
/// `available_parallelism()`. Parallel execution is byte-identical to
/// `--jobs 1` — results always come back in submission order. A malformed
/// or missing `--jobs` value prints a usage message and exits with
/// status 2.
pub fn runner_from_args() -> Runner {
    match parse_jobs(&cli_args()) {
        Ok(Some(n)) => Runner::with_jobs(n),
        Ok(None) => Runner::new(),
        Err(e) => usage_exit(&e),
    }
}

/// Validates `--jobs N` on the command line for binaries that are
/// single-simulation by construction (e.g. `mna_table`'s table generation,
/// `crash`'s single crash-recovery run) and therefore accept the flag for
/// interface uniformity without building a [`Runner`]. A malformed value
/// still prints a usage message and exits with status 2; a valid value is
/// accepted and ignored.
pub fn accept_jobs_flag() {
    if let Err(e) = parse_jobs(&cli_args()) {
        usage_exit(&e);
    }
}

/// If `--trace PATH` was passed on the command line, runs one traced
/// LADDER-Est simulation of `astar` at the configuration's scale, writes
/// chrome://tracing JSON to `PATH`, and prints the per-phase
/// time-attribution summary plus a stats-reconciliation line to stderr.
/// Does nothing when the flag is absent. A malformed `--trace` prints a
/// usage message and exits with status 2; an unwritable path exits with
/// status 1.
///
/// Every bench binary calls this after its main output, so any of them can
/// produce a trace without disturbing the figure pipeline (the traced run
/// is a separate, additional simulation).
pub fn emit_trace_if_requested(cfg: &ExperimentConfig) {
    let path = match parse_trace(&cli_args()) {
        Ok(Some(p)) => p,
        Ok(None) => return,
        Err(e) => usage_exit(&e),
    };
    let tables = cfg.tables();
    let opts = RunOptions {
        trace: true,
        ..RunOptions::default()
    };
    let r = run_one(
        Scheme::LadderEst,
        Workload::Single("astar"),
        cfg,
        &tables,
        opts,
    );
    let Some(trace) = r.trace.as_ref() else {
        // RunOptions.trace was set above, so this is unreachable in
        // practice; fail loudly rather than panicking in library code.
        eprintln!("error: traced run returned no trace buffer");
        std::process::exit(1);
    };
    let json = ladder_trace::chrome_trace_json(trace);
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("error: cannot write trace to `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "trace: LADDER-Est/astar -> {path} ({} records, {} dropped from ring, digest {})",
        trace.records, trace.dropped, trace.digest
    );
    eprintln!(
        "trace: reconciliation — pulses {}+{} vs writes {}+{}, reads {} vs {}, dispatches {} vs {}",
        trace.totals.data_pulses,
        trace.totals.metadata_pulses,
        r.mem.data_writes,
        r.mem.metadata_writes,
        trace.totals.demand_reads + trace.totals.smb_reads + trace.totals.metadata_reads,
        r.mem.demand_reads + r.mem.smb_reads + r.mem.metadata_reads,
        trace.totals.dispatch_total(),
        r.events.total()
    );
    eprint!("{}", ladder_trace::time_attribution(&trace.totals));
}

/// Prints the runner's cumulative batch statistics to stderr (so figure
/// data on stdout stays clean).
pub fn report_runner(runner: &Runner) {
    let stats = runner.cumulative();
    if stats.jobs > 0 {
        eprintln!("{}", stats.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_without_flags() {
        let cfg = parse_config(&[]).unwrap();
        assert_eq!(cfg.instructions_per_core, 1_000_000);
        assert_eq!(cfg.seed, 2021);
        assert_eq!(parse_jobs(&[]).unwrap(), None);
    }

    #[test]
    fn quick_scales_down_but_instructions_override() {
        let cfg = parse_config(&args(&["--quick"])).unwrap();
        assert_eq!(cfg.instructions_per_core, 120_000);
        let cfg = parse_config(&args(&["--quick", "--instructions", "777"])).unwrap();
        assert_eq!(cfg.instructions_per_core, 777);
    }

    #[test]
    fn all_flags_parse_together() {
        let cfg = parse_config(&args(&[
            "--seed",
            "7",
            "--jobs",
            "3",
            "--instructions",
            "42",
        ]))
        .unwrap();
        assert_eq!((cfg.seed, cfg.instructions_per_core), (7, 42));
        assert_eq!(
            parse_jobs(&args(&["--seed", "7", "--jobs", "3"])).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn trace_flag_parses_and_requires_value() {
        assert_eq!(parse_trace(&[]).unwrap(), None);
        assert_eq!(
            parse_trace(&args(&["--quick", "--trace", "/tmp/t.json"])).unwrap(),
            Some("/tmp/t.json".to_string())
        );
        // parse_config tolerates it like --jobs/--csv.
        parse_config(&args(&["--trace", "/tmp/t.json"])).unwrap();
        let err = parse_trace(&args(&["--trace"])).unwrap_err();
        assert!(err.contains("missing its value"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_config(&args(&["--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn trailing_flag_reports_missing_value() {
        for trailing in ["--seed", "--instructions"] {
            let err = parse_config(&args(&[trailing])).unwrap_err();
            assert!(err.contains("missing its value"), "{err}");
            assert!(err.contains(trailing), "{err}");
        }
        let err = parse_jobs(&args(&["--jobs"])).unwrap_err();
        assert!(err.contains("missing its value"), "{err}");
    }

    #[test]
    fn unparsable_value_names_flag_and_value() {
        let err = parse_config(&args(&["--seed", "xyz"])).unwrap_err();
        assert!(err.contains("--seed") && err.contains("xyz"), "{err}");
        let err = parse_jobs(&args(&["--jobs", "-1"])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }
}
