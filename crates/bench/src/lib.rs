//! Benchmark harness for the LADDER reproduction.
//!
//! Each `bin` target regenerates one of the paper's tables or figures (see
//! DESIGN.md §5 for the index):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2` | Fig. 2 — motivation IPC study |
//! | `fig4b` | Fig. 4b — latency vs. wordline LRS % |
//! | `fig11` | Fig. 11 — latency surfaces over (WL, BL) |
//! | `main_eval` | Figs. 12, 13, 14a/b, 16, 17 — the evaluation matrix |
//! | `fig15` | Fig. 15 — estimation accuracy with/without shifting |
//! | `lifetime` | Section 6.4 — wear-leveling and lifetime |
//! | `variability` | Section 7 — shrunk latency range |
//! | `tables` | Tables 1–4 — configuration and overheads |
//!
//! Criterion micro-benchmarks for the hot kernels live under `benches/`.

use ladder_sim::experiments::ExperimentConfig;
use ladder_sim::Runner;

/// Parses `--quick`, `--instructions N` and `--seed S` from the command
/// line into an experiment configuration (defaults: 1 M instructions,
/// seed 2021). `--quick` starts from [`ExperimentConfig::quick`] — the
/// smoke-test scale CI uses — and an explicit `--instructions` still
/// overrides it.
///
/// # Panics
///
/// Panics on malformed arguments.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if quick_requested() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--instructions" => {
                cfg.instructions_per_core = args[i + 1].parse().expect("instruction count");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("seed");
                i += 2;
            }
            _ => i += 1,
        }
    }
    cfg
}

/// Whether `--quick` was passed on the command line. Binaries whose
/// workload is not derived from [`ExperimentConfig`] (e.g. `mna_table`,
/// `crash`) use this to scale their own inputs down to smoke-run size.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Builds the experiment [`Runner`] from the command line: `--jobs N`
/// wins, then the `LADDER_JOBS` environment variable, then
/// `available_parallelism()`. Parallel execution is byte-identical to
/// `--jobs 1` — results always come back in submission order.
///
/// # Panics
///
/// Panics on a malformed `--jobs` value.
pub fn runner_from_args() -> Runner {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        if args[i] == "--jobs" {
            return Runner::with_jobs(args[i + 1].parse().expect("worker count"));
        }
        i += 1;
    }
    Runner::new()
}

/// Prints the runner's cumulative batch statistics to stderr (so figure
/// data on stdout stays clean).
pub fn report_runner(runner: &Runner) {
    let stats = runner.cumulative();
    if stats.jobs > 0 {
        eprintln!("{}", stats.summary());
    }
}
