//! Extension — hot-loop throughput report: end-to-end simulated
//! writes/sec and events/sec on the canonical workloads, plus
//! fast-path vs. reference-path comparisons for each overhauled kernel
//! (SWAR bit paths, quantized timing-table lookup, calendar event
//! queue).
//!
//! The end-to-end section runs the same three seeded workloads as the
//! golden-trace gate on both queue backends and *asserts* that their
//! trace digests agree — a digest divergence exits non-zero, so the
//! `just hotloop` smoke stage doubles as a differential regression
//! gate. See `DESIGN.md` §15 for the fast-path/reference-path
//! discipline.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::Workload;
use ladder_sim::wallclock::Stopwatch;
use ladder_sim::{QueueBackend, Scheme, SimConfig};
use std::hint::black_box;
use std::sync::Arc;

/// The golden-trace gate's canonical seeded workloads (kept in sync with
/// `tests/golden_trace.rs`).
const CANONICAL: [(Scheme, &str); 3] = [
    (Scheme::LadderEst, "astar"),
    (Scheme::LadderEst, "mcf"),
    (Scheme::Baseline, "astar"),
];

/// Iterations for the kernel micro-sections, scaled down under `--quick`.
fn micro_iters(quick: bool) -> u64 {
    if quick {
        20_000
    } else {
        200_000
    }
}

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    println!("Extension — hot-loop throughput (fast path vs. retained reference)");

    // ---- end-to-end: canonical workloads on both queue backends ----
    let tables = Arc::new(cfg.tables());
    let configs = |backend: QueueBackend| -> Vec<SimConfig> {
        CANONICAL
            .iter()
            .map(|&(s, b)| {
                SimConfig::builder()
                    .scheme(s)
                    .workload(Workload::Single(b))
                    .queue(backend)
                    .trace(true)
                    .build()
            })
            .collect()
    };
    println!(
        "{:<10}{:>12}{:>14}{:>14}{:>14}{:>12}",
        "queue", "wall s", "events", "events/s", "writes/s", "speedup"
    );
    let mut digests: Vec<Vec<String>> = Vec::new();
    let mut heap_wall = 0.0f64;
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let sw = Stopwatch::start();
        let (results, _) = runner.run_configs(&cfg, &tables, &configs(backend));
        let wall = sw.elapsed_secs().max(1e-9);
        let events: u64 = results.iter().map(|r| r.events.total()).sum();
        let writes: u64 = results.iter().map(|r| r.mem.data_writes).sum();
        let mut run_digests = Vec::new();
        for r in &results {
            let Some(trace) = r.trace.as_ref() else {
                eprintln!("error: traced run returned no trace buffer");
                std::process::exit(1);
            };
            run_digests.push(trace.digest.to_string());
        }
        digests.push(run_digests);
        let label = match backend {
            QueueBackend::Calendar => "calendar",
            QueueBackend::Heap => "heap",
        };
        let speedup = if heap_wall > 0.0 {
            format!("{:>11.2}x", heap_wall / wall)
        } else {
            format!("{:>12}", "1.00x (ref)")
        };
        println!(
            "{label:<10}{wall:>12.3}{events:>14}{:>14.0}{:>14.0}{speedup}",
            events as f64 / wall,
            writes as f64 / wall,
        );
        if heap_wall == 0.0 {
            heap_wall = wall;
        }
    }
    if digests[0] != digests[1] {
        eprintln!("error: trace digests diverged between queue backends");
        eprintln!("  heap:     {:?}", digests[0]);
        eprintln!("  calendar: {:?}", digests[1]);
        std::process::exit(1);
    }
    println!(
        "digests: {} canonical runs bit-identical on both backends",
        CANONICAL.len()
    );

    // ---- kernel micro-sections: fast path vs. reference ----
    let iters = micro_iters(args.quick);
    println!(
        "\n{:<26}{:>14}{:>14}{:>10}",
        "kernel", "fast Mop/s", "ref Mop/s", "speedup"
    );
    bench_bits(iters);
    bench_table(iters);
    bench_queue(iters);

    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}

/// Deterministic pseudo-random line generator (splitmix64) so the micro
/// sections measure the same byte stream every invocation.
fn fill_lines(seed: u64, n: usize) -> Vec<[u8; 64]> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let mut line = [0u8; 64];
            for chunk in line.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            line
        })
        .collect()
}

fn rate_line(label: &str, ops: u64, fast: f64, reference: f64) {
    let (fast, reference) = (fast.max(1e-9), reference.max(1e-9));
    println!(
        "{label:<26}{:>14.1}{:>14.1}{:>9.1}x",
        ops as f64 / fast / 1e6,
        ops as f64 / reference / 1e6,
        reference / fast
    );
}

fn bench_bits(iters: u64) {
    use ladder_reram::bits;
    let lines = fill_lines(2021, 256);
    let pairs: Vec<(&[u8; 64], &[u8; 64])> = lines.iter().zip(lines.iter().rev()).collect();

    let sw = Stopwatch::start();
    let mut acc = 0u32;
    for _ in 0..iters / 256 {
        for l in &lines {
            acc = acc.wrapping_add(bits::ones(black_box(&l[..])));
        }
    }
    let fast = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let mut racc = 0u32;
    for _ in 0..iters / 256 {
        for l in &lines {
            racc = racc.wrapping_add(bits::reference::ones(black_box(&l[..])));
        }
    }
    rate_line("bits::ones", iters / 256 * 256, fast, sw.elapsed_secs());
    assert_eq!(acc, racc, "popcount fast/reference checksum mismatch");

    let sw = Stopwatch::start();
    let mut acc = (0u32, 0u32);
    for _ in 0..iters / 256 {
        for (a, b) in &pairs {
            let (s, r) = bits::delta_ones(black_box(&a[..]), black_box(&b[..]));
            acc = (acc.0.wrapping_add(s), acc.1.wrapping_add(r));
        }
    }
    let fast = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let mut racc = (0u32, 0u32);
    for _ in 0..iters / 256 {
        for (a, b) in &pairs {
            let (s, r) = bits::reference::delta_ones(black_box(&a[..]), black_box(&b[..]));
            racc = (racc.0.wrapping_add(s), racc.1.wrapping_add(r));
        }
    }
    rate_line(
        "bits::delta_ones",
        iters / 256 * 256,
        fast,
        sw.elapsed_secs(),
    );
    assert_eq!(acc, racc, "delta fast/reference checksum mismatch");

    let sw = Stopwatch::start();
    let mut acc = 0u32;
    for _ in 0..iters / 256 {
        for l in &lines {
            acc = acc.wrapping_add(bits::worst_byte_ones(black_box(&l[..])));
        }
    }
    let fast = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let mut racc = 0u32;
    for _ in 0..iters / 256 {
        for l in &lines {
            racc = racc.wrapping_add(bits::reference::worst_byte_ones(black_box(&l[..])));
        }
    }
    rate_line(
        "bits::worst_byte_ones",
        iters / 256 * 256,
        fast,
        sw.elapsed_secs(),
    );
    assert_eq!(acc, racc, "worst-byte fast/reference checksum mismatch");
}

fn bench_table(iters: u64) {
    use ladder_xbar::{TableConfig, TimingTable};
    let table = match TimingTable::generate(&TableConfig::ladder_default()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot generate timing table: {e}");
            std::process::exit(1);
        }
    };
    let mut coords = Vec::new();
    let mut state = 7u64;
    for _ in 0..4096 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let wl = (state >> 33) as usize % 512;
        let bl = (state >> 12) as usize % 512;
        let c = (state >> 3) as usize % 513;
        coords.push((wl, bl, c));
    }
    let n = coords.len() as u64;

    let sw = Stopwatch::start();
    let mut acc = 0u64;
    for _ in 0..iters / n {
        for &(wl, bl, c) in &coords {
            acc = acc.wrapping_add(table.lookup_ps(black_box(wl), black_box(bl), black_box(c)));
        }
    }
    let fast = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let mut racc = 0u64;
    for _ in 0..iters / n {
        for &(wl, bl, c) in &coords {
            racc = racc.wrapping_add(table.lookup_ps_reference(
                black_box(wl),
                black_box(bl),
                black_box(c),
            ));
        }
    }
    rate_line("table::lookup_ps", iters / n * n, fast, sw.elapsed_secs());
    assert_eq!(acc, racc, "table fast/reference checksum mismatch");
}

fn bench_queue(iters: u64) {
    use ladder_reram::{EventQueue, Instant};
    // Schedule/pop churn shaped like the kernel's: bursts of near-future
    // wakes with frequent equal-time collisions.
    let run = |backend: QueueBackend| -> (f64, u64) {
        let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
        let mut state = 99u64;
        let mut now = 0u64;
        let mut acc = 0u64;
        let sw = Stopwatch::start();
        for i in 0..iters {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.schedule(Instant::from_ps(now + (state >> 40) % 4096), i);
            if i % 2 == 1 {
                if let Some((at, k)) = q.pop() {
                    now = at.as_ps();
                    acc = acc.wrapping_add(k).wrapping_add(at.as_ps());
                }
            }
        }
        while let Some((at, k)) = q.pop() {
            acc = acc.wrapping_add(k).wrapping_add(at.as_ps());
        }
        (sw.elapsed_secs(), acc)
    };
    let (fast, acc) = run(QueueBackend::Calendar);
    let (reference, racc) = run(QueueBackend::Heap);
    // Each scheduled event is also popped: 2 ops per event.
    rate_line("queue schedule+pop", iters * 2, fast, reference);
    assert_eq!(acc, racc, "queue fast/reference checksum mismatch");
}
