//! Regenerates the Section 6.4 analysis: write traffic, relative lifetime
//! and performance of the LADDER schemes under segment-based vertical
//! wear-leveling plus horizontal byte rotation.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::{lifetime, Workload};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    println!("Section 6.4 — wear-leveling integration (workload: mix-1)");
    println!(
        "{:<16}{:>14}{:>12}{:>18}{:>20}",
        "scheme", "write traffic", "lifetime", "speedup w/ WL", "speedup w/o WL"
    );
    for r in lifetime(&cfg, Workload::Mix("mix-1"), &runner) {
        println!(
            "{:<16}{:>13.3}x{:>11.3}x{:>18.3}{:>20.3}",
            r.scheme.name(),
            r.write_traffic_ratio,
            r.lifetime_ratio,
            r.speedup_with_wl,
            r.speedup_without_wl
        );
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
