//! Regenerates Figure 11: the RESET latency surface over (WL, BL) location
//! for the two extreme wordline data patterns (sub-tables of the timing
//! table for the lowest and highest content bands).

use ladder_bench::BenchArgs;
use ladder_sim::experiments::ExperimentConfig;
use ladder_xbar::{TableConfig, TimingTable};

fn main() {
    // Single table generation; `--jobs` is accepted (by BenchArgs) for
    // interface uniformity.
    let args = BenchArgs::parse();
    let mut cfg = TableConfig::ladder_default();
    // `--quick` coarsens the surface to a 4-band table for CI smoke runs.
    if args.quick {
        cfg.bands = 4;
    }
    let table = match TimingTable::generate(&cfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot generate timing table: {e}");
            std::process::exit(1);
        }
    };
    for (c_band, label) in [
        (0usize, "(a) WL pattern all '0's"),
        (table.bands() - 1, "(b) WL pattern all '1's"),
    ] {
        println!("Figure 11{label} — RESET latency (ns), rows = WL band, cols = BL band");
        print!("{:>10}", "WL\\BL");
        for b in 0..table.bands() {
            print!("{:>9}", format!("b{b}"));
        }
        println!();
        for w in 0..table.bands() {
            print!("{:>10}", format!("w{w}"));
            for b in 0..table.bands() {
                print!("{:>9.1}", table.entry(c_band, w, b) as f64 / 1000.0);
            }
            println!();
        }
        println!();
    }
    // This binary has no simulation of its own; a requested trace runs at
    // smoke scale.
    args.emit_trace_if_requested(&ExperimentConfig::quick());
}
