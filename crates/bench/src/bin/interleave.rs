//! Extension — address-interleaving sweep over a sharded topology:
//! channel, bank and page striping compared for the baseline and
//! LADDER-Est schemes, each run through the sharded multi-channel runner.
//!
//! Every run traces, so the merged golden-trace digest is printed per
//! (policy, scheme) cell — bit-identical at any `--jobs`, which is what
//! the CI shard smoke stage checks.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::Workload;
use ladder_sim::{run_sharded, Interleave, Scheme, SimConfig, Topology};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let topology = args.topology_or(Topology::new(4, 2).expect("static topology"));
    let runner = args.runner();
    let tables = cfg.tables();
    let workload = Workload::Single("astar");

    println!(
        "Interleave sweep — topology {topology} ({} shards), workload {}",
        topology.shards(),
        workload.label()
    );
    println!(
        "{:<9}{:<13}{:>12}{:>10}{:>10}{:>12}  merged digest",
        "policy", "scheme", "retired", "writes", "end (us)", "energy (nJ)"
    );
    for policy in Interleave::ALL {
        let mut baseline_end = None;
        for scheme in [Scheme::Baseline, Scheme::LadderEst] {
            let sim_cfg = SimConfig::builder()
                .scheme(scheme)
                .workload(workload)
                .topology(topology)
                .interleave(policy)
                .trace(true)
                .build();
            let run = run_sharded(&sim_cfg, &cfg, &tables, &runner);
            let end_us = run.end.as_ps() as f64 / 1e6;
            println!(
                "{:<9}{:<13}{:>12}{:>10}{:>10.1}{:>12.1}  {}",
                policy.name(),
                scheme.name(),
                run.retired(),
                run.mem.data_writes,
                end_us,
                run.energy.total_pj() / 1000.0,
                run.digest
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".to_string())
            );
            match scheme {
                Scheme::Baseline => baseline_end = Some(end_us),
                _ => {
                    if let Some(b) = baseline_end {
                        println!("{:<9}  -> LADDER-Est speedup: {:.3}x", "", b / end_us);
                    }
                }
            }
        }
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
