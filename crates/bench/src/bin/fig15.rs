//! Regenerates Figure 15: mean LRS-counter difference between LADDER-Est
//! and accurate counting, without (a) and with (b) intra-line bit shifting.

use ladder_bench::{config_from_args, emit_trace_if_requested, report_runner, runner_from_args};
use ladder_sim::experiments::fig15;

fn main() {
    let cfg = config_from_args();
    let runner = runner_from_args();
    println!("Figure 15 — mean C^w_lrs difference (Est − accurate)");
    println!(
        "{:<9}{:>20}{:>18}",
        "workload", "(a) no shifting", "(b) shifting"
    );
    for r in fig15(&cfg, &runner) {
        println!(
            "{:<9}{:>20.1}{:>18.1}",
            r.workload, r.diff_without_shift, r.diff_with_shift
        );
    }
    report_runner(&runner);
    emit_trace_if_requested(&cfg);
}
