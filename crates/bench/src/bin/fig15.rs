//! Regenerates Figure 15: mean LRS-counter difference between LADDER-Est
//! and accurate counting, without (a) and with (b) intra-line bit shifting.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::fig15;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    println!("Figure 15 — mean C^w_lrs difference (Est − accurate)");
    println!(
        "{:<9}{:>20}{:>18}",
        "workload", "(a) no shifting", "(b) shifting"
    );
    for r in fig15(&cfg, &runner) {
        println!(
            "{:<9}{:>20.1}{:>18.1}",
            r.workload, r.diff_without_shift, r.diff_with_shift
        );
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
