//! Regenerates Figure 4b: RESET latency as a function of the selected
//! wordline's LRS percentage, for a far cell (①) and a near cell (②).

use ladder_bench::BenchArgs;
use ladder_sim::experiments::ExperimentConfig;
use ladder_xbar::{calibrate_device_law, latency_vs_wl_content, CrossbarParams};

fn main() {
    // Single analytic sweep; `--jobs` is accepted (by BenchArgs) for
    // interface uniformity.
    let args = BenchArgs::parse();
    // `--quick` halves the sweep resolution for CI smoke runs.
    let points = if args.quick { 10 } else { 20 };
    let params = CrossbarParams::default();
    let law = calibrate_device_law(&params, 29.0, 658.0);
    // Cell ① sits far from both drivers; cell ② sits near them.
    let far = latency_vs_wl_content(&params, law, 480, 480, points);
    let near = latency_vs_wl_content(&params, law, 32, 32, points);
    println!("Figure 4b — RESET latency vs WL LRS percentage");
    println!("{:>8}{:>16}{:>16}", "LRS %", "cell 1 (ns)", "cell 2 (ns)");
    for (f, n) in far.iter().zip(&near) {
        println!("{:>8.0}{:>16.1}{:>16.1}", f.0, f.1, n.1);
    }
    // This binary has no simulation of its own; a requested trace runs at
    // smoke scale.
    args.emit_trace_if_requested(&ExperimentConfig::quick());
}
