//! Extension — multi-year device-lifetime campaign: write-skew × raw BER
//! × remap backend × code scheme, every cell a sharded open-loop run.
//!
//! Emits one CSV row per cell on stdout (device-years plus p50/p99 read
//! latency, coding counters and parity write amplification); progress and
//! runner statistics go to stderr so the CSV pipes clean. The sweep is
//! bit-reproducible at any `--jobs` (the sharded runner folds shards in
//! submission order).
//!
//! `--zipf T` restricts the sweep to one skew, `--load L` overrides the
//! offered load, `--topology CxR` reshapes the shard fan-out, and
//! `--quick` scales the per-cell request count down to smoke-run size.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::{lifetime_campaign, CampaignRow, CampaignSpec};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    let mut spec = CampaignSpec::standard(args.quick);
    if let Some(t) = args.topology {
        spec.topology = t;
    }
    if let Some(z) = args.zipf {
        spec.skews = vec![z];
    }
    if let Some(&load) = args.load.first() {
        spec.load = load;
    }
    eprintln!(
        "Lifetime campaign — {} cells ({} skews x {} BERs x {} remaps x {} schemes), \
         topology {}, {} requests/shard/cell",
        spec.cells(),
        spec.skews.len(),
        spec.bers.len(),
        spec.remaps.len(),
        spec.codings.len(),
        spec.topology,
        spec.requests
    );
    println!("{}", CampaignRow::CSV_HEADER);
    for row in lifetime_campaign(&cfg, &spec, &runner) {
        println!("{}", row.csv_line());
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
