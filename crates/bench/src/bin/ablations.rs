//! Ablation studies of LADDER's design choices (DESIGN.md §5): metadata
//! cache size, bit shifting, the FNW counting constraint, low-precision
//! rows, timing-table granularity, drain watermarks, and vertical
//! wear-leveling granularity.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::ablations::*;
use ladder_sim::experiments::Workload;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    let w = Workload::Single("astar");
    let wmix = Workload::Mix("mix-1");

    println!("== metadata cache size (LADDER-Est, astar) ==");
    println!("{}", render(&cache_size_sweep(&cfg, w, &runner)));

    println!("== intra-line bit shifting (LADDER-Est, astar) ==");
    println!("{}", render(&shifting_ablation(&cfg, w, &runner)));

    println!("== FNW policy (LADDER-Est, astar) ==");
    let (pts, cancelled) = fnw_ablation(&cfg, w, &runner);
    println!("{}", render(&pts));
    if let Some(c) = cancelled {
        println!(
            "flips cancelled by the counting constraint: {:.2}%\n",
            c * 100.0
        );
    }

    println!("== low-precision rows (LADDER-Hybrid, astar) ==");
    println!("{}", render(&low_rows_sweep(&cfg, w, &runner)));

    println!("== timing-table granularity (LADDER-Est, astar) ==");
    println!("{}", render(&table_granularity_sweep(&cfg, w, &runner)));

    println!("== drain watermarks (LADDER-Est vs baseline, mix-1) ==");
    println!("{}", render(&drain_watermark_sweep(&cfg, wmix, &runner)));

    println!("== vertical wear-leveling granularity (LADDER-Est, astar) ==");
    println!("{}", render(&vwl_comparison(&cfg, w, &runner)));
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
