//! Regenerates the Section 7 crash-consistency study: write-latency decay
//! after lazy LRS-metadata correction.

use ladder_bench::BenchArgs;
use ladder_sim::experiments::crash_recovery;

fn main() {
    // One crash-recovery run per benchmark, sequential by design; `--jobs`
    // is accepted (by BenchArgs) for interface uniformity.
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    for bench in ["astar", "libq"] {
        let r = crash_recovery(&cfg, bench);
        println!("{bench}: steady-state mean tWR = {:.1} ns", r.steady_twr_ns);
        for (i, w) in r.post_crash_windows_ns.iter().enumerate() {
            println!("  window {:>2} after crash: {:>7.1} ns", i + 1, w);
        }
        let last = *r.post_crash_windows_ns.last().expect("windows");
        println!(
            "  -> recovered to {:.0}% of steady state\n",
            100.0 * r.steady_twr_ns / last.max(1e-9)
        );
    }
    args.emit_trace_if_requested(&cfg);
}
