//! Regenerates the main evaluation: Figures 12 (write service time),
//! 13 (read latency), 14a/14b (metadata traffic), 16 (speedup) and
//! 17 (dynamic energy), all from one 16-workload × 7-scheme run matrix.
//!
//! Pass `--csv DIR` to additionally write one CSV per figure into `DIR`.

use ladder_bench::BenchArgs;
use ladder_sim::experiments::MainEval;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    eprintln!(
        "running 16 workloads x 7 schemes at {} instructions/core on {} worker(s) ...",
        cfg.instructions_per_core,
        runner.jobs()
    );
    let eval = MainEval::builder(&cfg).run(&runner);
    eprintln!("{}", eval.stats.summary());
    println!(
        "Figure 12 — normalized write service time\n{}",
        eval.fig12_write_service().to_table()
    );
    println!(
        "Figure 13 — normalized read latency\n{}",
        eval.fig13_read_latency().to_table()
    );
    println!(
        "Figure 14a — additional reads (fraction of demand reads)\n{}",
        eval.fig14a_additional_reads().to_table()
    );
    println!(
        "Figure 14b — additional writes (fraction of data writes)\n{}",
        eval.fig14b_additional_writes().to_table()
    );
    println!(
        "Figure 16 — speedup over baseline\n{}",
        eval.fig16_speedup().to_table()
    );
    println!("Figure 17 — normalized dynamic energy (read + write = total)");
    for (wl, cols) in eval.fig17_energy() {
        print!("{wl:<9}");
        for (scheme, rd, wr) in cols {
            print!("  {}={:.2}+{:.2}", scheme.name(), rd, wr);
        }
        println!();
    }
    println!();
    for s in ladder_sim::Scheme::MAIN_EVAL {
        println!("avg normalized energy, {}: {:.3}", s, eval.avg_energy_of(s));
    }
    if let Some(dir) = args.csv.as_ref().map(std::path::PathBuf::from) {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let dump = |name: &str, csv: String| {
            std::fs::write(dir.join(name), csv).expect("write csv");
        };
        dump(
            "fig12_write_service.csv",
            eval.fig12_write_service().to_csv(),
        );
        dump("fig13_read_latency.csv", eval.fig13_read_latency().to_csv());
        dump(
            "fig14a_additional_reads.csv",
            eval.fig14a_additional_reads().to_csv(),
        );
        dump(
            "fig14b_additional_writes.csv",
            eval.fig14b_additional_writes().to_csv(),
        );
        dump("fig16_speedup.csv", eval.fig16_speedup().to_csv());
        eprintln!("CSV written to {}", dir.display());
    }
    args.emit_trace_if_requested(&cfg);
}
