//! Extension — open-loop tail-latency sweep: offered load × arrival
//! process × scheme, with a per-tenant SLO report for every cell.
//!
//! Each cell drives the simulator from a timestamped multi-tenant
//! request stream (`--arrival`, `--load`, `--tenants`, `--zipf`) instead
//! of closed-loop cores, so read latency is arrival→completion — the
//! quantity a tail-latency SLO is written against — and offered load
//! beyond capacity shows up as saturation throughput plus deferred
//! arrivals rather than implicit back-pressure.
//!
//! With `--topology CxR` every cell shards over the topology (one
//! independent stream per channel, folded bit-reproducibly at any
//! `--jobs`).

use ladder_bench::{report_runner, BenchArgs};
use ladder_reram::Instant;
use ladder_sim::experiments::Workload;
use ladder_sim::{run_sharded, run_sim, ArrivalKind, Scheme, ServiceConfig, SimConfig};
use ladder_trace::SloReport;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    let tables = cfg.tables();

    let loads: Vec<f64> = if args.load.is_empty() {
        vec![2.0, 6.0]
    } else {
        args.load.clone()
    };
    let arrivals: Vec<ArrivalKind> = match args.arrival {
        Some(kind) => vec![kind],
        None => ArrivalKind::ALL.to_vec(),
    };
    let tenants = args.tenants.unwrap_or(3);
    let zipf = args.zipf.unwrap_or(0.99);
    let requests: u64 = if args.quick { 4_000 } else { 50_000 };

    println!(
        "Open-loop service sweep — {tenants} tenants, zipf {zipf}, {requests} requests per run{}",
        args.topology
            .map(|t| format!(" per shard (topology {t})"))
            .unwrap_or_default()
    );
    for arrival in &arrivals {
        for &load in &loads {
            for scheme in [Scheme::Baseline, Scheme::LadderEst] {
                let service = ServiceConfig::builder()
                    .arrival(*arrival)
                    .load(load)
                    .tenants(tenants)
                    .zipf_theta(zipf)
                    .requests(requests)
                    .build();
                let builder = SimConfig::builder()
                    .scheme(scheme)
                    .workload(Workload::Single("astar"))
                    .service(service);
                let (stats, end) = if let Some(topology) = args.topology {
                    let run =
                        run_sharded(&builder.topology(topology).build(), &cfg, &tables, &runner);
                    (run.service, run.end)
                } else {
                    let r = run_sim(&builder.build(), &cfg, &tables);
                    (r.service, r.end)
                };
                let stats = stats.expect("service mode always returns stats");
                let report = SloReport::build(&stats.tenants, end.duration_since(Instant::ZERO));
                println!(
                    "  {} / offered {:.1} req/us / {}: achieved {:.3} req/us, {} arrivals, {} deferred",
                    arrival.name(),
                    load,
                    scheme.name(),
                    report.throughput,
                    stats.arrivals,
                    stats.deferred
                );
                print!("{}", report.render());
            }
        }
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
