//! Prints Tables 1–4: crossbar parameters, architecture parameters, the
//! workload list, and the hardware-overhead summary.

use ladder_bench::BenchArgs;
use ladder_memctrl::MemCtrlConfig;
use ladder_reram::{DeviceTiming, Geometry};
use ladder_sim::experiments::ExperimentConfig;
use ladder_workloads::{profile_of, MIXES, SINGLE_BENCHMARKS};
use ladder_xbar::CrossbarParams;

fn main() {
    // Pure printing; `--jobs` is accepted (by BenchArgs) for interface
    // uniformity. The table selector is the first positional argument, so
    // `--trace PATH` (and any future flags) can ride along.
    let args = BenchArgs::parse();
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if matches!(which.as_str(), "all" | "table1") {
        let p = CrossbarParams::default();
        println!("Table 1 — ReRAM crossbar parameters");
        println!("  dimensions: {}x{}", p.rows, p.cols);
        println!("  selected cells: {}", p.selected_cells);
        println!("  LRS/HRS resistance: {:.0} / {:.0} ohm", p.r_lrs, p.r_hrs);
        println!(
            "  input/output/wire resistance: {} / {} / {} ohm",
            p.r_input, p.r_output, p.r_wire
        );
        println!("  selector non-linearity: {}", p.selector_nonlinearity);
        println!(
            "  write/bias voltage: {} / {} V\n",
            p.write_voltage, p.bias_voltage
        );
    }
    if matches!(which.as_str(), "all" | "table2") {
        let g = Geometry::default();
        let t = DeviceTiming::default();
        let m = MemCtrlConfig::default();
        println!("Table 2 — architecture parameters");
        println!(
            "  memory: {} channels, {} ranks/channel, {} banks/rank, {} mats/bank, {}x{} mats",
            g.channels,
            g.ranks_per_channel,
            g.banks_per_rank,
            g.mats_per_bank,
            g.mat_rows,
            g.mat_cols
        );
        println!(
            "  capacity: {} GiB",
            g.capacity_bytes() as f64 / (1u64 << 30) as f64
        );
        println!(
            "  controller: {}-entry RDQ, {}-entry WRQ, drain at {}/{}",
            m.rdq_capacity, m.wrq_capacity, m.drain_high, m.wrq_capacity
        );
        println!(
            "  timing: tCL {} tRCD {} tBURST {}, tWR 29-658 ns (variable)\n",
            t.t_cl, t.t_rcd, t.t_burst
        );
    }
    if matches!(which.as_str(), "all" | "table3") {
        println!("Table 3 — workloads");
        for b in SINGLE_BENCHMARKS {
            let p = profile_of(b);
            println!(
                "  {:<8} rpki {:>5.1}  wpki {:>4.1}  ws {:>6} pages",
                b, p.rpki, p.wpki, p.working_set_pages
            );
        }
        for (m, members) in MIXES {
            println!("  {:<8} {}", m, members.join("-"));
        }
        println!();
    }
    if matches!(which.as_str(), "all" | "table4") {
        if args.quick {
            // Table 4 regenerates a timing table to compute overheads —
            // the only non-trivial work here — so smoke runs skip it.
            println!("Table 4 — skipped under --quick (run without it for overheads)");
        } else {
            print!("{}", ladder_sim::overhead::report());
        }
    }
    // This binary has no simulation of its own; a requested trace runs at
    // smoke scale.
    args.emit_trace_if_requested(&ExperimentConfig::quick());
}
