//! Evaluates the paper's Section 8 future-work idea: LADDER combined with
//! adaptive remapping of write-hot pages to low-latency (bottom) rows.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::{hot_remap_extension, Workload};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    println!("Extension — LADDER-Hybrid + hot-page remapping to bottom rows");
    println!(
        "{:<9}{:>16}{:>16}{:>14}{:>14}",
        "workload", "LADDER speedup", "+remap speedup", "tWR (ns)", "+remap tWR"
    );
    for w in [
        Workload::Single("astar"),
        Workload::Single("mcf"),
        Workload::Single("lbm"),
        Workload::Mix("mix-1"),
    ] {
        let r = hot_remap_extension(&cfg, w, &runner);
        println!(
            "{:<9}{:>16.3}{:>16.3}{:>14.1}{:>14.1}",
            w.label(),
            r.ladder_speedup,
            r.ladder_remap_speedup,
            r.twr_ladder_ns,
            r.twr_remap_ns
        );
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
