//! Evaluates the paper's Section 8 future-work idea: LADDER combined with
//! adaptive remapping of write-hot pages to low-latency (bottom) rows.

use ladder_bench::{config_from_args, emit_trace_if_requested, report_runner, runner_from_args};
use ladder_sim::experiments::{hot_remap_extension, Workload};

fn main() {
    let cfg = config_from_args();
    let runner = runner_from_args();
    println!("Extension — LADDER-Hybrid + hot-page remapping to bottom rows");
    println!(
        "{:<9}{:>16}{:>16}{:>14}{:>14}",
        "workload", "LADDER speedup", "+remap speedup", "tWR (ns)", "+remap tWR"
    );
    for w in [
        Workload::Single("astar"),
        Workload::Single("mcf"),
        Workload::Single("lbm"),
        Workload::Mix("mix-1"),
    ] {
        let r = hot_remap_extension(&cfg, w, &runner);
        println!(
            "{:<9}{:>16.3}{:>16.3}{:>14.1}{:>14.1}",
            w.label(),
            r.ladder_speedup,
            r.ladder_remap_speedup,
            r.twr_ladder_ns,
            r.twr_remap_ns
        );
    }
    report_runner(&runner);
    emit_trace_if_requested(&cfg);
}
