//! Extension — raw bit-error-rate sweep: IPC degradation under
//! program-and-verify retries, ECC corrections, uncorrectable data loss,
//! page retirements and lifetime, for baseline vs. LADDER-Est/Hybrid.
//!
//! All schemes face identical raw fault pressure (the model samples against
//! the physical timing table); they differ in what a verify read and a
//! retry pulse cost them.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::{error_rate_sweep, Workload};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    let bers = [1e-4, 1e-3, 5e-3, 2e-2];
    println!("Extension — device fault injection (workload: mix-1)");
    println!(
        "{:<16}{:>9}{:>10}{:>12}{:>13}{:>11}{:>13}{:>9}{:>10}",
        "scheme",
        "raw BER",
        "IPC",
        "vs no-fault",
        "retries/kW",
        "retry/sim",
        "ECC bits",
        "lost",
        "retired"
    );
    for r in error_rate_sweep(&cfg, Workload::Mix("mix-1"), &bers, &runner) {
        println!(
            "{:<16}{:>9.0e}{:>10.3}{:>11.1}%{:>13.2}{:>10.2}%{:>13}{:>9}{:>10}",
            r.scheme.name(),
            r.ber,
            r.ipc,
            r.ipc_vs_fault_free * 100.0,
            r.retries_per_kilowrite,
            r.retry_time_frac * 100.0,
            r.faults.corrected_bits,
            r.faults.uncorrectable_lines,
            r.faults.retired_pages
        );
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
