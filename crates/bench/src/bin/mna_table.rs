//! Validates the analytic timing tables against the exact MNA solver at
//! full crossbar size: generates a coarse (4×4×4) table with both sources
//! and reports per-entry ratios. The analytic source must be conservative
//! (never faster than MNA) without being uselessly pessimistic.
//!
//! This is the expensive end-to-end check of DESIGN.md §2's substitution
//! argument; expect ~0.5–2 minutes of solver time.

use ladder_bench::BenchArgs;
use ladder_sim::experiments::ExperimentConfig;
use ladder_sim::wallclock::Stopwatch;
use ladder_xbar::{SolverKind, TableConfig, TableSource, TimingTable};

fn main() {
    // Table generation parallelizes internally; `--jobs` is accepted (by
    // BenchArgs) for interface uniformity.
    let args = BenchArgs::parse();
    let mut cfg = TableConfig::ladder_default();
    // `--quick` drops to a 2x2x2 table (8 exact solves) for CI smoke runs;
    // the full validation uses 4x4x4.
    let bands = if args.quick { 2 } else { 4 };
    cfg.bands = bands;
    eprintln!("generating {bands}x{bands}x{bands} analytic table ...");
    let ana = TimingTable::generate(&cfg).expect("analytic table");
    eprintln!(
        "generating {bands}x{bands}x{bands} MNA table ({} exact 512x512 solves) ...",
        bands * bands * bands
    );
    cfg.source = TableSource::Mna(SolverKind::LineRelaxation);
    let t0 = Stopwatch::start();
    let mna = TimingTable::generate(&cfg).expect("mna table");
    eprintln!("MNA generation took {:?}", t0.elapsed());

    println!("entry (c,w,b): analytic ns / MNA ns (ratio)");
    let mut worst_ratio: f64 = 0.0;
    let mut conservative = true;
    for c in 0..bands {
        for w in 0..bands {
            for b in 0..bands {
                let a = ana.entry(c, w, b) as f64 / 1000.0;
                let m = mna.entry(c, w, b) as f64 / 1000.0;
                let ratio = a / m;
                worst_ratio = worst_ratio.max(ratio);
                if a < m * 0.98 {
                    conservative = false;
                }
                println!("({c},{w},{b}): {a:>7.1} / {m:>7.1}  ({ratio:.2}x)");
            }
        }
    }
    println!("\nworst analytic/MNA ratio: {worst_ratio:.2}x");
    println!(
        "analytic conservative everywhere: {}",
        if conservative {
            "yes"
        } else {
            "NO — check the estimator"
        }
    );
    // This binary has no simulation of its own; a requested trace runs at
    // smoke scale.
    args.emit_trace_if_requested(&ExperimentConfig::quick());
}
