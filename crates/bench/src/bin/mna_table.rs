//! Validates the analytic timing tables against the exact MNA solver at
//! full crossbar size: generates a coarse (4×4×4) table with both sources
//! and reports per-entry ratios. The analytic source must be conservative
//! (never faster than MNA) without being uselessly pessimistic.
//!
//! This is the expensive end-to-end check of DESIGN.md §2's substitution
//! argument; expect ~0.5–2 minutes of solver time.

use ladder_xbar::{SolverKind, TableConfig, TableSource, TimingTable};

fn main() {
    let mut cfg = TableConfig::ladder_default();
    cfg.bands = 4;
    eprintln!("generating 4x4x4 analytic table ...");
    let ana = TimingTable::generate(&cfg).expect("analytic table");
    eprintln!("generating 4x4x4 MNA table (64 exact 512x512 solves) ...");
    cfg.source = TableSource::Mna(SolverKind::LineRelaxation);
    let t0 = std::time::Instant::now();
    let mna = TimingTable::generate(&cfg).expect("mna table");
    eprintln!("MNA generation took {:?}", t0.elapsed());

    println!("entry (c,w,b): analytic ns / MNA ns (ratio)");
    let mut worst_ratio: f64 = 0.0;
    let mut conservative = true;
    for c in 0..4 {
        for w in 0..4 {
            for b in 0..4 {
                let a = ana.entry(c, w, b) as f64 / 1000.0;
                let m = mna.entry(c, w, b) as f64 / 1000.0;
                let ratio = a / m;
                worst_ratio = worst_ratio.max(ratio);
                if a < m * 0.98 {
                    conservative = false;
                }
                println!("({c},{w},{b}): {a:>7.1} / {m:>7.1}  ({ratio:.2}x)");
            }
        }
    }
    println!("\nworst analytic/MNA ratio: {worst_ratio:.2}x");
    println!(
        "analytic conservative everywhere: {}",
        if conservative { "yes" } else { "NO — check the estimator" }
    );
}
