//! Regenerates Figure 2: normalized IPC of worst-case, location-aware and
//! data/location-aware write schemes on the single-programmed benchmarks.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::fig2;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    println!("Figure 2 — normalized IPC (worst-case = 1.0)");
    println!(
        "{:<8}{:>16}{:>22}",
        "bench", "Location-aware", "Data/Location-aware"
    );
    let rows = fig2(&cfg, &runner);
    let (mut sl, mut sd) = (0.0, 0.0);
    for r in &rows {
        println!(
            "{:<8}{:>16.3}{:>22.3}",
            r.bench, r.location_aware, r.data_location_aware
        );
        sl += r.location_aware;
        sd += r.data_location_aware;
    }
    let n = rows.len() as f64;
    println!("{:<8}{:>16.3}{:>22.3}", "AVG", sl / n, sd / n);
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
