//! Regenerates the Section 7 process-variability study: LADDER-Hybrid's
//! speedup when the device's latency dynamic range shrinks 2×.

use ladder_bench::{config_from_args, emit_trace_if_requested, report_runner, runner_from_args};
use ladder_sim::experiments::{variability, Workload};

fn main() {
    let cfg = config_from_args();
    let runner = runner_from_args();
    for w in [
        Workload::Single("astar"),
        Workload::Single("mcf"),
        Workload::Mix("mix-1"),
    ] {
        let v = variability(&cfg, w, &runner);
        println!(
            "{:<8} speedup full-range {:.3}, shrunk-2x {:.3} -> retains {:.0}% of the gain",
            w.label(),
            v.speedup_full,
            v.speedup_shrunk,
            v.retention * 100.0
        );
    }
    report_runner(&runner);
    emit_trace_if_requested(&cfg);
}
