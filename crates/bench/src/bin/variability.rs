//! Regenerates the Section 7 process-variability study: LADDER-Hybrid's
//! speedup when the device's latency dynamic range shrinks 2×.

use ladder_bench::{report_runner, BenchArgs};
use ladder_sim::experiments::{variability, Workload};

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.cfg.clone();
    let runner = args.runner();
    for w in [
        Workload::Single("astar"),
        Workload::Single("mcf"),
        Workload::Mix("mix-1"),
    ] {
        let v = variability(&cfg, w, &runner);
        println!(
            "{:<8} speedup full-range {:.3}, shrunk-2x {:.3} -> retains {:.0}% of the gain",
            w.label(),
            v.speedup_full,
            v.speedup_shrunk,
            v.retention * 100.0
        );
    }
    report_runner(&runner);
    args.emit_trace_if_requested(&cfg);
}
