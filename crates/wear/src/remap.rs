//! Hot-page remapping to low-latency rows — the extension the paper's
//! related-work section sketches (Section 8: Leader [62], Aliens [51]):
//! "LADDER can potentially incorporate these techniques to further improve
//! its performance".
//!
//! Pages close to the bitline drivers (low wordlines) RESET faster at every
//! content level. The remapper tracks per-page write counts and
//! periodically swaps the hottest unmapped page into a pool of low-row
//! *frames*, so the write-dominant pages enjoy the fastest locations while
//! LADDER continues to supply the content dimension. Swap migrations are
//! surfaced as amortized extra writes, like the other levelers.

use crate::leveling::WearLeveler;
use ladder_reram::{LineAddr, LINES_PER_WLG};
use std::collections::HashMap;

/// Adaptive write-hot page remapper.
///
/// # Examples
///
/// ```
/// use ladder_wear::{HotPageRemapper, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// // Frames at pages 100..110; promote after every 8 writes.
/// let mut r = HotPageRemapper::new((100..110).collect(), 8);
/// let hot = LineAddr::new(5000 * 64);
/// for _ in 0..16 {
///     r.note_write(hot);
/// }
/// // The hot page now lives in a low-row frame (frames hand out from the
/// // back of the pool).
/// assert_eq!(r.map(hot).page(), 109);
/// // And the frame's original page took the hot page's slot.
/// assert_eq!(r.map(LineAddr::new(109 * 64)).page(), 5000);
/// ```
#[derive(Debug)]
pub struct HotPageRemapper {
    /// Low-row frame pages not yet holding a promoted page.
    free_frames: Vec<u64>,
    /// Symmetric page swap table.
    swaps: HashMap<u64, u64>,
    /// Per-page write counts since the last promotion.
    counts: HashMap<u64, u64>,
    writes: u64,
    promote_interval: u64,
    /// Migration writes still to surface (a swap copies two pages).
    pending_migrations: u64,
    /// Promotions performed (for reporting).
    promotions: u64,
}

impl HotPageRemapper {
    /// Creates a remapper with the given low-row frame pages, promoting the
    /// hottest page every `promote_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `promote_interval` is zero.
    pub fn new(frames: Vec<u64>, promote_interval: u64) -> Self {
        assert!(promote_interval > 0, "promotion interval must be nonzero");
        Self {
            free_frames: frames,
            swaps: HashMap::new(),
            counts: HashMap::new(),
            writes: 0,
            promote_interval,
            pending_migrations: 0,
            promotions: 0,
        }
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    fn mapped_page(&self, page: u64) -> u64 {
        self.swaps.get(&page).copied().unwrap_or(page)
    }

    fn promote_hottest(&mut self) {
        let Some(frame) = self.free_frames.pop() else {
            return;
        };
        // Hottest page that is not already promoted and not a frame itself.
        let hottest = self
            .counts
            .iter()
            .filter(|(p, _)| !self.swaps.contains_key(*p) && **p != frame)
            .max_by_key(|(_, c)| **c)
            .map(|(p, _)| *p);
        match hottest {
            Some(page) => {
                self.swaps.insert(page, frame);
                self.swaps.insert(frame, page);
                // Two pages migrate: 2 × 64 lines.
                self.pending_migrations += 2 * LINES_PER_WLG as u64;
                self.promotions += 1;
                // Decay history so the remapper stays adaptive without
                // forgetting sustained heat entirely.
                for c in self.counts.values_mut() {
                    *c /= 2;
                }
            }
            None => self.free_frames.push(frame),
        }
    }
}

impl WearLeveler for HotPageRemapper {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        *self.counts.entry(logical.page()).or_insert(0) += 1;
        if self.writes.is_multiple_of(self.promote_interval) {
            self.promote_hottest();
        }
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "hot-page-remap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_identity_until_promotion() {
        let r = HotPageRemapper::new(vec![10], 100);
        assert_eq!(r.map(LineAddr::new(999 * 64 + 3)), LineAddr::new(999 * 64 + 3));
    }

    #[test]
    fn hottest_page_wins_the_frame() {
        let mut r = HotPageRemapper::new(vec![10], 10);
        for i in 0..9u64 {
            r.note_write(LineAddr::new(500 * 64 + i)); // 9 writes to page 500
        }
        r.note_write(LineAddr::new(600 * 64)); // 1 write to page 600
        assert_eq!(r.promotions(), 1);
        assert_eq!(r.map(LineAddr::new(500 * 64)).page(), 10);
        assert_eq!(r.map(LineAddr::new(10 * 64)).page(), 500);
        // Unrelated pages untouched.
        assert_eq!(r.map(LineAddr::new(600 * 64)).page(), 600);
    }

    #[test]
    fn swaps_remain_a_bijection() {
        let mut r = HotPageRemapper::new(vec![10, 11, 12], 5);
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = 100 + x % 50;
            r.note_write(LineAddr::new(page * 64 + x % 64));
        }
        let mut seen = std::collections::HashSet::new();
        for page in (100..150).chain([10u64, 11, 12]) {
            assert!(seen.insert(r.map(LineAddr::new(page * 64)).page()));
        }
    }

    #[test]
    fn migrations_amortize_after_each_swap() {
        let mut r = HotPageRemapper::new(vec![10], 4);
        let mut migrations = 0;
        for i in 0..300u64 {
            migrations += r.note_write(LineAddr::new(900 * 64 + i % 64)).len();
        }
        // One swap = 128 migration lines surfaced one per write.
        assert_eq!(migrations, 128);
    }

    #[test]
    fn frames_are_finite() {
        let mut r = HotPageRemapper::new(vec![10], 2);
        for i in 0..100u64 {
            r.note_write(LineAddr::new((200 + i % 3) * 64));
        }
        assert_eq!(r.promotions(), 1, "only one frame to hand out");
    }
}
