//! Hot-page remapping to low-latency rows — the extension the paper's
//! related-work section sketches (Section 8: Leader [62], Aliens [51]):
//! "LADDER can potentially incorporate these techniques to further improve
//! its performance".
//!
//! Pages close to the bitline drivers (low wordlines) RESET faster at every
//! content level. The remapper tracks per-page write counts and
//! periodically swaps the hottest unmapped page into a pool of low-row
//! *frames*, so the write-dominant pages enjoy the fastest locations while
//! LADDER continues to supply the content dimension. Swap migrations are
//! surfaced as amortized extra writes, like the other levelers.

use crate::leveling::WearLeveler;
use ladder_reram::{LineAddr, LINES_PER_WLG};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;
use std::sync::PoisonError;

/// Adaptive write-hot page remapper.
///
/// # Examples
///
/// ```
/// use ladder_wear::{HotPageRemapper, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// // Frames at pages 100..110; promote after every 8 writes.
/// let mut r = HotPageRemapper::new((100..110).collect(), 8);
/// let hot = LineAddr::new(5000 * 64);
/// for _ in 0..16 {
///     r.note_write(hot);
/// }
/// // The hot page now lives in a low-row frame (frames hand out from the
/// // back of the pool).
/// assert_eq!(r.map(hot).page(), 109);
/// // And the frame's original page took the hot page's slot.
/// assert_eq!(r.map(LineAddr::new(109 * 64)).page(), 5000);
/// ```
#[derive(Debug)]
pub struct HotPageRemapper {
    /// Low-row frame pages not yet holding a promoted page.
    free_frames: Vec<u64>,
    /// Symmetric page swap table.
    swaps: BTreeMap<u64, u64>,
    /// Per-page write counts since the last promotion.
    counts: BTreeMap<u64, u64>,
    writes: u64,
    promote_interval: u64,
    /// Migration writes still to surface (a swap copies two pages).
    pending_migrations: u64,
    /// Promotions performed (for reporting).
    promotions: u64,
}

impl HotPageRemapper {
    /// Creates a remapper with the given low-row frame pages, promoting the
    /// hottest page every `promote_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `promote_interval` is zero.
    pub fn new(frames: Vec<u64>, promote_interval: u64) -> Self {
        assert!(promote_interval > 0, "promotion interval must be nonzero");
        Self {
            free_frames: frames,
            swaps: BTreeMap::new(),
            counts: BTreeMap::new(),
            writes: 0,
            promote_interval,
            pending_migrations: 0,
            promotions: 0,
        }
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    fn mapped_page(&self, page: u64) -> u64 {
        self.swaps.get(&page).copied().unwrap_or(page)
    }

    fn promote_hottest(&mut self) {
        let Some(frame) = self.free_frames.pop() else {
            return;
        };
        // Hottest page that is not already promoted and not a frame itself.
        let hottest = self
            .counts
            .iter()
            .filter(|(p, _)| !self.swaps.contains_key(*p) && **p != frame)
            .max_by_key(|(_, c)| **c)
            .map(|(p, _)| *p);
        match hottest {
            Some(page) => {
                self.swaps.insert(page, frame);
                self.swaps.insert(frame, page);
                // Two pages migrate: 2 × 64 lines.
                self.pending_migrations += 2 * LINES_PER_WLG as u64;
                self.promotions += 1;
                // Decay history so the remapper stays adaptive without
                // forgetting sustained heat entirely.
                for c in self.counts.values_mut() {
                    *c /= 2;
                }
            }
            None => self.free_frames.push(frame),
        }
    }
}

impl WearLeveler for HotPageRemapper {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        *self.counts.entry(logical.page()).or_insert(0) += 1;
        if self.writes.is_multiple_of(self.promote_interval) {
            self.promote_hottest();
        }
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "hot-page-remap"
    }
}

/// Fault-driven page retirement: a one-way map from worn-out pages to spare
/// frames.
///
/// Unlike [`HotPageRemapper`]'s symmetric swaps, retirement never reuses the
/// retired page — its cells are stuck. The pool hands out spare frames (from
/// the back of the list, like the remapper), and each retirement surfaces a
/// page copy (64 lines) as amortized migration writes.
///
/// # Examples
///
/// ```
/// use ladder_wear::{RetirePool, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// let mut pool = RetirePool::with_spares(vec![200, 201]);
/// assert_eq!(pool.retire(50), Some(true));
/// assert_eq!(pool.retire(50), None, "already retired");
/// // Lines of page 50 now live in spare frame 201.
/// assert_eq!(pool.map(LineAddr::new(50 * 64 + 7)), LineAddr::new(201 * 64 + 7));
/// ```
#[derive(Debug, Default)]
pub struct RetirePool {
    spares: Vec<u64>,
    retired: BTreeMap<u64, u64>,
    /// Copy-out writes still to surface (one page copy per retirement).
    pending_migrations: u64,
    retirements: u64,
    exhausted: u64,
}

impl RetirePool {
    /// Creates a pool handing out the given spare frame pages (from the
    /// back of the list).
    pub fn with_spares(spares: Vec<u64>) -> Self {
        Self {
            spares,
            ..Self::default()
        }
    }

    /// Retires `page` into a spare frame. Returns `Some(true)` on success,
    /// `Some(false)` when no spare is left, and `None` if the page is
    /// already retired (a no-op).
    pub fn retire(&mut self, page: u64) -> Option<bool> {
        if self.retired.contains_key(&page) {
            return None;
        }
        // A still-pooled spare can itself go bad: drop it so it is never
        // handed out as a redirect target — handing it out later would let
        // a chain loop back through it (`p → f`, then `f → p`).
        self.spares.retain(|s| *s != page);
        match self.spares.pop() {
            Some(frame) => {
                self.retired.insert(page, frame);
                self.pending_migrations += LINES_PER_WLG as u64;
                self.retirements += 1;
                Some(true)
            }
            None => {
                self.exhausted += 1;
                Some(false)
            }
        }
    }

    /// Pages retired so far.
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Retire attempts that found the pool empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Spare frames still available.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    fn mapped_page(&self, page: u64) -> u64 {
        let mut p = page;
        // A spare frame can itself wear out and retire; follow the chain.
        // Each hop consumes a distinct spare, so the chain is finite.
        while let Some(&next) = self.retired.get(&p) {
            p = next;
        }
        p
    }
}

impl WearLeveler for RetirePool {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "retire-remap"
    }
}

/// Shared wrapper so the fault model (inside the controller) and the
/// simulator's address path can drive one [`RetirePool`] — the
/// [`crate::SharedWearMap`] idiom.
#[derive(Debug, Clone, Default)]
pub struct SharedRetirePool(std::sync::Arc<std::sync::Mutex<RetirePool>>);

impl SharedRetirePool {
    /// Creates a shared pool with the given spare frame pages.
    pub fn with_spares(spares: Vec<u64>) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(
            RetirePool::with_spares(spares),
        )))
    }

    /// Runs `f` over the underlying pool.
    pub fn with<R>(&self, f: impl FnOnce(&RetirePool) -> R) -> R {
        // Poison recovery: a panic elsewhere is already propagating and
        // per-call mutation keeps the pool consistent.
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// See [`RetirePool::retire`].
    pub fn retire(&self, page: u64) -> Option<bool> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retire(page)
    }

    /// See [`RetirePool::map`] (via [`WearLeveler`]).
    pub fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| p.map(logical))
    }
}

impl WearLeveler for SharedRetirePool {
    fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| WearLeveler::map(p, logical))
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .note_write(logical)
    }

    fn name(&self) -> &'static str {
        "retire-remap"
    }
}

/// Programmable-address-decoder (PAD) swap remapping, after WoLFRaM.
///
/// Where [`RetirePool`] builds one-way redirect chains, the PAD model keeps
/// a true decoder *permutation*: remapping a faulty physical page swaps its
/// logical occupant with the occupant of a spare frame, so every lookup is
/// a single table consult — no chain walking, the hardware analogue of
/// reprogramming address-decoder match entries. Faulty pages stay in the
/// permutation (their reserved occupants point at them) but are never
/// handed out as targets again.
///
/// The same swap primitive doubles as proactive wear leveling: every
/// `swap_interval` writes the hottest still-home page is rotated into a
/// frame and its vacated home page *returns to the pool*, so periodic
/// leveling conserves spare capacity instead of consuming it.
///
/// # Examples
///
/// ```
/// use ladder_wear::{PadRemapper, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// let mut pad = PadRemapper::new(vec![200, 201], 1_000_000);
/// assert_eq!(pad.remap_faulty(50), Some(true));
/// // Traffic to page 50 now lands in frame 201; the decoder swap is
/// // symmetric, so the frame's old slot points back at the dead page.
/// assert_eq!(pad.map(LineAddr::new(50 * 64 + 7)).page(), 201);
/// assert_eq!(pad.remap_faulty(50), None, "already remapped");
/// ```
#[derive(Debug)]
pub struct PadRemapper {
    /// Spare frame pages whose decoder entries are free to swap into.
    free_frames: Vec<u64>,
    /// Decoder permutation, logical page → physical page (identity when
    /// absent) and its inverse. Kept minimal: identity pairs are erased.
    to_phys: BTreeMap<u64, u64>,
    to_logical: BTreeMap<u64, u64>,
    /// Physical pages marked bad; never handed out as swap targets.
    faulty: BTreeSet<u64>,
    /// Per-page write counts driving the periodic wear swap.
    counts: BTreeMap<u64, u64>,
    writes: u64,
    swap_interval: u64,
    /// Migration writes still to surface (swaps copy pages).
    pending_migrations: u64,
    fault_swaps: u64,
    wear_swaps: u64,
    exhausted: u64,
}

impl PadRemapper {
    /// Creates a PAD remapper over the given spare frame pages, rotating
    /// the hottest page into a frame every `swap_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `swap_interval` is zero.
    pub fn new(frames: Vec<u64>, swap_interval: u64) -> Self {
        assert!(swap_interval > 0, "swap interval must be nonzero");
        Self {
            free_frames: frames,
            to_phys: BTreeMap::new(),
            to_logical: BTreeMap::new(),
            faulty: BTreeSet::new(),
            counts: BTreeMap::new(),
            writes: 0,
            swap_interval,
            pending_migrations: 0,
            fault_swaps: 0,
            wear_swaps: 0,
            exhausted: 0,
        }
    }

    /// Fault-driven decoder swaps performed.
    pub fn fault_swaps(&self) -> u64 {
        self.fault_swaps
    }

    /// Periodic wear-leveling swaps performed.
    pub fn wear_swaps(&self) -> u64 {
        self.wear_swaps
    }

    /// Remap attempts that found the frame pool empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Spare frames still available.
    pub fn frames_left(&self) -> usize {
        self.free_frames.len()
    }

    /// Whether `page` has been marked faulty.
    pub fn is_faulty(&self, page: u64) -> bool {
        self.faulty.contains(&page)
    }

    /// The physical page currently serving logical page `page`.
    pub fn frame_of(&self, page: u64) -> u64 {
        self.mapped_page(page)
    }

    fn mapped_page(&self, page: u64) -> u64 {
        self.to_phys.get(&page).copied().unwrap_or(page)
    }

    /// Records `logical → phys` in both directions, erasing identity pairs
    /// so the permutation tables stay minimal.
    fn link(&mut self, logical: u64, phys: u64) {
        if logical == phys {
            self.to_phys.remove(&logical);
            self.to_logical.remove(&phys);
        } else {
            self.to_phys.insert(logical, phys);
            self.to_logical.insert(phys, logical);
        }
    }

    /// Swaps the logical occupants of physical pages `a` and `b` — the PAD
    /// primitive: two decoder entries exchange their match addresses.
    fn swap_physical(&mut self, a: u64, b: u64) {
        if a == b {
            return;
        }
        let la = self.to_logical.get(&a).copied().unwrap_or(a);
        let lb = self.to_logical.get(&b).copied().unwrap_or(b);
        self.link(la, b);
        self.link(lb, a);
    }

    /// Swaps the faulty physical page `phys` out for a spare frame.
    /// Returns `Some(true)` on success, `Some(false)` when no frame is
    /// left, and `None` if the page is already marked faulty (a no-op) —
    /// the same contract as [`RetirePool::retire`].
    pub fn remap_faulty(&mut self, phys: u64) -> Option<bool> {
        if self.faulty.contains(&phys) {
            return None;
        }
        // A never-used frame can itself go bad; drop it from the pool so
        // it is never handed out as a target.
        self.free_frames.retain(|f| *f != phys);
        match self.free_frames.pop() {
            Some(frame) => {
                self.faulty.insert(phys);
                self.swap_physical(phys, frame);
                // One page of live data copies out of the dying page.
                self.pending_migrations += LINES_PER_WLG as u64;
                self.fault_swaps += 1;
                Some(true)
            }
            None => {
                self.exhausted += 1;
                Some(false)
            }
        }
    }

    /// Rotates the hottest still-home page into a frame. The vacated home
    /// page returns to the pool, so wear swaps conserve spare capacity.
    fn swap_hottest(&mut self) {
        let Some(frame) = self.free_frames.pop() else {
            return;
        };
        let hottest = self
            .counts
            .iter()
            .filter(|(p, _)| {
                !self.to_phys.contains_key(*p) && !self.faulty.contains(*p) && **p != frame
            })
            .max_by_key(|(_, c)| **c)
            .map(|(p, _)| *p);
        match hottest {
            Some(page) => {
                // `page` is still at home, so its home slot is what the
                // swap vacates; only reserved frame occupants ever sit in
                // pool pages, so returning it keeps the pool safe to hand
                // out for later fault swaps.
                self.swap_physical(page, frame);
                self.free_frames.push(page);
                self.pending_migrations += 2 * LINES_PER_WLG as u64;
                self.wear_swaps += 1;
                for c in self.counts.values_mut() {
                    *c /= 2;
                }
            }
            None => self.free_frames.push(frame),
        }
    }
}

impl WearLeveler for PadRemapper {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        *self.counts.entry(logical.page()).or_insert(0) += 1;
        if self.writes.is_multiple_of(self.swap_interval) {
            self.swap_hottest();
        }
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "pad-remap"
    }
}

/// Shared wrapper so the fault model and the simulator's address path can
/// drive one [`PadRemapper`] — the [`SharedRetirePool`] idiom.
#[derive(Debug, Clone)]
pub struct SharedPadRemapper(std::sync::Arc<std::sync::Mutex<PadRemapper>>);

impl SharedPadRemapper {
    /// Creates a shared PAD remapper; see [`PadRemapper::new`].
    pub fn new(frames: Vec<u64>, swap_interval: u64) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(
            PadRemapper::new(frames, swap_interval),
        )))
    }

    /// Runs `f` over the underlying remapper.
    pub fn with<R>(&self, f: impl FnOnce(&PadRemapper) -> R) -> R {
        // Poison recovery: a panic elsewhere is already propagating and
        // per-call mutation keeps the permutation consistent.
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// See [`PadRemapper::remap_faulty`].
    pub fn remap_faulty(&self, phys: u64) -> Option<bool> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remap_faulty(phys)
    }

    /// See [`PadRemapper::map`] (via [`WearLeveler`]).
    pub fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| WearLeveler::map(p, logical))
    }

    /// See [`PadRemapper::frame_of`].
    pub fn frame_of(&self, page: u64) -> u64 {
        self.with(|p| p.frame_of(page))
    }
}

impl WearLeveler for SharedPadRemapper {
    fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| WearLeveler::map(p, logical))
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .note_write(logical)
    }

    fn name(&self) -> &'static str {
        "pad-remap"
    }
}

/// The fault-remapping backend a simulated module runs: chained retirement
/// or PAD decoder swaps. Both sides of the kernel (the address path and the
/// fault model inside the controller) hold clones of the same backend.
#[derive(Debug, Clone)]
pub enum RemapBackend {
    /// One-way retirement chains ([`RetirePool`]).
    Retire(SharedRetirePool),
    /// WoLFRaM-style decoder-permutation swaps ([`PadRemapper`]).
    Pad(SharedPadRemapper),
}

impl RemapBackend {
    /// Resolves `logical` through the backend's current mapping.
    pub fn map(&self, logical: LineAddr) -> LineAddr {
        match self {
            Self::Retire(pool) => pool.map(logical),
            Self::Pad(pad) => pad.map(logical),
        }
    }

    /// Surfaces amortized migration writes; see [`WearLeveler::note_write`].
    pub fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        match self {
            Self::Retire(pool) => pool.note_write(logical),
            Self::Pad(pad) => pad.note_write(logical),
        }
    }

    /// Moves the faulty physical page `page` out of service. Same contract
    /// as [`RetirePool::retire`] / [`PadRemapper::remap_faulty`].
    pub fn on_fault(&self, page: u64) -> Option<bool> {
        match self {
            Self::Retire(pool) => pool.retire(page),
            Self::Pad(pad) => pad.remap_faulty(page),
        }
    }

    /// The physical page currently serving `page`'s traffic (for trace
    /// records after an [`Self::on_fault`]).
    pub fn frame_of(&self, page: u64) -> u64 {
        match self {
            Self::Retire(pool) => pool.map(LineAddr::new(page * LINES_PER_WLG as u64)).page(),
            Self::Pad(pad) => pad.frame_of(page),
        }
    }

    /// Backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Retire(_) => "retire-remap",
            Self::Pad(_) => "pad-remap",
        }
    }
}

/// Which remap backend a run builds — the config-level selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapKind {
    /// One-way retirement chains into a spare pool (the legacy default).
    Retire,
    /// PAD decoder-swap remapping with periodic wear rotation.
    Pad,
}

impl RemapKind {
    /// Every backend, in sweep order.
    pub const ALL: [RemapKind; 2] = [RemapKind::Retire, RemapKind::Pad];

    /// Stable name used in configs, CSV columns, and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Retire => "retire",
            Self::Pad => "pad",
        }
    }
}

impl fmt::Display for RemapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RemapKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "retire" | "retire-remap" => Ok(Self::Retire),
            "pad" | "pad-remap" => Ok(Self::Pad),
            other => Err(format!("unknown remap backend `{other}` (retire|pad)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mapping_is_identity_until_promotion() {
        let r = HotPageRemapper::new(vec![10], 100);
        assert_eq!(
            r.map(LineAddr::new(999 * 64 + 3)),
            LineAddr::new(999 * 64 + 3)
        );
    }

    #[test]
    fn hottest_page_wins_the_frame() {
        let mut r = HotPageRemapper::new(vec![10], 10);
        for i in 0..9u64 {
            r.note_write(LineAddr::new(500 * 64 + i)); // 9 writes to page 500
        }
        r.note_write(LineAddr::new(600 * 64)); // 1 write to page 600
        assert_eq!(r.promotions(), 1);
        assert_eq!(r.map(LineAddr::new(500 * 64)).page(), 10);
        assert_eq!(r.map(LineAddr::new(10 * 64)).page(), 500);
        // Unrelated pages untouched.
        assert_eq!(r.map(LineAddr::new(600 * 64)).page(), 600);
    }

    #[test]
    fn swaps_remain_a_bijection() {
        let mut r = HotPageRemapper::new(vec![10, 11, 12], 5);
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = 100 + x % 50;
            r.note_write(LineAddr::new(page * 64 + x % 64));
        }
        let mut seen = std::collections::HashSet::new();
        for page in (100..150).chain([10u64, 11, 12]) {
            assert!(seen.insert(r.map(LineAddr::new(page * 64)).page()));
        }
    }

    #[test]
    fn migrations_amortize_after_each_swap() {
        let mut r = HotPageRemapper::new(vec![10], 4);
        let mut migrations = 0;
        for i in 0..300u64 {
            migrations += r.note_write(LineAddr::new(900 * 64 + i % 64)).len();
        }
        // One swap = 128 migration lines surfaced one per write.
        assert_eq!(migrations, 128);
    }

    #[test]
    fn frames_are_finite() {
        let mut r = HotPageRemapper::new(vec![10], 2);
        for i in 0..100u64 {
            r.note_write(LineAddr::new((200 + i % 3) * 64));
        }
        assert_eq!(r.promotions(), 1, "only one frame to hand out");
    }

    #[test]
    fn retirement_is_one_way_and_bounded() {
        let mut pool = RetirePool::with_spares(vec![300, 301]);
        assert_eq!(pool.retire(10), Some(true));
        assert_eq!(pool.retire(11), Some(true));
        assert_eq!(pool.retire(12), Some(false), "pool exhausted");
        assert_eq!(pool.retire(10), None, "idempotent");
        assert_eq!(pool.retirements(), 2);
        assert_eq!(pool.exhausted(), 1);
        assert_eq!(pool.spares_left(), 0);
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 301);
        assert_eq!(pool.map(LineAddr::new(11 * 64)).page(), 300);
        // Un-retired pages map to themselves, including the failed one.
        assert_eq!(pool.map(LineAddr::new(12 * 64)).page(), 12);
    }

    #[test]
    fn retired_spare_chains_to_its_replacement() {
        let mut pool = RetirePool::with_spares(vec![300, 301]);
        assert_eq!(pool.retire(10), Some(true)); // 10 → 301
        assert_eq!(pool.retire(301), Some(true)); // 301 → 300
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 300);
    }

    #[test]
    fn retirement_surfaces_one_page_of_migrations() {
        let mut pool = RetirePool::with_spares(vec![300]);
        pool.retire(10);
        let mut migrations = 0;
        for i in 0..200u64 {
            migrations += pool.note_write(LineAddr::new(10 * 64 + i % 64)).len();
        }
        assert_eq!(migrations, LINES_PER_WLG);
    }

    #[test]
    fn shared_pool_is_seen_by_all_clones() {
        let pool = SharedRetirePool::with_spares(vec![400]);
        let clone = pool.clone();
        assert_eq!(pool.retire(77), Some(true));
        assert_eq!(clone.map(LineAddr::new(77 * 64)).page(), 400);
        assert_eq!(clone.with(|p| p.retirements()), 1);
    }

    #[test]
    fn resolve_follows_multi_hop_chains() {
        let mut pool = RetirePool::with_spares(vec![300, 301, 302]);
        assert_eq!(pool.retire(10), Some(true)); // 10 → 302
        assert_eq!(pool.retire(302), Some(true)); // 302 → 301
        assert_eq!(pool.retire(301), Some(true)); // 301 → 300
        assert_eq!(pool.map(LineAddr::new(10 * 64 + 5)).page(), 300);
        // Intermediate hops resolve to the same terminus.
        assert_eq!(pool.map(LineAddr::new(302 * 64)).page(), 300);
        assert_eq!(pool.map(LineAddr::new(301 * 64)).page(), 300);
    }

    #[test]
    fn exhausted_pool_keeps_serving_existing_chains() {
        let mut pool = RetirePool::with_spares(vec![300]);
        assert_eq!(pool.retire(10), Some(true)); // 10 → 300
                                                 // The spare itself dies with the pool empty: the retire fails but
                                                 // the existing redirect must keep working.
        assert_eq!(pool.retire(300), Some(false));
        assert_eq!(pool.retire(300), Some(false), "still not retired");
        assert_eq!(pool.exhausted(), 2);
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 300);
    }

    #[test]
    fn double_retire_leaves_state_untouched() {
        let mut pool = RetirePool::with_spares(vec![300, 301]);
        assert_eq!(pool.retire(10), Some(true));
        let before = (pool.retirements(), pool.exhausted(), pool.spares_left());
        assert_eq!(pool.retire(10), None);
        assert_eq!(
            (pool.retirements(), pool.exhausted(), pool.spares_left()),
            before
        );
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 301);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `resolve` (chain-following `map`) always terminates at a
        /// fixpoint: the retirement map stays acyclic for arbitrary retire
        /// sequences, including retiring handed-out spares.
        #[test]
        fn retire_resolve_is_acyclic(pages in proptest::collection::vec(0u64..120, 1..48)) {
            let mut pool = RetirePool::with_spares((100u64..116).collect());
            // Mirror of the documented semantics: spares hand out from the
            // back, one per successful retire, idempotent per page.
            let mut spares: Vec<u64> = (100u64..116).collect();
            let mut mirror = BTreeMap::new();
            for &p in &pages {
                if mirror.contains_key(&p) {
                    prop_assert_eq!(pool.retire(p), None);
                    continue;
                }
                spares.retain(|s| *s != p);
                if let Some(frame) = spares.pop() {
                    prop_assert_eq!(pool.retire(p), Some(true));
                    mirror.insert(p, frame);
                } else {
                    prop_assert_eq!(pool.retire(p), Some(false));
                }
            }
            for p in 0..130u64 {
                // Bounded walk of the mirror: a cycle would exceed the
                // spare count, failing instead of hanging.
                let mut cur = p;
                let mut hops = 0;
                while let Some(&next) = mirror.get(&cur) {
                    cur = next;
                    hops += 1;
                    prop_assert!(hops <= 16, "cycle reached from page {}", p);
                }
                prop_assert_eq!(pool.map(LineAddr::new(p * 64)).page(), cur);
            }
        }
    }

    #[test]
    fn pad_is_identity_until_a_fault() {
        let pad = PadRemapper::new(vec![200, 201], 1_000);
        assert_eq!(
            pad.map(LineAddr::new(50 * 64 + 3)),
            LineAddr::new(50 * 64 + 3)
        );
        assert_eq!(pad.frame_of(50), 50);
    }

    #[test]
    fn pad_fault_swap_is_a_decoder_permutation() {
        let mut pad = PadRemapper::new(vec![200, 201], 1_000);
        assert_eq!(pad.remap_faulty(50), Some(true));
        // Logical 50 now decodes to frame 201; the displaced reserved
        // entry points back at the dead page — a swap, not a chain.
        assert_eq!(pad.map(LineAddr::new(50 * 64 + 9)).page(), 201);
        assert_eq!(pad.map(LineAddr::new(201 * 64)).page(), 50);
        assert_eq!(pad.remap_faulty(50), None, "idempotent");
        assert!(pad.is_faulty(50));
        assert_eq!(pad.fault_swaps(), 1);
        assert_eq!(pad.frames_left(), 1);
    }

    #[test]
    fn pad_chained_faults_stay_single_lookup() {
        let mut pad = PadRemapper::new(vec![200, 201], 1_000);
        assert_eq!(pad.remap_faulty(50), Some(true)); // 50 → 201
                                                      // The replacement frame dies too; the permutation re-points
                                                      // logical 50 directly at the next frame.
        assert_eq!(pad.remap_faulty(201), Some(true));
        assert_eq!(pad.frame_of(50), 200);
        assert_eq!(pad.map(LineAddr::new(50 * 64 + 1)).page(), 200);
    }

    #[test]
    fn pad_exhaustion_mirrors_retire_pool() {
        let mut pad = PadRemapper::new(vec![200], 1_000);
        assert_eq!(pad.remap_faulty(10), Some(true));
        assert_eq!(pad.remap_faulty(11), Some(false), "pool exhausted");
        assert_eq!(pad.remap_faulty(11), Some(false), "still not remapped");
        assert_eq!(pad.exhausted(), 2);
        assert!(!pad.is_faulty(11));
        assert_eq!(pad.map(LineAddr::new(11 * 64)).page(), 11);
    }

    #[test]
    fn pad_never_hands_out_a_dead_idle_frame() {
        let mut pad = PadRemapper::new(vec![200, 201], 1_000);
        // An idle frame goes bad before ever being used: it must leave the
        // pool, not be handed to the next fault.
        assert_eq!(pad.remap_faulty(201), Some(true));
        assert_eq!(pad.frames_left(), 0, "201 dropped, 200 consumed");
        assert_eq!(pad.frame_of(201), 200);
    }

    #[test]
    fn pad_fault_swap_surfaces_one_page_of_migrations() {
        let mut pad = PadRemapper::new(vec![200], 1_000_000);
        pad.remap_faulty(10);
        let mut migrations = 0;
        for i in 0..200u64 {
            migrations += pad.note_write(LineAddr::new(10 * 64 + i % 64)).len();
        }
        assert_eq!(migrations, LINES_PER_WLG);
    }

    #[test]
    fn pad_wear_swap_conserves_the_pool() {
        let mut pad = PadRemapper::new(vec![200, 201], 8);
        for i in 0..8u64 {
            pad.note_write(LineAddr::new(5 * 64 + i));
        }
        assert_eq!(pad.wear_swaps(), 1);
        // Hot page 5 rotated into frame 201; its vacated home page
        // returned to the pool, so spare capacity is conserved.
        assert_eq!(pad.map(LineAddr::new(5 * 64)).page(), 201);
        assert_eq!(pad.frames_left(), 2);
        // The returned page is safe to hand to a later fault: only the
        // reserved frame occupant sits there.
        assert_eq!(pad.remap_faulty(40), Some(true));
        assert_eq!(pad.frame_of(40), 5);
        assert_eq!(pad.map(LineAddr::new(40 * 64)).page(), 5);
        // Hot traffic still lands in its frame.
        assert_eq!(pad.map(LineAddr::new(5 * 64)).page(), 201);
    }

    #[test]
    fn pad_permutation_stays_a_bijection() {
        let mut pad = PadRemapper::new(vec![200, 201, 202], 5);
        let mut x = 7u64;
        for i in 0..400u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = 100 + x % 50;
            pad.note_write(LineAddr::new(page * 64 + x % 64));
            if i % 97 == 0 {
                pad.remap_faulty(page);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for page in (100..150).chain([200u64, 201, 202]) {
            assert!(seen.insert(pad.map(LineAddr::new(page * 64)).page()));
        }
    }

    #[test]
    fn shared_pad_is_seen_by_all_clones() {
        let pad = SharedPadRemapper::new(vec![400], 1_000);
        let clone = pad.clone();
        assert_eq!(pad.remap_faulty(77), Some(true));
        assert_eq!(clone.map(LineAddr::new(77 * 64)).page(), 400);
        assert_eq!(clone.with(|p| p.fault_swaps()), 1);
    }

    #[test]
    fn backend_dispatch_covers_both_kinds() {
        let mut retire = RemapBackend::Retire(SharedRetirePool::with_spares(vec![300]));
        let mut pad = RemapBackend::Pad(SharedPadRemapper::new(vec![300], 1_000));
        for backend in [&mut retire, &mut pad] {
            assert_eq!(backend.on_fault(10), Some(true));
            assert_eq!(backend.frame_of(10), 300);
            assert_eq!(backend.map(LineAddr::new(10 * 64 + 2)).page(), 300);
            assert_eq!(backend.note_write(LineAddr::new(10 * 64)).len(), 1);
        }
        assert_eq!(retire.name(), "retire-remap");
        assert_eq!(pad.name(), "pad-remap");
    }

    #[test]
    fn remap_kind_round_trips_names() {
        for kind in RemapKind::ALL {
            assert_eq!(kind.name().parse::<RemapKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!("pad-remap".parse::<RemapKind>().unwrap(), RemapKind::Pad);
        assert!("bogus".parse::<RemapKind>().is_err());
    }
}
