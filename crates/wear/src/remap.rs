//! Hot-page remapping to low-latency rows — the extension the paper's
//! related-work section sketches (Section 8: Leader [62], Aliens [51]):
//! "LADDER can potentially incorporate these techniques to further improve
//! its performance".
//!
//! Pages close to the bitline drivers (low wordlines) RESET faster at every
//! content level. The remapper tracks per-page write counts and
//! periodically swaps the hottest unmapped page into a pool of low-row
//! *frames*, so the write-dominant pages enjoy the fastest locations while
//! LADDER continues to supply the content dimension. Swap migrations are
//! surfaced as amortized extra writes, like the other levelers.

use crate::leveling::WearLeveler;
use ladder_reram::{LineAddr, LINES_PER_WLG};
use std::collections::BTreeMap;
use std::sync::PoisonError;

/// Adaptive write-hot page remapper.
///
/// # Examples
///
/// ```
/// use ladder_wear::{HotPageRemapper, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// // Frames at pages 100..110; promote after every 8 writes.
/// let mut r = HotPageRemapper::new((100..110).collect(), 8);
/// let hot = LineAddr::new(5000 * 64);
/// for _ in 0..16 {
///     r.note_write(hot);
/// }
/// // The hot page now lives in a low-row frame (frames hand out from the
/// // back of the pool).
/// assert_eq!(r.map(hot).page(), 109);
/// // And the frame's original page took the hot page's slot.
/// assert_eq!(r.map(LineAddr::new(109 * 64)).page(), 5000);
/// ```
#[derive(Debug)]
pub struct HotPageRemapper {
    /// Low-row frame pages not yet holding a promoted page.
    free_frames: Vec<u64>,
    /// Symmetric page swap table.
    swaps: BTreeMap<u64, u64>,
    /// Per-page write counts since the last promotion.
    counts: BTreeMap<u64, u64>,
    writes: u64,
    promote_interval: u64,
    /// Migration writes still to surface (a swap copies two pages).
    pending_migrations: u64,
    /// Promotions performed (for reporting).
    promotions: u64,
}

impl HotPageRemapper {
    /// Creates a remapper with the given low-row frame pages, promoting the
    /// hottest page every `promote_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `promote_interval` is zero.
    pub fn new(frames: Vec<u64>, promote_interval: u64) -> Self {
        assert!(promote_interval > 0, "promotion interval must be nonzero");
        Self {
            free_frames: frames,
            swaps: BTreeMap::new(),
            counts: BTreeMap::new(),
            writes: 0,
            promote_interval,
            pending_migrations: 0,
            promotions: 0,
        }
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    fn mapped_page(&self, page: u64) -> u64 {
        self.swaps.get(&page).copied().unwrap_or(page)
    }

    fn promote_hottest(&mut self) {
        let Some(frame) = self.free_frames.pop() else {
            return;
        };
        // Hottest page that is not already promoted and not a frame itself.
        let hottest = self
            .counts
            .iter()
            .filter(|(p, _)| !self.swaps.contains_key(*p) && **p != frame)
            .max_by_key(|(_, c)| **c)
            .map(|(p, _)| *p);
        match hottest {
            Some(page) => {
                self.swaps.insert(page, frame);
                self.swaps.insert(frame, page);
                // Two pages migrate: 2 × 64 lines.
                self.pending_migrations += 2 * LINES_PER_WLG as u64;
                self.promotions += 1;
                // Decay history so the remapper stays adaptive without
                // forgetting sustained heat entirely.
                for c in self.counts.values_mut() {
                    *c /= 2;
                }
            }
            None => self.free_frames.push(frame),
        }
    }
}

impl WearLeveler for HotPageRemapper {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        *self.counts.entry(logical.page()).or_insert(0) += 1;
        if self.writes.is_multiple_of(self.promote_interval) {
            self.promote_hottest();
        }
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "hot-page-remap"
    }
}

/// Fault-driven page retirement: a one-way map from worn-out pages to spare
/// frames.
///
/// Unlike [`HotPageRemapper`]'s symmetric swaps, retirement never reuses the
/// retired page — its cells are stuck. The pool hands out spare frames (from
/// the back of the list, like the remapper), and each retirement surfaces a
/// page copy (64 lines) as amortized migration writes.
///
/// # Examples
///
/// ```
/// use ladder_wear::{RetirePool, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// let mut pool = RetirePool::with_spares(vec![200, 201]);
/// assert_eq!(pool.retire(50), Some(true));
/// assert_eq!(pool.retire(50), None, "already retired");
/// // Lines of page 50 now live in spare frame 201.
/// assert_eq!(pool.map(LineAddr::new(50 * 64 + 7)), LineAddr::new(201 * 64 + 7));
/// ```
#[derive(Debug, Default)]
pub struct RetirePool {
    spares: Vec<u64>,
    retired: BTreeMap<u64, u64>,
    /// Copy-out writes still to surface (one page copy per retirement).
    pending_migrations: u64,
    retirements: u64,
    exhausted: u64,
}

impl RetirePool {
    /// Creates a pool handing out the given spare frame pages (from the
    /// back of the list).
    pub fn with_spares(spares: Vec<u64>) -> Self {
        Self {
            spares,
            ..Self::default()
        }
    }

    /// Retires `page` into a spare frame. Returns `Some(true)` on success,
    /// `Some(false)` when no spare is left, and `None` if the page is
    /// already retired (a no-op).
    pub fn retire(&mut self, page: u64) -> Option<bool> {
        if self.retired.contains_key(&page) {
            return None;
        }
        match self.spares.pop() {
            Some(frame) => {
                self.retired.insert(page, frame);
                self.pending_migrations += LINES_PER_WLG as u64;
                self.retirements += 1;
                Some(true)
            }
            None => {
                self.exhausted += 1;
                Some(false)
            }
        }
    }

    /// Pages retired so far.
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Retire attempts that found the pool empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Spare frames still available.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    fn mapped_page(&self, page: u64) -> u64 {
        let mut p = page;
        // A spare frame can itself wear out and retire; follow the chain.
        // Each hop consumes a distinct spare, so the chain is finite.
        while let Some(&next) = self.retired.get(&p) {
            p = next;
        }
        p
    }
}

impl WearLeveler for RetirePool {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let page = self.mapped_page(logical.page());
        LineAddr::new(page * LINES_PER_WLG as u64 + logical.block_slot() as u64)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "retire-remap"
    }
}

/// Shared wrapper so the fault model (inside the controller) and the
/// simulator's address path can drive one [`RetirePool`] — the
/// [`crate::SharedWearMap`] idiom.
#[derive(Debug, Clone, Default)]
pub struct SharedRetirePool(std::sync::Arc<std::sync::Mutex<RetirePool>>);

impl SharedRetirePool {
    /// Creates a shared pool with the given spare frame pages.
    pub fn with_spares(spares: Vec<u64>) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(
            RetirePool::with_spares(spares),
        )))
    }

    /// Runs `f` over the underlying pool.
    pub fn with<R>(&self, f: impl FnOnce(&RetirePool) -> R) -> R {
        // Poison recovery: a panic elsewhere is already propagating and
        // per-call mutation keeps the pool consistent.
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// See [`RetirePool::retire`].
    pub fn retire(&self, page: u64) -> Option<bool> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retire(page)
    }

    /// See [`RetirePool::map`] (via [`WearLeveler`]).
    pub fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| p.map(logical))
    }
}

impl WearLeveler for SharedRetirePool {
    fn map(&self, logical: LineAddr) -> LineAddr {
        self.with(|p| WearLeveler::map(p, logical))
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .note_write(logical)
    }

    fn name(&self) -> &'static str {
        "retire-remap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_identity_until_promotion() {
        let r = HotPageRemapper::new(vec![10], 100);
        assert_eq!(
            r.map(LineAddr::new(999 * 64 + 3)),
            LineAddr::new(999 * 64 + 3)
        );
    }

    #[test]
    fn hottest_page_wins_the_frame() {
        let mut r = HotPageRemapper::new(vec![10], 10);
        for i in 0..9u64 {
            r.note_write(LineAddr::new(500 * 64 + i)); // 9 writes to page 500
        }
        r.note_write(LineAddr::new(600 * 64)); // 1 write to page 600
        assert_eq!(r.promotions(), 1);
        assert_eq!(r.map(LineAddr::new(500 * 64)).page(), 10);
        assert_eq!(r.map(LineAddr::new(10 * 64)).page(), 500);
        // Unrelated pages untouched.
        assert_eq!(r.map(LineAddr::new(600 * 64)).page(), 600);
    }

    #[test]
    fn swaps_remain_a_bijection() {
        let mut r = HotPageRemapper::new(vec![10, 11, 12], 5);
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = 100 + x % 50;
            r.note_write(LineAddr::new(page * 64 + x % 64));
        }
        let mut seen = std::collections::HashSet::new();
        for page in (100..150).chain([10u64, 11, 12]) {
            assert!(seen.insert(r.map(LineAddr::new(page * 64)).page()));
        }
    }

    #[test]
    fn migrations_amortize_after_each_swap() {
        let mut r = HotPageRemapper::new(vec![10], 4);
        let mut migrations = 0;
        for i in 0..300u64 {
            migrations += r.note_write(LineAddr::new(900 * 64 + i % 64)).len();
        }
        // One swap = 128 migration lines surfaced one per write.
        assert_eq!(migrations, 128);
    }

    #[test]
    fn frames_are_finite() {
        let mut r = HotPageRemapper::new(vec![10], 2);
        for i in 0..100u64 {
            r.note_write(LineAddr::new((200 + i % 3) * 64));
        }
        assert_eq!(r.promotions(), 1, "only one frame to hand out");
    }

    #[test]
    fn retirement_is_one_way_and_bounded() {
        let mut pool = RetirePool::with_spares(vec![300, 301]);
        assert_eq!(pool.retire(10), Some(true));
        assert_eq!(pool.retire(11), Some(true));
        assert_eq!(pool.retire(12), Some(false), "pool exhausted");
        assert_eq!(pool.retire(10), None, "idempotent");
        assert_eq!(pool.retirements(), 2);
        assert_eq!(pool.exhausted(), 1);
        assert_eq!(pool.spares_left(), 0);
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 301);
        assert_eq!(pool.map(LineAddr::new(11 * 64)).page(), 300);
        // Un-retired pages map to themselves, including the failed one.
        assert_eq!(pool.map(LineAddr::new(12 * 64)).page(), 12);
    }

    #[test]
    fn retired_spare_chains_to_its_replacement() {
        let mut pool = RetirePool::with_spares(vec![300, 301]);
        assert_eq!(pool.retire(10), Some(true)); // 10 → 301
        assert_eq!(pool.retire(301), Some(true)); // 301 → 300
        assert_eq!(pool.map(LineAddr::new(10 * 64)).page(), 300);
    }

    #[test]
    fn retirement_surfaces_one_page_of_migrations() {
        let mut pool = RetirePool::with_spares(vec![300]);
        pool.retire(10);
        let mut migrations = 0;
        for i in 0..200u64 {
            migrations += pool.note_write(LineAddr::new(10 * 64 + i % 64)).len();
        }
        assert_eq!(migrations, LINES_PER_WLG);
    }

    #[test]
    fn shared_pool_is_seen_by_all_clones() {
        let pool = SharedRetirePool::with_spares(vec![400]);
        let clone = pool.clone();
        assert_eq!(pool.retire(77), Some(true));
        assert_eq!(clone.map(LineAddr::new(77 * 64)).page(), 400);
        assert_eq!(clone.with(|p| p.retirements()), 1);
    }
}
