//! Endurance tracking and lifetime estimation (paper Section 6.4).
//!
//! Lifetime is analysed on the worst-stressed line: the device fails when
//! the most-written cells exhaust their endurance, so lifetime scales with
//! `endurance / worst-line write rate`. Wear-leveling raises lifetime by
//! flattening the write distribution; LADDER lowers it only through its
//! (small) extra metadata write traffic.

use ladder_memctrl::AccessObserver;
use ladder_reram::{Instant, LineAddr, Picos};
use std::collections::BTreeMap;
use std::sync::PoisonError;

/// Per-line write-count tracker; plugs into the controller as an
/// [`AccessObserver`].
///
/// # Examples
///
/// ```
/// use ladder_memctrl::AccessObserver;
/// use ladder_reram::{Instant, LineAddr, Picos};
/// use ladder_wear::WearMap;
///
/// let mut w = WearMap::new();
/// for _ in 0..10 {
///     w.on_write(LineAddr::new(5), 100, 100);
/// }
/// w.on_write(LineAddr::new(6), 100, 100);
/// assert_eq!(w.worst_line_writes(), 10);
/// assert_eq!(w.total_writes(), 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WearMap {
    counts: BTreeMap<u64, u64>,
}

impl WearMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highest write count on any single line.
    pub fn worst_line_writes(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Total writes observed.
    pub fn total_writes(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Lines ever written.
    pub fn lines_touched(&self) -> usize {
        self.counts.len()
    }

    /// Writes observed on one specific line.
    pub fn line_writes(&self, addr: LineAddr) -> u64 {
        self.counts.get(&addr.raw()).copied().unwrap_or(0)
    }

    /// Coefficient of unevenness: worst-line writes over the mean. 1.0
    /// means perfectly level wear.
    pub fn unevenness(&self) -> f64 {
        if self.counts.is_empty() {
            return 1.0;
        }
        let mean = self.total_writes() as f64 / self.counts.len() as f64;
        self.worst_line_writes() as f64 / mean
    }

    /// Estimated device lifetime in seconds, given per-cell `endurance`
    /// cycles and the simulated duration the counts were collected over.
    ///
    /// The worst line's write *rate* is extrapolated: lifetime =
    /// `endurance / rate`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn lifetime_seconds(&self, endurance: u64, elapsed: Picos) -> f64 {
        assert!(elapsed > Picos::ZERO, "elapsed time must be positive");
        let worst = self.worst_line_writes();
        if worst == 0 {
            return f64::INFINITY;
        }
        let rate_per_s = worst as f64 / (elapsed.as_ps() as f64 * 1e-12);
        endurance as f64 / rate_per_s
    }

    /// Convenience: observe a batch of `n` writes to the same line.
    pub fn record(&mut self, addr: LineAddr, n: u64) {
        *self.counts.entry(addr.raw()).or_insert(0) += n;
    }
}

impl AccessObserver for WearMap {
    fn on_write(&mut self, addr: LineAddr, _bits_set: u32, _bits_reset: u32) {
        self.record(addr, 1);
    }
}

/// Shared wrapper so the simulator can keep reading a map that the
/// controller owns as its observer.
#[derive(Debug, Clone, Default)]
pub struct SharedWearMap(std::sync::Arc<std::sync::Mutex<WearMap>>);

impl SharedWearMap {
    /// Creates an empty shared map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` over the underlying map.
    pub fn with<R>(&self, f: impl FnOnce(&WearMap) -> R) -> R {
        // Poison recovery: a panic elsewhere is already propagating and
        // per-call mutation keeps the map consistent.
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl AccessObserver for SharedWearMap {
    fn on_write(&mut self, addr: LineAddr, bits_set: u32, bits_reset: u32) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .on_write(addr, bits_set, bits_reset);
    }
}

/// Lifetime of one scheme relative to a baseline, from their wear maps and
/// simulated durations.
pub fn relative_lifetime(
    baseline: (&WearMap, Instant),
    scheme: (&WearMap, Instant),
    endurance: u64,
) -> f64 {
    let base = baseline
        .0
        .lifetime_seconds(endurance, baseline.1.duration_since(Instant::ZERO));
    let s = scheme
        .0
        .lifetime_seconds(endurance, scheme.1.duration_since(Instant::ZERO));
    s / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_scales_inversely_with_worst_rate() {
        let mut even = WearMap::new();
        let mut skewed = WearMap::new();
        for i in 0..100u64 {
            even.record(LineAddr::new(i), 10);
        }
        skewed.record(LineAddr::new(0), 500);
        skewed.record(LineAddr::new(1), 500);
        let t = Picos::from_ns(1e9);
        let le = even.lifetime_seconds(1_000_000, t);
        let ls = skewed.lifetime_seconds(1_000_000, t);
        assert!(
            (le / ls - 50.0).abs() < 1e-9,
            "50× worse hot line → 50× shorter"
        );
    }

    #[test]
    fn unevenness_of_flat_distribution_is_one() {
        let mut w = WearMap::new();
        for i in 0..10u64 {
            w.record(LineAddr::new(i), 7);
        }
        assert!((w.unevenness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untouched_map_lives_forever() {
        let w = WearMap::new();
        assert_eq!(w.lifetime_seconds(1000, Picos::from_ps(1)), f64::INFINITY);
    }

    #[test]
    fn shared_map_aggregates_through_observer() {
        let shared = SharedWearMap::new();
        let mut obs = shared.clone();
        obs.on_write(LineAddr::new(1), 0, 0);
        obs.on_write(LineAddr::new(1), 0, 0);
        assert_eq!(shared.with(|w| w.worst_line_writes()), 2);
    }

    #[test]
    fn relative_lifetime_of_three_percent_more_writes() {
        // Evenly spread traffic with 3 % extra writes → ≈ 97 % lifetime.
        let mut base = WearMap::new();
        let mut sch = WearMap::new();
        for i in 0..1000u64 {
            base.record(LineAddr::new(i), 100);
            sch.record(LineAddr::new(i), 103);
        }
        let t = Instant::from_ps(1_000_000);
        let r = relative_lifetime((&base, t), (&sch, t), 1_000_000);
        assert!((r - 100.0 / 103.0).abs() < 1e-9);
    }
}
