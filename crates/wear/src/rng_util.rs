//! Minimal SplitMix64 clone for deterministic segment-swap selection
//! (duplicated from `ladder-workloads` to keep this substrate crate free of
//! workload-layer dependencies).

#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
