//! Wear-leveling and lifetime analysis for the LADDER reproduction
//! (paper Section 6.4).
//!
//! Vertical wear-leveling ([`StartGap`], [`SegmentVwl`]) remaps line
//! addresses *before* LADDER, so metadata is always indexed by physical
//! location (paper Fig. 18a); horizontal wear-leveling ([`RotateHwl`])
//! rotates bytes inside a line and needs no metadata handling. Lifetime is
//! judged by the worst-stressed line through [`WearMap`].

mod leveling;
mod lifetime;
mod remap;
mod rng_util;

pub use leveling::{NoLeveling, RotateHwl, SegmentVwl, StartGap, WearLeveler};
pub use lifetime::{relative_lifetime, SharedWearMap, WearMap};
pub use remap::{
    HotPageRemapper, PadRemapper, RemapBackend, RemapKind, RetirePool, SharedPadRemapper,
    SharedRetirePool,
};
