//! Wear-leveling mechanisms (paper Section 6.4, Fig. 18).
//!
//! * [`StartGap`] — line-granularity vertical wear-leveling (Qureshi et
//!   al., MICRO'09): one spare line per region, a gap that rotates through
//!   it every `gap_interval` writes. Scatters the lines of a page across
//!   wordline groups, which is exactly the metadata-locality hazard the
//!   paper warns about for line-based VWL.
//! * [`SegmentVwl`] — segment-granularity remapping (à la Zhou et al.,
//!   ISCA'09): whole multi-page segments swap periodically, preserving
//!   page→WLG contiguity and hence LADDER's metadata locality.
//! * [`RotateHwl`] — horizontal wear-leveling: rotates bytes within a line
//!   by a per-line offset; no address change, so LADDER needs no special
//!   handling (the metadata is simply computed on the rotated image).
//!
//! Migration traffic is modelled as extra physical writes; the content copy
//! itself is elided (no simulated reader ever checks data values — see
//! DESIGN.md §2 on substitutions).

use crate::rng_util::SplitMix64;
use ladder_reram::{LineAddr, LineData, LINES_PER_WLG, LINE_BYTES};
use std::collections::BTreeMap;

/// A vertical wear-leveling scheme: remaps line addresses and may emit
/// extra migration writes.
pub trait WearLeveler: std::fmt::Debug + Send {
    /// Current logical → physical mapping.
    fn map(&self, logical: LineAddr) -> LineAddr;

    /// Accounts one logical write; returns physical addresses of any extra
    /// migration writes this write triggered.
    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr>;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

/// The identity leveler (wear-leveling disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLeveling;

impl WearLeveler for NoLeveling {
    fn map(&self, logical: LineAddr) -> LineAddr {
        logical
    }

    fn note_write(&mut self, _logical: LineAddr) -> Vec<LineAddr> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Start-Gap line-level wear-leveling over a contiguous region.
///
/// The region holds `lines` logical lines in `lines + 1` physical slots;
/// the empty slot (the gap) moves down one position every `gap_interval`
/// writes, costing one migration write each time. After `lines + 1` gap
/// movements every line has shifted by one physical slot.
///
/// # Examples
///
/// ```
/// use ladder_wear::{StartGap, WearLeveler};
/// use ladder_reram::LineAddr;
///
/// let mut sg = StartGap::new(0, 16, 1);
/// let before = sg.map(LineAddr::new(5));
/// for i in 0..40u64 {
///     sg.note_write(LineAddr::new(i % 16));
/// }
/// let after = sg.map(LineAddr::new(5));
/// assert_ne!(before, after, "mapping must rotate as the gap moves");
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    base: u64,
    lines: u64,
    gap: u64,
    start: u64,
    writes: u64,
    gap_interval: u64,
}

impl StartGap {
    /// Creates a region of `lines` logical lines starting at line `base`,
    /// moving the gap every `gap_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `gap_interval` is zero.
    pub fn new(base: u64, lines: u64, gap_interval: u64) -> Self {
        assert!(lines > 0 && gap_interval > 0, "degenerate start-gap region");
        Self {
            base,
            lines,
            gap: lines, // gap starts past the last line
            start: 0,
            writes: 0,
            gap_interval,
        }
    }
}

impl WearLeveler for StartGap {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let rel = logical
            .raw()
            .checked_sub(self.base)
            // lint: allow(panic-policy) — region-membership precondition, documented on the trait; same contract as the assert below
            .expect("address below region base");
        assert!(rel < self.lines, "address beyond region");
        let rotated = (rel + self.start) % self.lines;
        let phys = if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        };
        LineAddr::new(self.base + phys)
    }

    fn note_write(&mut self, _logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        if !self.writes.is_multiple_of(self.gap_interval) {
            return Vec::new();
        }
        // Move the gap down one slot: the line currently in the slot below
        // the gap is copied into the gap slot (one migration write there).
        let migration_target = self.gap;
        if self.gap == 0 {
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
        } else {
            self.gap -= 1;
        }
        vec![LineAddr::new(self.base + migration_target)]
    }

    fn name(&self) -> &'static str {
        "start-gap"
    }
}

/// Segment-granularity vertical wear-leveling: every `swap_interval`
/// writes, two random segments swap their mappings.
#[derive(Debug)]
pub struct SegmentVwl {
    base_page: u64,
    segments: u64,
    pages_per_segment: u64,
    /// logical segment → physical segment (a permutation).
    table: Vec<u64>,
    writes: u64,
    swap_interval: u64,
    rng: SplitMix64,
    /// Pending migration writes amortized over subsequent calls.
    pending_migrations: u64,
}

impl SegmentVwl {
    /// Creates a leveler over `segments × pages_per_segment` pages starting
    /// at `base_page`, swapping two segments every `swap_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(
        base_page: u64,
        segments: u64,
        pages_per_segment: u64,
        swap_interval: u64,
        seed: u64,
    ) -> Self {
        assert!(
            segments > 0 && pages_per_segment > 0 && swap_interval > 0,
            "degenerate segment layout"
        );
        Self {
            base_page,
            segments,
            pages_per_segment,
            table: (0..segments).collect(),
            writes: 0,
            swap_interval,
            rng: SplitMix64::new(seed),
            pending_migrations: 0,
        }
    }

    fn lines_per_segment(&self) -> u64 {
        self.pages_per_segment * LINES_PER_WLG as u64
    }
}

impl WearLeveler for SegmentVwl {
    fn map(&self, logical: LineAddr) -> LineAddr {
        let base_line = self.base_page * LINES_PER_WLG as u64;
        let rel = logical
            .raw()
            .checked_sub(base_line)
            // lint: allow(panic-policy) — region-membership precondition, documented on the trait; same contract as the assert below
            .expect("address below region base");
        let seg = rel / self.lines_per_segment();
        assert!(seg < self.segments, "address beyond region");
        let off = rel % self.lines_per_segment();
        LineAddr::new(base_line + self.table[seg as usize] * self.lines_per_segment() + off)
    }

    fn note_write(&mut self, logical: LineAddr) -> Vec<LineAddr> {
        self.writes += 1;
        if self.writes.is_multiple_of(self.swap_interval) && self.segments >= 2 {
            let a = self.rng.next_below(self.segments) as usize;
            let mut b = self.rng.next_below(self.segments) as usize;
            if a == b {
                b = (b + 1) % self.segments as usize;
            }
            self.table.swap(a, b);
            // A swap migrates both segments; amortize those writes over the
            // following traffic (one migration write surfaced per data
            // write) so queues are not flooded by a background copy.
            self.pending_migrations += 2 * self.lines_per_segment();
        }
        if self.pending_migrations > 0 {
            self.pending_migrations -= 1;
            // Migration lands in the destination segment of this write.
            return vec![self.map(logical)];
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "segment-vwl"
    }
}

/// Horizontal wear-leveling: rotate a line's bytes by a per-line counter.
#[derive(Debug, Default)]
pub struct RotateHwl {
    offsets: BTreeMap<u64, u8>,
}

impl RotateHwl {
    /// Creates the rotator with all offsets at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rotation offset currently applied to a line.
    pub fn offset(&self, addr: LineAddr) -> u8 {
        self.offsets.get(&addr.raw()).copied().unwrap_or(0)
    }

    /// Advances the line's rotation (called per write) and returns the
    /// rotated image to store.
    pub fn rotate_for_write(&mut self, addr: LineAddr, data: &LineData) -> LineData {
        let off = self.offsets.entry(addr.raw()).or_insert(0);
        *off = (*off + 1) % LINE_BYTES as u8;
        rotate(data, *off)
    }

    /// Undoes the rotation on a read.
    pub fn unrotate_for_read(&self, addr: LineAddr, stored: &LineData) -> LineData {
        let off = self.offset(addr);
        rotate(stored, (LINE_BYTES as u8 - off) % LINE_BYTES as u8)
    }
}

fn rotate(data: &LineData, off: u8) -> LineData {
    let mut out = [0u8; LINE_BYTES];
    for (i, &b) in data.iter().enumerate() {
        out[(i + off as usize) % LINE_BYTES] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_gap_mapping_is_injective() {
        let mut sg = StartGap::new(0, 256, 5);
        for _ in 0..1000 {
            sg.note_write(LineAddr::new(0));
            let mut seen = std::collections::HashSet::new();
            for l in 0..256u64 {
                let p = sg.map(LineAddr::new(l));
                assert!(p.raw() <= 256, "physical beyond region+gap");
                assert!(seen.insert(p), "collision at logical {l}");
            }
        }
    }

    #[test]
    fn start_gap_migration_rate_is_one_over_interval() {
        let mut sg = StartGap::new(0, 64, 10);
        let mut migrations = 0;
        for i in 0..10_000u64 {
            migrations += sg.note_write(LineAddr::new(i % 64)).len();
        }
        assert_eq!(migrations, 1000);
    }

    #[test]
    fn start_gap_rotates_every_line_eventually() {
        let mut sg = StartGap::new(0, 8, 1);
        let initial: Vec<_> = (0..8).map(|l| sg.map(LineAddr::new(l))).collect();
        // 9 gap movements = one full rotation step for every line.
        for _ in 0..9 {
            sg.note_write(LineAddr::new(0));
        }
        let rotated: Vec<_> = (0..8).map(|l| sg.map(LineAddr::new(l))).collect();
        for (a, b) in initial.iter().zip(&rotated) {
            assert_ne!(a, b, "every line must have moved");
        }
    }

    #[test]
    fn segment_vwl_preserves_page_contiguity() {
        let mut sv = SegmentVwl::new(0, 8, 16, 3, 77);
        for i in 0..100u64 {
            sv.note_write(LineAddr::new(i * 7 % (8 * 16 * 64)));
        }
        // All 64 lines of any page land in the same physical page.
        for page in 0..(8 * 16u64) {
            let first = sv.map(LineAddr::new(page * 64)).page();
            for slot in 1..64u64 {
                assert_eq!(sv.map(LineAddr::new(page * 64 + slot)).page(), first);
            }
        }
    }

    #[test]
    fn segment_vwl_is_a_permutation() {
        let mut sv = SegmentVwl::new(0, 6, 4, 2, 1);
        for i in 0..50u64 {
            sv.note_write(LineAddr::new(i % (6 * 4 * 64)));
        }
        let mut seen = std::collections::HashSet::new();
        for l in 0..(6 * 4 * 64u64) {
            assert!(seen.insert(sv.map(LineAddr::new(l))));
        }
    }

    #[test]
    fn hwl_rotation_roundtrips() {
        let mut hwl = RotateHwl::new();
        let addr = LineAddr::new(9);
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        for _ in 0..10 {
            let stored = hwl.rotate_for_write(addr, &data);
            assert_eq!(hwl.unrotate_for_read(addr, &stored), data);
        }
        assert_eq!(hwl.offset(addr), 10);
    }

    #[test]
    fn no_leveling_is_identity() {
        let mut n = NoLeveling;
        assert_eq!(n.map(LineAddr::new(123)), LineAddr::new(123));
        assert!(n.note_write(LineAddr::new(123)).is_empty());
    }
}
