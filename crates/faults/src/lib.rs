//! Device fault injection and recovery for the LADDER reproduction.
//!
//! The reliability literature the repo cites makes two claims this crate
//! reproduces: WoLFRaM-style wear-induced *permanent* stuck-at faults
//! (SA0/SA1) whose arrival rate grows with consumed endurance, and the
//! variability channel models' *transient* write failures whose
//! probability is location- and content-dependent — exactly the two axes
//! LADDER's timing table already parameterizes, so the table's IR-drop
//! margin is reused as the failure-probability proxy (far cells and
//! LRS-heavy lines fail more).
//!
//! Three layers:
//!
//! 1. [`CellFaultModel`] — the seeded, deterministic per-cell fault model.
//!    Determinism is structural: every sample is a pure hash of
//!    `(seed, line, per-line write index, attempt)`, so results are
//!    identical at any `--jobs` level and across reruns.
//! 2. Program-and-verify — the model plugs into the memory controller as a
//!    [`ladder_memctrl::FaultInjector`]; the controller fires bounded,
//!    escalated retry pulses on failed verifies and charges their latency
//!    against the write's bank occupancy.
//! 3. Recovery — a per-line SEC-DED-style correction budget absorbs small
//!    residues; uncorrectable lines count as data loss and retire their
//!    page into a spare frame through
//!    [`ladder_wear::SharedRetirePool`].
//!
//! With every rate at zero the model is inert: no retries, no masks, no
//! extra latency — a rate-0.0 run is bit-identical to a run without the
//! model installed (enforced by the `fault_injection` integration tests).
//!
//! # Examples
//!
//! ```
//! use ladder_faults::{CellFaultModel, FaultConfig, SharedCellFaultModel};
//! use ladder_memctrl::{standard_tables, FixedWorstPolicy, MemCtrlConfig, MemoryController};
//! use ladder_reram::{AddressMap, Geometry, Instant, LineAddr};
//! use ladder_xbar::TableConfig;
//!
//! let tables = standard_tables(&TableConfig::ladder_default());
//! let map = AddressMap::new(Geometry::default());
//! let cfg = FaultConfig {
//!     transient_ber: 1e-3,
//!     ..FaultConfig::new(7)
//! };
//! let shared = SharedCellFaultModel::new(CellFaultModel::new(cfg, tables.ladder.clone(), map.clone()));
//! let policy = Box::new(FixedWorstPolicy::new(&tables.ladder));
//! let mut mc = MemoryController::new(MemCtrlConfig::default(), map, policy);
//! mc.set_fault_injector(shared.clone());
//! mc.enqueue_write(LineAddr::new(40_000 * 64), [0xFF; 64], Instant::ZERO);
//! mc.finish(Instant::ZERO);
//! assert_eq!(mc.stats().retries_issued, mc.stats().failed_verifies);
//! ```

mod model;

pub use model::{CellFaultModel, FaultStats, SharedCellFaultModel};

/// Configuration of the device fault model. All-zero rates make the model
/// inert (useful for A/B-identical control runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every sample in the model derives from it.
    pub seed: u64,
    /// Raw transient bit-error rate: per-bit probability that the initial
    /// pulse fails to program a cell at the worst IR-drop corner. Scaled
    /// down for better-margin (near / HRS-heavy) locations.
    pub transient_ber: f64,
    /// Probability that a write mints a new permanent stuck-at cell once
    /// the line has consumed its full endurance budget; scales linearly
    /// with consumed endurance below that.
    pub stuck_rate: f64,
    /// Per-cell endurance (writes) used to scale stuck-at arrival.
    pub endurance: u64,
    /// Retry-pulse budget per write.
    pub max_retries: u32,
    /// Each retry pulse is lengthened by this fraction of the base `tWR`
    /// per attempt (percent): attempt `k` runs at `base × (1 + k·pct/100)`.
    pub retry_escalation_pct: u32,
    /// SEC-DED-style per-line correction budget in bits (a 64 B line holds
    /// eight 8 B ECC words, each correcting one bit).
    pub ecc_correctable_bits: u32,
    /// Stuck cells accumulated on one page before it is retired
    /// proactively (an uncorrectable write retires its page immediately).
    pub retire_stuck_threshold: u32,
}

impl FaultConfig {
    /// An inert (all rates zero) configuration with standard retry/ECC
    /// parameters, for control runs that must match the no-fault path.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_ber: 0.0,
            stuck_rate: 0.0,
            endurance: 10_000_000,
            max_retries: 3,
            retry_escalation_pct: 50,
            ecc_correctable_bits: 8,
            retire_stuck_threshold: 64,
        }
    }

    /// Default stuck-at/transient rate ratio used by [`Self::with_ber`]:
    /// simulated runs are ~10^5 writes, not the 10^7 a device endures, so
    /// the stuck-at channel is scaled up 20× relative to the transient BER
    /// to make wear-out observable inside a simulation window. Campaigns
    /// that sweep the ratio use [`Self::with_ber_ratio`] directly.
    pub const DEFAULT_STUCK_RATIO: f64 = 20.0;

    /// A configuration exercising both fault classes at the given raw
    /// transient bit-error rate, with stuck-at arrival scaled by
    /// [`Self::DEFAULT_STUCK_RATIO`].
    pub fn with_ber(seed: u64, ber: f64) -> Self {
        Self::with_ber_ratio(seed, ber, Self::DEFAULT_STUCK_RATIO)
    }

    /// Like [`Self::with_ber`] but with an explicit stuck-at ratio:
    /// `stuck_rate = ber × stuck_ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` or `stuck_ratio` is negative, NaN, or infinite —
    /// a non-finite rate would silently disable whole fault channels
    /// (every `unit(h) < p` comparison is false against NaN), so it is
    /// rejected at construction.
    pub fn with_ber_ratio(seed: u64, ber: f64, stuck_ratio: f64) -> Self {
        assert!(
            ber.is_finite() && ber >= 0.0,
            "transient BER must be finite and non-negative, got {ber}"
        );
        assert!(
            stuck_ratio.is_finite() && stuck_ratio >= 0.0,
            "stuck ratio must be finite and non-negative, got {stuck_ratio}"
        );
        Self {
            transient_ber: ber,
            stuck_rate: ber * stuck_ratio,
            endurance: 1_000,
            ..Self::new(seed)
        }
    }

    /// Whether every fault channel is disabled.
    pub fn is_inert(&self) -> bool {
        self.transient_ber == 0.0 && self.stuck_rate == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::new(2021)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ber_uses_the_documented_default_ratio() {
        let cfg = FaultConfig::with_ber(7, 1e-3);
        let explicit = FaultConfig::with_ber_ratio(7, 1e-3, FaultConfig::DEFAULT_STUCK_RATIO);
        assert_eq!(cfg, explicit);
        assert!((cfg.stuck_rate - 2e-2).abs() < 1e-12);
    }

    #[test]
    fn custom_ratio_scales_the_stuck_channel() {
        let cfg = FaultConfig::with_ber_ratio(7, 1e-3, 5.0);
        assert!((cfg.stuck_rate - 5e-3).abs() < 1e-12);
        let inert = FaultConfig::with_ber_ratio(7, 0.0, 5.0);
        assert!(inert.is_inert());
    }

    #[test]
    #[should_panic(expected = "transient BER must be finite")]
    fn nan_ber_is_rejected() {
        let _ = FaultConfig::with_ber(1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "transient BER must be finite")]
    fn negative_ber_is_rejected() {
        let _ = FaultConfig::with_ber(1, -1e-3);
    }

    #[test]
    #[should_panic(expected = "stuck ratio must be finite")]
    fn infinite_ratio_is_rejected() {
        let _ = FaultConfig::with_ber_ratio(1, 1e-3, f64::INFINITY);
    }
}
