//! The seeded, deterministic per-cell fault model.
//!
//! Two fault channels, per the papers the repo cites:
//!
//! * **Transient write failures** (variability channel models): each
//!   initial RESET pulse fails to program a cell with probability
//!   `transient_ber × margin`, where `margin` is the line's normalized
//!   IR-drop latency requirement from the LADDER timing table —
//!   `lookup(wl, worst column, line LRS count) / worst`. Far wordlines
//!   and LRS-heavy content, which need the longest pulses, fail the most;
//!   escalated retry pulses quarter the probability per attempt.
//! * **Permanent stuck-at faults** (WoLFRaM): each write can mint a new
//!   SA0/SA1 cell with probability `stuck_rate × consumed endurance`,
//!   where consumed endurance is the line's write count (tracked in a
//!   [`WearMap`]) over the endurance budget. Stuck cells are installed
//!   into the [`LineStore`] fault masks, so subsequent *reads* of the
//!   line really return corrupted data, and conflicting writes fail their
//!   verify on every attempt.
//!
//! Every random decision is a pure hash of `(seed, line, per-line write
//! index, attempt)`: no global RNG state, no dependence on scheduling or
//! thread count — the property the `--jobs`-determinism tests pin down.

use crate::FaultConfig;
use ladder_coding::{CodeScheme, CodingKind, CodingStats, FlatEcc, LocationChannel};
use ladder_memctrl::{FaultInjector, Resolution};
use ladder_reram::{AddressMap, LineAddr, LineData, LineStore, Picos, LINE_BYTES};
use ladder_wear::{RemapBackend, SharedRetirePool, WearMap};
use ladder_xbar::TimingTable;
use std::collections::BTreeMap;
use std::sync::PoisonError;

const LINE_BITS: u32 = (LINE_BYTES * 8) as u32;

/// SplitMix64 finalizer: a high-quality stateless mixing hash.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a hash value.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Counters of everything the fault model observed and decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data writes the model sampled (initial pulses, not retries).
    pub data_writes: u64,
    /// Transient bit failures across all pulses (most are healed by
    /// retries).
    pub transient_bit_errors: u64,
    /// Permanent stuck-at cells minted.
    pub stuck_cells: u64,
    /// Residual failed bits absorbed by the per-line correction budget.
    pub corrected_bits: u64,
    /// Writes whose residue exceeded the correction budget (data loss).
    pub uncorrectable_lines: u64,
    /// Failed bits on uncorrectable lines — the raw data-loss magnitude.
    pub data_loss_bits: u64,
    /// Pages retired into spare frames.
    pub retired_pages: u64,
    /// Page retirements that found no spare frame left.
    pub retire_exhausted: u64,
}

impl FaultStats {
    /// One-line human-readable report.
    pub fn summary(&self) -> String {
        format!(
            "faults: {} transient bit errors, {} stuck cells, \
             {} corrected bits, {} uncorrectable lines ({} bits lost), \
             {} pages retired",
            self.transient_bit_errors,
            self.stuck_cells,
            self.corrected_bits,
            self.uncorrectable_lines,
            self.data_loss_bits,
            self.retired_pages
        )
    }

    /// Accumulates another model's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.data_writes = self.data_writes.saturating_add(other.data_writes);
        self.transient_bit_errors = self
            .transient_bit_errors
            .saturating_add(other.transient_bit_errors);
        self.stuck_cells = self.stuck_cells.saturating_add(other.stuck_cells);
        self.corrected_bits = self.corrected_bits.saturating_add(other.corrected_bits);
        self.uncorrectable_lines = self
            .uncorrectable_lines
            .saturating_add(other.uncorrectable_lines);
        self.data_loss_bits = self.data_loss_bits.saturating_add(other.data_loss_bits);
        self.retired_pages = self.retired_pages.saturating_add(other.retired_pages);
        self.retire_exhausted = self.retire_exhausted.saturating_add(other.retire_exhausted);
    }
}

impl ladder_trace::Mergeable for FaultStats {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// The per-cell fault model (see the module docs for the two channels).
///
/// The raw error pressure comes from a [`LocationChannel`]; a
/// [`CodeScheme`] decides what the per-line correction budget (and retry
/// escalation) looks like at each position; an optional [`RemapBackend`]
/// moves faulty pages out of service. The defaults — flat ECC at
/// `ecc_correctable_bits` and no backend — reproduce the pre-coding-layer
/// behaviour bit-for-bit.
#[derive(Debug)]
pub struct CellFaultModel {
    cfg: FaultConfig,
    /// Location-dependent raw error channel (the IR-drop margin proxy).
    channel: LocationChannel,
    /// The correction scheme facing the channel.
    scheme: Box<dyn CodeScheme>,
    /// Per-line endurance consumed, fed by the pulses this model observes.
    wear: WearMap,
    /// Stuck cells accumulated per page, for the retirement threshold.
    page_stuck: BTreeMap<u64, u32>,
    remap: Option<RemapBackend>,
    stats: FaultStats,
    coding: CodingStats,
}

impl CellFaultModel {
    /// Creates a model over the physical timing table (the IR-drop margin
    /// proxy) and address map. The table should be the full
    /// location+content LADDER table regardless of the scheme under test:
    /// it describes the *device*, not the controller's policy, so every
    /// scheme faces identical raw fault pressure. The correction layer
    /// starts as flat ECC at `cfg.ecc_correctable_bits`; see
    /// [`Self::with_coding`].
    pub fn new(cfg: FaultConfig, table: TimingTable, map: AddressMap) -> Self {
        let channel = LocationChannel::new(table, map);
        let scheme: Box<dyn CodeScheme> = Box::new(FlatEcc::new(cfg.ecc_correctable_bits));
        let coding = CodingStats {
            wa_millionths: (scheme.write_amplification() * 1e6).round() as u64,
            ..CodingStats::default()
        };
        Self {
            cfg,
            channel,
            scheme,
            wear: WearMap::new(),
            page_stuck: BTreeMap::new(),
            remap: None,
            stats: FaultStats::default(),
            coding,
        }
    }

    /// Replaces the correction layer with `kind`, derived from the model's
    /// channel at the configured transient BER. [`CodingKind::Flat`]
    /// rebuilds the byte-compatible default.
    pub fn with_coding(mut self, kind: CodingKind) -> Self {
        self.scheme = kind.build(
            self.channel.clone(),
            self.cfg.ecc_correctable_bits,
            self.cfg.transient_ber,
        );
        self.coding.wa_millionths = (self.scheme.write_amplification() * 1e6).round() as u64;
        self
    }

    /// Wires in the remap backend that moves uncorrectable or
    /// stuck-saturated pages out of service.
    pub fn with_remap_backend(mut self, backend: RemapBackend) -> Self {
        self.remap = Some(backend);
        self
    }

    /// Wires in a retire pool — shorthand for
    /// [`Self::with_remap_backend`] with [`RemapBackend::Retire`], kept
    /// for the pre-backend callers.
    pub fn with_retire_pool(self, pool: SharedRetirePool) -> Self {
        self.with_remap_backend(RemapBackend::Retire(pool))
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Coding-layer counters so far.
    pub fn coding_stats(&self) -> CodingStats {
        self.coding
    }

    /// The installed scheme's name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// The model's endurance-consumption map.
    pub fn wear(&self) -> &WearMap {
        &self.wear
    }

    /// Deterministic draw for one `(line, write, attempt, salt)` decision.
    fn draw(&self, line: u64, write_idx: u64, attempt: u32, salt: u64) -> u64 {
        mix(self.cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ mix(line)
            ^ mix(write_idx.wrapping_mul(0xd1b5_4a32_d192_ed03))
            ^ mix(u64::from(attempt).wrapping_add(salt << 32)))
    }

    /// IR-drop failure margin of a write at `addr` carrying `data` — the
    /// channel's normalized latency requirement, in `(0, 1]`.
    fn margin(&self, addr: LineAddr, data: &LineData) -> f64 {
        self.channel.margin(addr, data)
    }

    /// Transient failures of pulse `attempt`: a deterministic binomial
    /// approximation (expected count, plus a Bernoulli on the fraction).
    fn transient_failures(
        &mut self,
        addr: LineAddr,
        data: &LineData,
        write_idx: u64,
        attempt: u32,
    ) -> u32 {
        if self.cfg.transient_ber == 0.0 {
            return 0;
        }
        // Escalated retry pulses quarter the failure probability each.
        let p = self.cfg.transient_ber * self.margin(addr, data) / 4f64.powi(attempt as i32);
        let expected = f64::from(LINE_BITS) * p;
        let mut n = expected.floor() as u32;
        let h = self.draw(addr.raw(), write_idx, attempt, 1);
        if unit(h) < expected.fract() {
            n += 1;
        }
        n.min(LINE_BITS)
    }

    /// Stuck-at arrival on the initial pulse of a write: consumed
    /// endurance scales the per-write minting probability.
    fn maybe_mint_stuck(&mut self, addr: LineAddr, write_idx: u64, store: &mut LineStore) {
        if self.cfg.stuck_rate == 0.0 {
            return;
        }
        let consumed = (write_idx as f64 / self.cfg.endurance as f64).min(1.0);
        let p = self.cfg.stuck_rate * consumed;
        let h = self.draw(addr.raw(), write_idx, 0, 2);
        if unit(h) >= p {
            return;
        }
        let bit = (mix(h) % u64::from(LINE_BITS)) as usize;
        let mut mask = [0u8; LINE_BYTES];
        mask[bit / 8] = 1 << (bit % 8);
        // Worn-out cells mostly freeze in their low-resistance state:
        // bias 3:1 toward stuck-at-1 (LRS), as the WoLFRaM fault maps do.
        if mix(h) & 0b11 == 0 {
            store.inject_stuck(addr, [0; LINE_BYTES], mask);
        } else {
            store.inject_stuck(addr, mask, [0; LINE_BYTES]);
        }
        self.stats.stuck_cells += 1;
        let page = addr.page();
        let count = self.page_stuck.entry(page).or_insert(0);
        *count += 1;
        if *count >= self.cfg.retire_stuck_threshold {
            // Proactive retirement happens mid-program; there is no
            // resolve to attach the move to, so the pair is dropped.
            let _ = self.retire_page(page);
        }
    }

    /// Moves `page` out of service through the remap backend. Returns the
    /// `(page, frame)` pair for trace records when the move came from a
    /// non-default (PAD) backend — retire-pool moves return `None` so
    /// default-mode record streams stay byte-identical to the
    /// pre-backend era.
    fn retire_page(&mut self, page: u64) -> Option<(u64, u64)> {
        let Some(backend) = &self.remap else {
            return None;
        };
        match backend.on_fault(page) {
            Some(true) => {
                self.stats.retired_pages += 1;
                self.coding.remaps += 1;
                match backend {
                    RemapBackend::Retire(_) => None,
                    RemapBackend::Pad(_) => Some((page, backend.frame_of(page))),
                }
            }
            Some(false) => {
                self.stats.retire_exhausted += 1;
                None
            }
            None => None, // already out of service
        }
    }

    /// Bits whose stuck cells conflict with the programmed image — these
    /// fail the verify on *every* attempt.
    fn stuck_conflicts(addr: LineAddr, data: &LineData, store: &LineStore) -> u32 {
        match store.fault_mask(addr) {
            None => 0,
            Some(mask) => {
                let seen = mask.apply(data);
                ladder_reram::bits::xor_ones(&seen, data)
            }
        }
    }
}

impl FaultInjector for CellFaultModel {
    fn max_retries(&self) -> u32 {
        self.cfg.max_retries
    }

    fn retry_t_wr(&self, base: Picos, attempt: u32) -> Picos {
        let pct = 100 + u64::from(self.cfg.retry_escalation_pct) * u64::from(attempt);
        Picos::from_ps(base.as_ps() * pct / 100)
    }

    fn retry_t_wr_at(&self, addr: LineAddr, base: Picos, attempt: u32) -> Picos {
        // The scheme may escalate harder at margin-poor positions; the
        // flat scheme returns the base percentage, keeping the legacy
        // integer math (and digests) intact.
        let pct = 100
            + u64::from(
                self.scheme
                    .escalation_pct(self.cfg.retry_escalation_pct, addr),
            ) * u64::from(attempt);
        Picos::from_ps(base.as_ps() * pct / 100)
    }

    fn program(
        &mut self,
        addr: LineAddr,
        store: &mut LineStore,
        attempt: u32,
        _t_wr: Picos,
    ) -> u32 {
        let data = store.read_raw(addr);
        if attempt == 0 {
            self.stats.data_writes += 1;
            self.wear.record(addr, 1);
            let writes = self.wear.line_writes(addr);
            self.maybe_mint_stuck(addr, writes, store);
        }
        let write_idx = self.wear.line_writes(addr);
        let transient = self.transient_failures(addr, &data, write_idx, attempt);
        self.stats.transient_bit_errors += u64::from(transient);
        transient + Self::stuck_conflicts(addr, &data, store)
    }

    fn resolve(
        &mut self,
        addr: LineAddr,
        residual_bits: u32,
        _store: &mut LineStore,
    ) -> Resolution {
        let tier = self.scheme.tier(addr);
        let corrected = residual_bits <= self.scheme.correctable_bits(addr);
        self.coding.note_resolve(tier, residual_bits, corrected);
        if corrected {
            self.stats.corrected_bits += u64::from(residual_bits);
            Resolution {
                corrected: true,
                tier,
                remapped: None,
            }
        } else {
            self.stats.uncorrectable_lines += 1;
            self.stats.data_loss_bits += u64::from(residual_bits);
            let remapped = self.retire_page(addr.page());
            Resolution {
                corrected: false,
                tier,
                remapped,
            }
        }
    }
}

/// Shared handle so the simulator can read stats out of a model the
/// controller owns as its injector (the [`ladder_wear::SharedWearMap`]
/// idiom).
#[derive(Debug, Clone)]
pub struct SharedCellFaultModel(std::sync::Arc<std::sync::Mutex<CellFaultModel>>);

impl SharedCellFaultModel {
    /// Wraps a model for shared ownership.
    pub fn new(model: CellFaultModel) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(model)))
    }

    /// Runs `f` over the underlying model.
    pub fn with<R>(&self, f: impl FnOnce(&CellFaultModel) -> R) -> R {
        // Poisoning means a sibling worker already panicked and the panic
        // is propagating; the model's state is still internally consistent
        // (all mutation is transactional per call), so recover the guard.
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.with(CellFaultModel::stats)
    }

    /// Coding-layer counters so far.
    pub fn coding_stats(&self) -> CodingStats {
        self.with(CellFaultModel::coding_stats)
    }
}

impl FaultInjector for SharedCellFaultModel {
    fn max_retries(&self) -> u32 {
        self.with(CellFaultModel::max_retries)
    }

    fn retry_t_wr(&self, base: Picos, attempt: u32) -> Picos {
        self.with(|m| m.retry_t_wr(base, attempt))
    }

    fn retry_t_wr_at(&self, addr: LineAddr, base: Picos, attempt: u32) -> Picos {
        self.with(|m| m.retry_t_wr_at(addr, base, attempt))
    }

    fn program(&mut self, addr: LineAddr, store: &mut LineStore, attempt: u32, t_wr: Picos) -> u32 {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .program(addr, store, attempt, t_wr)
    }

    fn resolve(&mut self, addr: LineAddr, residual_bits: u32, store: &mut LineStore) -> Resolution {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .resolve(addr, residual_bits, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::Geometry;
    use ladder_xbar::TableConfig;

    fn model(cfg: FaultConfig) -> CellFaultModel {
        let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
        CellFaultModel::new(cfg, table, AddressMap::new(Geometry::default()))
    }

    #[test]
    fn inert_config_never_fails() {
        let mut m = model(FaultConfig::new(1));
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64);
        store.write(a, [0xFF; LINE_BYTES]);
        for attempt in 0..4 {
            assert_eq!(
                m.program(a, &mut store, attempt, Picos::from_ps(100_000)),
                0
            );
        }
        assert_eq!(store.faulted_lines(), 0);
        assert_eq!(m.stats().transient_bit_errors, 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = FaultConfig::with_ber(42, 1e-2);
        let run = || {
            let mut m = model(cfg);
            let mut store = LineStore::new();
            let mut failures = 0u64;
            for i in 0..400u64 {
                let a = LineAddr::new(40_000 * 64 + i % 64);
                store.write(a, [0xAB; LINE_BYTES]);
                failures += u64::from(m.program(a, &mut store, 0, Picos::from_ps(100_000)));
            }
            (failures, m.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_lines_fail_more_than_near_lines() {
        // Compare aggregate transient pressure on the nearest vs the
        // farthest wordline at identical content.
        let cfg = FaultConfig {
            transient_ber: 5e-3,
            ..FaultConfig::new(3)
        };
        let m = model(cfg);
        let map = AddressMap::new(Geometry::default());
        let data = [0xFF; LINE_BYTES];
        let at_wordline = |wordline: usize| {
            map.encode(&ladder_reram::Decoded {
                channel: 0,
                rank: 0,
                bank: 0,
                mat_group: 0,
                wordline,
                block_slot: 63,
            })
        };
        let near = m.margin(at_wordline(0), &data);
        let far = m.margin(at_wordline(map.geometry().mat_rows - 1), &data);
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn lrs_heavy_content_fails_more() {
        let m = model(FaultConfig {
            transient_ber: 5e-3,
            ..FaultConfig::new(3)
        });
        let a = LineAddr::new(40_000 * 64);
        assert!(m.margin(a, &[0xFF; LINE_BYTES]) > m.margin(a, &[0x00; LINE_BYTES]));
    }

    #[test]
    fn stuck_conflicts_persist_across_attempts() {
        let cfg = FaultConfig::new(5);
        let mut m = model(cfg);
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64);
        store.write(a, [0x00; LINE_BYTES]);
        let mut sa1 = [0u8; LINE_BYTES];
        sa1[0] = 0b111; // three cells stuck at 1 under programmed 0s
        store.inject_stuck(a, sa1, [0; LINE_BYTES]);
        for attempt in 0..4 {
            assert_eq!(
                m.program(a, &mut store, attempt, Picos::from_ps(100_000)),
                3
            );
        }
    }

    #[test]
    fn resolve_applies_ecc_budget_and_counts_loss() {
        let mut m = model(FaultConfig::new(9));
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64);
        let ok = m.resolve(a, 8, &mut store);
        assert!(ok.corrected, "within SEC-DED budget");
        assert_eq!(ok, Resolution::plain(true), "flat scheme adds no detail");
        let lost = m.resolve(a, 9, &mut store);
        assert!(!lost.corrected, "beyond budget is data loss");
        assert_eq!(lost, Resolution::plain(false));
        let s = m.stats();
        assert_eq!(s.corrected_bits, 8);
        assert_eq!(s.uncorrectable_lines, 1);
        assert_eq!(s.data_loss_bits, 9);
        assert!(s.summary().contains("1 uncorrectable"));
        let c = m.coding_stats();
        assert_eq!(c.resolves[0], 2, "flat resolves land in bucket 0");
        assert_eq!(c.total_corrected_bits(), 8);
        assert_eq!(c.total_uncorrectable(), 1);
    }

    #[test]
    fn uncorrectable_line_retires_its_page_into_a_spare() {
        let pool = SharedRetirePool::with_spares(vec![100, 101]);
        let mut m = model(FaultConfig::new(11)).with_retire_pool(pool.clone());
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64 + 3);
        let r = m.resolve(a, 50, &mut store);
        assert!(!r.corrected);
        assert_eq!(r.remapped, None, "retire backend emits no remap record");
        assert_eq!(m.stats().retired_pages, 1);
        // Future accesses to the page land in the spare frame.
        assert_eq!(pool.map(a).page(), 101);
        assert_eq!(pool.map(a).block_slot(), 3);
        // Retiring the same page again is a no-op.
        assert!(!m.resolve(a, 50, &mut store).corrected);
        assert_eq!(m.stats().retired_pages, 1);
    }

    #[test]
    fn pad_backend_surfaces_the_remap_pair() {
        let pad = ladder_wear::SharedPadRemapper::new(vec![100, 101], 1_000_000);
        let mut m = model(FaultConfig::new(11)).with_remap_backend(RemapBackend::Pad(pad.clone()));
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64 + 3);
        let r = m.resolve(a, 50, &mut store);
        assert!(!r.corrected);
        assert_eq!(r.remapped, Some((a.page(), 101)));
        assert_eq!(pad.map(a).page(), 101);
        assert_eq!(m.coding_stats().remaps, 1);
    }

    #[test]
    fn tiered_scheme_reports_its_tier_and_escalates_harder_near() {
        let cfg = FaultConfig {
            transient_ber: 1e-3,
            ..FaultConfig::new(11)
        };
        let mut m = model(cfg).with_coding(CodingKind::TieredBch);
        let mut store = LineStore::new();
        let near = LineAddr::new(0);
        let far = LineAddr::new(40_000 * 64);
        let r = m.resolve(far, 1, &mut store);
        assert!(r.corrected);
        assert!(r.tier.is_some(), "tiered scheme names its tier");
        // Margin-thin (near) tiers escalate retry pulses harder than the
        // generously-budgeted far tier.
        let base = Picos::from_ps(100_000);
        assert!(m.retry_t_wr_at(near, base, 1) >= m.retry_t_wr_at(far, base, 1));
        assert_eq!(m.scheme_name(), "tiered-bch");
    }

    #[test]
    fn escalated_pulses_quarter_transient_pressure() {
        let cfg = FaultConfig {
            transient_ber: 0.5, // enormous, so counts are deterministic
            ..FaultConfig::new(13)
        };
        let mut m = model(cfg);
        let mut store = LineStore::new();
        let a = LineAddr::new(40_000 * 64);
        store.write(a, [0xFF; LINE_BYTES]);
        let p0 = m.program(a, &mut store, 0, Picos::from_ps(100_000));
        let p2 = m.program(a, &mut store, 2, Picos::from_ps(100_000));
        assert!(p0 >= 8 * p2, "attempt 0: {p0}, attempt 2: {p2}");
    }

    #[test]
    fn retry_pulse_escalates_latency() {
        let m = model(FaultConfig::new(17));
        let base = Picos::from_ps(100_000);
        assert_eq!(m.retry_t_wr(base, 1).as_ps(), 150_000);
        assert_eq!(m.retry_t_wr(base, 2).as_ps(), 200_000);
    }
}
