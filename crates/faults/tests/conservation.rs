//! The P&V accounting invariants, end to end through the memory
//! controller: every failed verify is answered by exactly one retry pulse
//! while the budget lasts, the residue is fully accounted by ECC or data
//! loss, and an inert injector leaves the controller bit-identical to one
//! with no injector at all.

use ladder_faults::{CellFaultModel, FaultConfig, SharedCellFaultModel};
use ladder_memctrl::{standard_tables, FixedWorstPolicy, MemCtrlConfig, MemoryController, Tables};
use ladder_reram::{AddressMap, Geometry, Instant, LineAddr, LineData, LINE_BYTES};
use ladder_xbar::TableConfig;

fn controller(tables: &Tables) -> MemoryController {
    let map = AddressMap::new(Geometry::default());
    let policy = Box::new(FixedWorstPolicy::new(&tables.ladder));
    MemoryController::new(MemCtrlConfig::default(), map, policy)
}

/// Feed `n` data writes through the controller, pumping its event loop
/// whenever the write queue refuses new work (the `fig15` idiom).
fn feed_writes(mc: &mut MemoryController, n: u64) -> Instant {
    let mut now = Instant::ZERO;
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // A small hot set so per-line write counts climb (stuck-at channel)
        // with varied content (transient channel).
        let addr = LineAddr::new(40_000 * 64 + x % 256);
        let mut data: LineData = [0; LINE_BYTES];
        for (j, b) in data.iter_mut().enumerate() {
            *b = (x >> (j % 8)) as u8 ^ i as u8;
        }
        while !mc.enqueue_write(addr, data, now) {
            now = mc
                .next_wake(now)
                .expect("controller wedged with a full queue");
            mc.process(now);
        }
        mc.process(now);
    }
    mc.finish(now)
}

#[test]
fn retries_issued_equals_failed_verifies() {
    let tables = standard_tables(&TableConfig::ladder_default());
    let cfg = FaultConfig::with_ber(7, 5e-3);
    let map = AddressMap::new(Geometry::default());
    let shared = SharedCellFaultModel::new(CellFaultModel::new(cfg, tables.ladder.clone(), map));
    let mut mc = controller(&tables);
    mc.set_fault_injector(shared.clone());
    feed_writes(&mut mc, 4000);

    let stats = mc.stats();
    assert!(stats.failed_verifies > 0, "5e-3 BER must trip verifies");
    assert_eq!(
        stats.retries_issued, stats.failed_verifies,
        "every failed verify is followed by exactly one retry while the budget lasts"
    );
    assert!(stats.retry_time > ladder_reram::Picos::ZERO);

    let fstats = shared.stats();
    assert!(fstats.transient_bit_errors > 0);
    assert!(
        fstats.stuck_cells > 0,
        "hot 256-line set at endurance 1000 must mint stuck cells"
    );
    assert_eq!(fstats.data_writes, stats.data_writes);
    // Residues are fully accounted: either corrected or counted as loss.
    assert_eq!(
        stats.ecc_corrected_bits, fstats.corrected_bits,
        "controller and model agree on corrected bits"
    );
    assert_eq!(stats.uncorrectable_writes, fstats.uncorrectable_lines);
    // Stuck cells really landed in the store's fault masks.
    assert!(mc.store().faulted_lines() > 0);
}

#[test]
fn inert_injector_is_bit_identical_to_no_injector() {
    let tables = standard_tables(&TableConfig::ladder_default());

    let mut plain = controller(&tables);
    let end_plain = feed_writes(&mut plain, 1500);

    let map = AddressMap::new(Geometry::default());
    let inert = SharedCellFaultModel::new(CellFaultModel::new(
        FaultConfig::new(7),
        tables.ladder.clone(),
        map,
    ));
    let mut with_inert = controller(&tables);
    with_inert.set_fault_injector(inert.clone());
    let end_inert = feed_writes(&mut with_inert, 1500);

    assert_eq!(end_plain, end_inert, "inert injector must add zero latency");
    assert_eq!(plain.stats(), with_inert.stats());
    assert_eq!(with_inert.stats().failed_verifies, 0);
    assert_eq!(with_inert.stats().retry_time, ladder_reram::Picos::ZERO);
    assert_eq!(inert.stats().transient_bit_errors, 0);
    // The model still observed every data write (its wear map fills), it
    // just never failed one.
    assert_eq!(inert.stats().data_writes, plain.stats().data_writes);
}

#[test]
fn fault_pressure_is_deterministic_across_runs() {
    let tables = standard_tables(&TableConfig::ladder_default());
    let run = || {
        let cfg = FaultConfig::with_ber(99, 2e-3);
        let map = AddressMap::new(Geometry::default());
        let shared =
            SharedCellFaultModel::new(CellFaultModel::new(cfg, tables.ladder.clone(), map));
        let mut mc = controller(&tables);
        mc.set_fault_injector(shared.clone());
        let end = feed_writes(&mut mc, 2000);
        (end, mc.stats(), shared.stats())
    };
    assert_eq!(run(), run());
}
