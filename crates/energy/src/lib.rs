//! Dynamic memory energy model (the NVMain-based analysis of paper
//! Section 6.3, Fig. 17).
//!
//! Mat-level dynamic energy has three first-order components:
//!
//! * **read energy** — a fixed cost per line read (row activation, sensing
//!   and burst);
//! * **write pulse energy** — power drawn for the entire RESET pulse by the
//!   selected cells, the half-selected sneak paths and line biasing; this
//!   term is proportional to `tWR`, which is exactly what variable-latency
//!   schemes shrink;
//! * **switching energy** — per-cell cost of actually toggling state,
//!   proportional to the number of SET/RESET transitions (what FNW
//!   reduces).
//!
//! Absolute joules are calibrated against the device parameters of Table 1
//! (see [`EnergyParams::default`]); the reproduced figure reports energy
//! normalized to the baseline scheme, so only the ratios matter.

use ladder_reram::Picos;

/// Energy model coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one demand/dependency line read, in picojoules.
    pub read_pj: f64,
    /// Fixed energy per write, in picojoules: decoder/driver activation
    /// and the SET phase that follows the RESET (whose latency the timing
    /// model does not scale).
    pub write_base_pj: f64,
    /// Power drawn during a write pulse across the line's 64 mats, in
    /// milliwatts.
    pub write_pulse_mw: f64,
    /// Energy per switched cell, in picojoules.
    pub switch_pj_per_bit: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        // Per mat during RESET: selected cells plus sneak at 3 V ≈ 0.9 mW;
        // 64 mats ≈ 58 mW of pulse power. Reads sense at low bias (~3 nJ
        // per 64 B line including periphery); the per-write base covers
        // decoder/driver activation and the trailing SET phase.
        Self {
            read_pj: 3000.0,
            write_base_pj: 8000.0,
            write_pulse_mw: 58.0,
            switch_pj_per_bit: 2.0,
        }
    }
}

/// Accumulated dynamic energy, split the way Fig. 17 plots it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Read energy in picojoules.
    pub read_pj: f64,
    /// Write energy (pulse + switching) in picojoules.
    pub write_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.read_pj + self.write_pj
    }

    /// This breakdown normalized to a baseline total.
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is not positive.
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> (f64, f64) {
        let total = baseline.total_pj();
        assert!(total > 0.0, "baseline energy must be positive");
        (self.read_pj / total, self.write_pj / total)
    }
}

/// Meter accumulating operation energies.
///
/// # Examples
///
/// ```
/// use ladder_energy::{EnergyMeter, EnergyParams};
/// use ladder_reram::Picos;
///
/// let mut m = EnergyMeter::new(EnergyParams::default());
/// m.record_reads(5);
/// m.record_write(Picos::from_ns(658.0), 100);
/// let e = m.breakdown();
/// assert!(e.write_pj > e.read_pj, "one worst-case write out-costs 5 reads");
/// assert!(e.write_pj > 40_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    params: EnergyParams,
    acc: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new(params: EnergyParams) -> Self {
        Self {
            params,
            acc: EnergyBreakdown::default(),
        }
    }

    /// Records `count` line reads (demand or metadata/stale-block).
    pub fn record_reads(&mut self, count: u64) {
        self.acc.read_pj += count as f64 * self.params.read_pj;
    }

    /// Records one write with pulse length `t_wr` switching `bits` cells.
    pub fn record_write(&mut self, t_wr: Picos, bits: u64) {
        self.record_write_aggregate(t_wr, bits, 1);
    }

    /// Records a batch of `count` writes given their aggregate pulse time
    /// and switched-bit count (how controller statistics arrive).
    pub fn record_write_aggregate(&mut self, total_t_wr: Picos, total_bits: u64, count: u64) {
        // mW × ns = pJ.
        self.acc.write_pj += count as f64 * self.params.write_base_pj
            + self.params.write_pulse_mw * total_t_wr.as_ns()
            + total_bits as f64 * self.params.switch_pj_per_bit;
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.acc
    }

    /// The model parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_scales_with_pulse_length() {
        let mut fast = EnergyMeter::new(EnergyParams::default());
        let mut slow = EnergyMeter::new(EnergyParams::default());
        fast.record_write(Picos::from_ns(29.0), 50);
        slow.record_write(Picos::from_ns(658.0), 50);
        let ratio = slow.breakdown().write_pj / fast.breakdown().write_pj;
        // The pulse term dominates the fixed base at worst-case length.
        assert!(ratio > 3.5, "pulse term must dominate ({ratio})");
        let delta = slow.breakdown().write_pj - fast.breakdown().write_pj;
        let expect = 58.0 * (658.0 - 29.0);
        assert!((delta - expect).abs() < 1e-6);
    }

    #[test]
    fn switching_term_counts() {
        let p = EnergyParams::default();
        let mut a = EnergyMeter::new(p);
        let mut b = EnergyMeter::new(p);
        a.record_write(Picos::from_ns(100.0), 0);
        b.record_write(Picos::from_ns(100.0), 512);
        let delta = b.breakdown().write_pj - a.breakdown().write_pj;
        assert!((delta - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_equals_sum_of_singles() {
        let p = EnergyParams::default();
        let mut single = EnergyMeter::new(p);
        single.record_write(Picos::from_ns(100.0), 10);
        single.record_write(Picos::from_ns(200.0), 20);
        let mut agg = EnergyMeter::new(p);
        agg.record_write_aggregate(Picos::from_ns(300.0), 30, 2);
        assert!((single.breakdown().write_pj - agg.breakdown().write_pj).abs() < 1e-9);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = EnergyBreakdown {
            read_pj: 30.0,
            write_pj: 70.0,
        };
        let mine = EnergyBreakdown {
            read_pj: 30.0,
            write_pj: 20.0,
        };
        let (r, w) = mine.normalized_to(&base);
        assert!((r - 0.3).abs() < 1e-12);
        assert!((w - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_baseline_panics() {
        let z = EnergyBreakdown::default();
        let _ = z.normalized_to(&z);
    }
}
