//! One entry point per paper table and figure (the per-experiment index of
//! DESIGN.md §5).
//!
//! Every experiment is deterministic given its [`ExperimentConfig`]; the
//! `ladder-bench` binaries call these functions and print the same rows and
//! series the paper reports.

use crate::config::{run_sim, SimConfig};
use crate::runner::{AloneIpcCache, Runner, RunnerStats};
use crate::scheme::Scheme;
use crate::service::ServiceConfig;
use crate::shard::run_sharded;
use crate::system::{RunResult, SystemBuilder};
use ladder_coding::{CodingKind, CodingStats};
use ladder_cpu::TraceSource;
use ladder_faults::{FaultConfig, FaultStats};
use ladder_memctrl::{standard_tables, Tables};
use ladder_reram::{Geometry, Instant, Topology, LINES_PER_WLG};
use ladder_wear::RemapKind;
use ladder_workloads::{profile_of, WorkloadGen, MIXES, SINGLE_BENCHMARKS};
use ladder_xbar::TableConfig;
use std::sync::Arc;

/// Global experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Instructions each active core executes (the paper detail-simulates
    /// 500 M; the default here is scaled down for tractability — scheme
    /// *ratios* stabilize within a few million instructions).
    pub instructions_per_core: u64,
    /// Master seed for workload generation.
    pub seed: u64,
    /// Timing-table configuration shared by every scheme.
    pub table_cfg: TableConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            instructions_per_core: 1_000_000,
            seed: 2021,
            table_cfg: TableConfig::ladder_default(),
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            instructions_per_core: 120_000,
            ..Self::default()
        }
    }

    /// Generates the shared [`Tables`] timing-table bundle.
    pub fn tables(&self) -> Tables {
        standard_tables(&self.table_cfg)
    }
}

/// A workload from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One benchmark on core 0.
    Single(&'static str),
    /// A four-benchmark mix, one per core.
    Mix(&'static str),
}

impl Workload {
    /// All 16 workloads in the paper's figure order.
    pub fn all() -> Vec<Workload> {
        let mut v: Vec<Workload> = SINGLE_BENCHMARKS
            .iter()
            .map(|&b| Workload::Single(b))
            .collect();
        v.extend(MIXES.iter().map(|&(m, _)| Workload::Mix(m)));
        v
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Single(b) => b,
            Workload::Mix(m) => m,
        }
    }

    /// Benchmarks this workload runs, one per core.
    ///
    /// # Panics
    ///
    /// Panics for an unknown mix name.
    pub fn members(&self) -> Vec<&'static str> {
        match self {
            Workload::Single(b) => vec![b],
            Workload::Mix(m) => MIXES
                .iter()
                .find(|(name, _)| name == m)
                .map(|(_, members)| members.to_vec())
                // lint: allow(panic-policy) — caller contract: mix names come from the fixed MIXES catalog, documented under # Panics
                .unwrap_or_else(|| panic!("unknown mix {m}")),
        }
    }

    /// Whether this is a multi-programmed workload.
    pub fn is_mix(&self) -> bool {
        matches!(self, Workload::Mix(_))
    }
}

/// Page window of one core within `geometry`: every scheme reserves less
/// than 1/16 of the module for metadata, so data windows start at 1/16 of
/// the page space and are identical across schemes (fair comparison).
fn core_window(core: usize, geometry: &Geometry) -> (u64, u64) {
    let total = geometry.pages() as u64;
    let base = total / 16;
    let per_core = (total - base) / 4;
    (base + core as u64 * per_core, per_core)
}

/// The workload trace and MLP of `bench` on core `core`: the generator
/// every run assembles its cores from.
pub fn trace_for(
    bench: &'static str,
    core: usize,
    cfg: &ExperimentConfig,
) -> (Box<dyn TraceSource>, usize) {
    shard_trace_for(bench, core, cfg, &Geometry::default(), None)
}

/// [`trace_for`] over an explicit geometry and shard identity. Each shard
/// of a sharded run salts the workload seed with its index, so shards
/// simulate distinct (but per-shard deterministic) request streams over
/// their own one-channel slice.
pub(crate) fn shard_trace_for(
    bench: &'static str,
    core: usize,
    cfg: &ExperimentConfig,
    geometry: &Geometry,
    shard: Option<u32>,
) -> (Box<dyn TraceSource>, usize) {
    let profile = profile_of(bench);
    let mlp = profile.mlp;
    let (base, limit) = core_window(core, geometry);
    let mut seed = cfg
        .seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(core as u64 + 1);
    if let Some(s) = shard {
        seed = seed.wrapping_add(((s as u64) + 1).wrapping_mul(0x517cc1b727220a95));
    }
    let gen = WorkloadGen::for_instructions(profile, seed, base, limit, cfg.instructions_per_core);
    (Box::new(gen), mlp)
}

// ---------------------------------------------------------------------------
// Figure 2 — motivation: worst-case vs location-aware vs data/location-aware.
// ---------------------------------------------------------------------------

/// One benchmark's bars in Fig. 2 (IPC normalized to the worst-case
/// baseline).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Location-aware normalized IPC.
    pub location_aware: f64,
    /// Data/location-aware (oracle) normalized IPC.
    pub data_location_aware: f64,
}

/// Reproduces Fig. 2 over the eight single-programmed benchmarks.
pub fn fig2(cfg: &ExperimentConfig, runner: &Runner) -> Vec<Fig2Row> {
    const SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::LocationAware, Scheme::Oracle];
    let tables = Arc::new(cfg.tables());
    let configs: Vec<SimConfig> = SINGLE_BENCHMARKS
        .iter()
        .flat_map(|&bench| {
            SCHEMES
                .iter()
                .map(move |&s| SimConfig::new(s, Workload::Single(bench)))
        })
        .collect();
    let (results, _) = runner.run_configs(cfg, &tables, &configs);
    SINGLE_BENCHMARKS
        .iter()
        .zip(results.chunks_exact(SCHEMES.len()))
        .map(|(&bench, runs)| Fig2Row {
            bench,
            location_aware: runs[1].ipc0() / runs[0].ipc0(),
            data_location_aware: runs[2].ipc0() / runs[0].ipc0(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Main evaluation — Figs. 12, 13, 14, 16, 17 share one run matrix.
// ---------------------------------------------------------------------------

/// Results of every scheme on one workload.
#[derive(Debug)]
pub struct WorkloadEval {
    /// The workload.
    pub workload: Workload,
    /// One result per evaluated scheme.
    pub runs: Vec<RunResult>,
    /// Speedup of each scheme vs. the baseline (IPC for singles, weighted
    /// IPC for mixes), aligned with `runs`.
    pub speedups: Vec<f64>,
}

impl WorkloadEval {
    /// Result of a specific scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not part of the evaluation.
    pub fn run(&self, scheme: Scheme) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.scheme == scheme)
            // lint: allow(panic-policy) — caller contract: scheme must be part of the evaluation, documented under # Panics
            .unwrap_or_else(|| panic!("scheme {scheme} not evaluated"))
    }

    /// Speedup of a specific scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not part of the evaluation.
    pub fn speedup(&self, scheme: Scheme) -> f64 {
        let idx = self
            .runs
            .iter()
            .position(|r| r.scheme == scheme)
            // lint: allow(panic-policy) — caller contract: scheme must be part of the evaluation, documented under # Panics
            .unwrap_or_else(|| panic!("scheme {scheme} not evaluated"));
        self.speedups[idx]
    }
}

/// The full evaluation matrix: 16 workloads × the requested schemes.
#[derive(Debug)]
pub struct MainEval {
    /// Per-workload evaluations, in the paper's order.
    pub workloads: Vec<WorkloadEval>,
    /// Timing observability for the batch that produced this matrix.
    pub stats: RunnerStats,
}

/// Configures and launches the main evaluation (the data behind
/// Figs. 12, 13, 14, 16, 17). Obtained from [`MainEval::builder`].
///
/// ```no_run
/// use ladder_sim::experiments::{ExperimentConfig, MainEval};
/// use ladder_sim::{Runner, Scheme};
///
/// let cfg = ExperimentConfig::quick();
/// let eval = MainEval::builder(&cfg)
///     .schemes(&[Scheme::Baseline, Scheme::LadderHybrid])
///     .run(&Runner::new());
/// println!("{}", eval.fig16_speedup().to_table());
/// ```
#[derive(Debug, Clone)]
pub struct MainEvalBuilder<'a> {
    cfg: &'a ExperimentConfig,
    schemes: Vec<Scheme>,
    workloads: Vec<Workload>,
}

impl<'a> MainEvalBuilder<'a> {
    /// Restricts the evaluation to `schemes` (default: all of
    /// [`Scheme::MAIN_EVAL`]). Must include [`Scheme::Baseline`], the
    /// normalization target.
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Restricts the evaluation to `workloads` (default: all 16 of
    /// [`Workload::all`]).
    pub fn workloads(mut self, workloads: &[Workload]) -> Self {
        self.workloads = workloads.to_vec();
        self
    }

    /// Executes the whole matrix on `runner` as one parallel batch.
    ///
    /// Alone-run baseline IPCs for mix metrics are memoized in an
    /// [`AloneIpcCache`]: the matrix's own `Baseline × Single` cells are
    /// harvested, and only mix members outside the evaluated singles are
    /// simulated additionally (appended to the same batch).
    ///
    /// # Panics
    ///
    /// Panics if the scheme list does not contain [`Scheme::Baseline`].
    pub fn run(self, runner: &Runner) -> MainEval {
        let MainEvalBuilder {
            cfg,
            schemes,
            workloads,
        } = self;
        assert!(
            schemes.contains(&Scheme::Baseline),
            "main evaluation requires Scheme::Baseline (normalization target)"
        );
        let ns = schemes.len();
        let tables = Arc::new(cfg.tables());

        // The matrix itself, row-major (workload-major, scheme-minor).
        let mut specs: Vec<SimConfig> = Vec::with_capacity(workloads.len() * ns + 2);
        for &w in &workloads {
            for &s in &schemes {
                specs.push(SimConfig::new(s, w));
            }
        }
        // Alone-run baselines the matrix does not already produce: mix
        // members that are not evaluated as singles.
        let singles: Vec<&'static str> = workloads
            .iter()
            .filter_map(|w| match w {
                Workload::Single(b) => Some(*b),
                Workload::Mix(_) => None,
            })
            .collect();
        let mut extra: Vec<&'static str> = Vec::new();
        for w in &workloads {
            if w.is_mix() {
                for b in w.members() {
                    if !singles.contains(&b) && !extra.contains(&b) {
                        extra.push(b);
                    }
                }
            }
        }
        specs.extend(
            extra
                .iter()
                .map(|&b| SimConfig::new(Scheme::Baseline, Workload::Single(b))),
        );

        let (mut results, stats) = runner.run_configs(cfg, &tables, &specs);

        // Populate the alone-run cache: extras from the batch tail, singles
        // from the matrix's baseline column.
        let mut alone = AloneIpcCache::new();
        let extra_results = results.split_off(workloads.len() * ns);
        for (&b, r) in extra.iter().zip(&extra_results) {
            alone.insert(b, r.ipc0());
        }
        let base_idx = schemes
            .iter()
            .position(|&s| s == Scheme::Baseline)
            // lint: allow(panic-policy) — invariant: position() cannot fail, Baseline membership was checked above
            .expect("checked above");
        let mut per_workload: Vec<(Workload, Vec<RunResult>)> = Vec::with_capacity(workloads.len());
        let mut it = results.into_iter();
        for &w in &workloads {
            let runs: Vec<RunResult> = it.by_ref().take(ns).collect();
            if let Workload::Single(b) = w {
                alone.insert(b, runs[base_idx].ipc0());
            }
            per_workload.push((w, runs));
        }

        // Weighted IPC (mixes) or plain IPC (singles) per scheme.
        let metric = |w: Workload, r: &RunResult| -> f64 {
            if w.is_mix() {
                r.cores
                    .iter()
                    .zip(w.members())
                    .map(|(c, bench)| c.ipc / alone.ipc(bench))
                    .sum()
            } else {
                r.ipc0()
            }
        };
        let evals = per_workload
            .into_iter()
            .map(|(w, runs)| {
                let base_metric = metric(w, &runs[base_idx]);
                let speedups = runs.iter().map(|r| metric(w, r) / base_metric).collect();
                WorkloadEval {
                    workload: w,
                    runs,
                    speedups,
                }
            })
            .collect();
        MainEval {
            workloads: evals,
            stats,
        }
    }
}

impl MainEval {
    /// Starts building a main-evaluation matrix over `cfg`; by default all
    /// 16 workloads × the seven [`Scheme::MAIN_EVAL`] schemes.
    pub fn builder(cfg: &ExperimentConfig) -> MainEvalBuilder<'_> {
        MainEvalBuilder {
            cfg,
            schemes: Scheme::MAIN_EVAL.to_vec(),
            workloads: Workload::all(),
        }
    }

    /// Fig. 12: average write service time normalized to baseline.
    pub fn fig12_write_service(&self) -> FigureSeries {
        self.normalized_series("write service time", |r| r.avg_write_service().as_ns())
    }

    /// Fig. 13: average demand read latency normalized to baseline.
    pub fn fig13_read_latency(&self) -> FigureSeries {
        self.normalized_series("read latency", |r| r.avg_read_latency().as_ns())
    }

    /// Fig. 14a: additional reads from metadata maintenance (fraction of
    /// demand reads).
    pub fn fig14a_additional_reads(&self) -> FigureSeries {
        self.raw_series("additional reads", |r| r.mem.additional_read_fraction())
    }

    /// Fig. 14b: additional writes (fraction of data writes).
    pub fn fig14b_additional_writes(&self) -> FigureSeries {
        self.raw_series("additional writes", |r| r.mem.additional_write_fraction())
    }

    /// Fig. 16: speedup normalized to baseline.
    pub fn fig16_speedup(&self) -> FigureSeries {
        let schemes: Vec<Scheme> = self.schemes();
        let rows: Vec<(String, Vec<f64>)> = self
            .workloads
            .iter()
            .map(|w| (w.workload.label().to_string(), w.speedups.clone()))
            .collect();
        let average = column_means(&rows);
        FigureSeries {
            metric: "speedup".into(),
            schemes,
            rows,
            average,
        }
    }

    /// Fig. 17: dynamic energy normalized to baseline, split read/write:
    /// per workload, `(scheme, read_fraction, write_fraction)` columns.
    pub fn fig17_energy(&self) -> Vec<(String, Vec<EnergyColumn>)> {
        self.workloads
            .iter()
            .map(|w| {
                let base = &w.run(Scheme::Baseline).energy;
                let cols = w
                    .runs
                    .iter()
                    .map(|r| {
                        let (rd, wr) = r.energy.normalized_to(base);
                        (r.scheme, rd, wr)
                    })
                    .collect();
                (w.workload.label().to_string(), cols)
            })
            .collect()
    }

    /// Average normalized total energy of one scheme (the Fig. 17 summary
    /// numbers quoted in the abstract).
    pub fn avg_energy_of(&self, scheme: Scheme) -> f64 {
        let per: Vec<f64> = self
            .workloads
            .iter()
            .map(|w| {
                let base = &w.run(Scheme::Baseline).energy;
                let (rd, wr) = w.run(scheme).energy.normalized_to(base);
                rd + wr
            })
            .collect();
        per.iter().sum::<f64>() / per.len() as f64
    }

    fn schemes(&self) -> Vec<Scheme> {
        self.workloads
            .first()
            .map(|w| w.runs.iter().map(|r| r.scheme).collect())
            .unwrap_or_default()
    }

    fn normalized_series(&self, metric: &str, f: impl Fn(&RunResult) -> f64) -> FigureSeries {
        let schemes = self.schemes();
        let rows: Vec<(String, Vec<f64>)> = self
            .workloads
            .iter()
            .map(|w| {
                let base = f(w.run(Scheme::Baseline));
                let cols = w.runs.iter().map(|r| f(r) / base).collect();
                (w.workload.label().to_string(), cols)
            })
            .collect();
        let average = column_means(&rows);
        FigureSeries {
            metric: metric.into(),
            schemes,
            rows,
            average,
        }
    }

    fn raw_series(&self, metric: &str, f: impl Fn(&RunResult) -> f64) -> FigureSeries {
        let schemes = self.schemes();
        let rows: Vec<(String, Vec<f64>)> = self
            .workloads
            .iter()
            .map(|w| {
                let cols = w.runs.iter().map(&f).collect();
                (w.workload.label().to_string(), cols)
            })
            .collect();
        let average = column_means(&rows);
        FigureSeries {
            metric: metric.into(),
            schemes,
            rows,
            average,
        }
    }
}

fn column_means(rows: &[(String, Vec<f64>)]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let cols = rows[0].1.len();
    (0..cols)
        .map(|c| rows.iter().map(|(_, v)| v[c]).sum::<f64>() / rows.len() as f64)
        .collect()
}

/// One scheme's Fig. 17 bar: `(scheme, read fraction, write fraction)`,
/// both normalized to the baseline total.
pub type EnergyColumn = (Scheme, f64, f64);

/// A figure's data: one row per workload, one column per scheme, plus the
/// cross-workload average the paper's AVG bar reports.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// What the numbers measure.
    pub metric: String,
    /// Column schemes.
    pub schemes: Vec<Scheme>,
    /// `(workload, values)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Per-scheme average over workloads.
    pub average: Vec<f64>,
}

impl FigureSeries {
    /// The average value of one scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not a column.
    pub fn avg_of(&self, scheme: Scheme) -> f64 {
        let idx = self
            .schemes
            .iter()
            .position(|&s| s == scheme)
            // lint: allow(panic-policy) — caller contract: scheme must be part of the series, documented under # Panics
            .unwrap_or_else(|| panic!("scheme {scheme} not in series"));
        self.average[idx]
    }

    /// Renders the series as CSV (header row, one row per workload, AVG
    /// last) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for s in &self.schemes {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(label);
            for v in vals {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out.push_str("AVG");
        for v in &self.average {
            out.push_str(&format!(",{v:.6}"));
        }
        out.push('\n');
        out
    }

    /// Renders the series as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<9}", "workload"));
        for s in &self.schemes {
            out.push_str(&format!("{:>15}", s.name()));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:<9}"));
            for v in vals {
                out.push_str(&format!("{v:>15.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<9}", "AVG"));
        for v in &self.average {
            out.push_str(&format!("{v:>15.3}"));
        }
        out.push('\n');
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 15 — estimation accuracy.
// ---------------------------------------------------------------------------

/// Fig. 15: mean `C^w_lrs` difference (Est − accurate) per workload, with
/// and without intra-line bit shifting.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Workload label.
    pub workload: String,
    /// Mean counter difference without shifting (Fig. 15a).
    pub diff_without_shift: f64,
    /// Mean counter difference with shifting (Fig. 15b).
    pub diff_with_shift: f64,
}

/// Reproduces Fig. 15 over all 16 workloads.
///
/// The paper samples counters in steady state (500 M instructions, pages
/// fully written); to reach that state quickly the experiment drives each
/// benchmark's write stream over a densely-revisited working-set window,
/// so wordline groups accumulate their full 64 lines before most samples
/// are taken.
pub fn fig15(cfg: &ExperimentConfig, runner: &Runner) -> Vec<Fig15Row> {
    let tables = cfg.tables();
    let all = Workload::all();
    // Each (workload, shifting) cell is an independent controller feed;
    // fan the 32 of them out as one batch.
    let (diffs, _) = runner.run_jobs(all.len() * 2, |i| {
        fig15_cell(cfg, &tables, all[i / 2], i % 2 == 1)
    });
    all.iter()
        .zip(diffs.chunks_exact(2))
        .map(|(w, d)| Fig15Row {
            workload: w.label().to_string(),
            diff_without_shift: d[0],
            diff_with_shift: d[1],
        })
        .collect()
}

/// One Fig. 15 cell: mean `C^w_lrs` difference for `workload` with
/// shifting on or off. Counter values depend only on the write stream, so
/// the cell feeds writes straight into a controller without simulating
/// core timing.
fn fig15_cell(cfg: &ExperimentConfig, tables: &Tables, w: Workload, shifting: bool) -> f64 {
    use ladder_core::{LadderConfig, LadderVariant};
    use ladder_memctrl::{LadderPolicy, MemCtrlConfig, MemoryController};
    use ladder_reram::AddressMap;

    // Dense revisiting: a compact page window and an event budget that
    // rewrites each page tens of times.
    let window_pages = 768u64;
    let events_per_member = (cfg.instructions_per_core / 2).clamp(50_000, 400_000);
    let map = AddressMap::new(Geometry::default());
    let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
    lcfg.shifting = shifting;
    lcfg.track_exact = true;
    let policy = Box::new(LadderPolicy::new(lcfg, tables.ladder.clone(), map.clone()));
    let mut mc = MemoryController::new(MemCtrlConfig::default(), map, policy);
    let mut now = Instant::ZERO;
    for (core, bench) in w.members().into_iter().enumerate() {
        let (base, _) = core_window(core, &Geometry::default());
        let seed = cfg
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(core as u64 + 1);
        let mut trace = WorkloadGen::new(
            profile_of(bench),
            seed,
            base,
            window_pages,
            events_per_member,
        );
        while let Some(ev) = trace.next_event() {
            if let ladder_cpu::TraceOp::Write { addr, data } = ev.op {
                while !mc.enqueue_write(addr, *data, now) {
                    // lint: allow(panic-policy) — invariant: an unfinished controller always schedules a next wake (kernel progress invariant, DESIGN §3)
                    now = mc.next_wake(now).expect("controller progress");
                    mc.process(now);
                }
                mc.process(now);
            }
        }
    }
    mc.finish(now);
    mc.policy().cw_trace().map(|t| t.mean_diff()).unwrap_or(0.0)
}

// ---------------------------------------------------------------------------
// Section 6.4 — wear-leveling integration and lifetime.
// ---------------------------------------------------------------------------

/// Lifetime and performance of a scheme under wear-leveling.
#[derive(Debug, Clone)]
pub struct LifetimeRow {
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Write traffic relative to the baseline scheme.
    pub write_traffic_ratio: f64,
    /// Lifetime relative to the baseline scheme: inverse of the write
    /// traffic needed for the same work, under identical wear-leveling
    /// (Section 6.4's analysis).
    pub lifetime_ratio: f64,
    /// Speedup vs. baseline, both under wear-leveling.
    pub speedup_with_wl: f64,
    /// Speedup vs. baseline, both without wear-leveling.
    pub speedup_without_wl: f64,
}

/// Reproduces the Section 6.4 analysis on one workload.
pub fn lifetime(cfg: &ExperimentConfig, workload: Workload, runner: &Runner) -> Vec<LifetimeRow> {
    let tables = Arc::new(cfg.tables());
    let schemes = [
        Scheme::Baseline,
        Scheme::LadderBasic,
        Scheme::LadderEst,
        Scheme::LadderHybrid,
    ];
    let leveled = |s: Scheme| {
        SimConfig::builder()
            .scheme(s)
            .workload(workload)
            .track_wear(true)
            .wear_leveling(true)
            .build()
    };
    let mut specs: Vec<SimConfig> = schemes.iter().map(|&s| leveled(s)).collect();
    specs.extend(schemes.iter().map(|&s| SimConfig::new(s, workload)));
    let (mut results, _) = runner.run_configs(cfg, &tables, &specs);
    let without_wl = results.split_off(schemes.len());
    let with_wl = results;
    let base_writes = total_writes(&with_wl[0]);
    schemes
        .iter()
        .enumerate()
        .map(|(i, &scheme)| LifetimeRow {
            scheme,
            write_traffic_ratio: total_writes(&with_wl[i]) / base_writes,
            // Wear-leveling spreads all traffic evenly, so lifetime (in
            // units of *work the device performs before wearing out*) is
            // inversely proportional to the writes each scheme issues for
            // the same program execution — Section 6.4's analysis.
            lifetime_ratio: base_writes / total_writes(&with_wl[i]),
            speedup_with_wl: with_wl[i].ipc0() / with_wl[0].ipc0(),
            speedup_without_wl: without_wl[i].ipc0() / without_wl[0].ipc0(),
        })
        .collect()
}

fn total_writes(r: &RunResult) -> f64 {
    (r.mem.data_writes + r.mem.metadata_writes) as f64
}

// ---------------------------------------------------------------------------
// Extension — raw bit-error-rate sweep: P&V retries, ECC, and data loss.
// ---------------------------------------------------------------------------

/// One `(scheme, raw BER)` cell of the error-rate sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Raw transient bit-error rate at the worst IR-drop corner.
    pub ber: f64,
    /// IPC of core 0 under faults.
    pub ipc: f64,
    /// IPC relative to the same scheme's fault-free run (the P&V
    /// degradation).
    pub ipc_vs_fault_free: f64,
    /// Retry pulses per thousand data writes.
    pub retries_per_kilowrite: f64,
    /// Fraction of simulated time spent in verify reads and retry pulses.
    pub retry_time_frac: f64,
    /// Estimated device lifetime in seconds at the sweep's endurance
    /// budget, from the run's worst-line write rate.
    pub lifetime_s: f64,
    /// Lifetime relative to the same scheme's fault-free run.
    pub lifetime_vs_fault_free: f64,
    /// The fault model's full counters (stuck cells, ECC corrections,
    /// uncorrectable data loss, page retirements).
    pub faults: FaultStats,
}

/// Sweeps the raw bit-error rate for baseline vs. LADDER-Est/Hybrid,
/// measuring IPC degradation, retry overhead, ECC/data-loss counts, and
/// lifetime. All schemes face identical raw fault pressure (the model
/// samples against the physical LADDER table); they differ in how much a
/// retry pulse costs them.
pub fn error_rate_sweep(
    cfg: &ExperimentConfig,
    workload: Workload,
    bers: &[f64],
    runner: &Runner,
) -> Vec<FaultSweepRow> {
    let tables = Arc::new(cfg.tables());
    let schemes = [Scheme::Baseline, Scheme::LadderEst, Scheme::LadderHybrid];
    let worn = |s: Scheme| {
        SimConfig::builder()
            .scheme(s)
            .workload(workload)
            .track_wear(true)
    };
    // Fault-free controls first, then one run per (BER, scheme).
    let mut specs: Vec<SimConfig> = schemes.iter().map(|&s| worn(s).build()).collect();
    for &ber in bers {
        for &s in &schemes {
            specs.push(worn(s).faults(FaultConfig::with_ber(cfg.seed, ber)).build());
        }
    }
    let (results, _) = runner.run_configs(cfg, &tables, &specs);
    let endurance = FaultConfig::with_ber(cfg.seed, 0.0).endurance;
    let lifetime_of = |r: &RunResult| {
        r.wear
            .as_ref()
            // lint: allow(panic-policy) — invariant: fault sweeps enable wear tracking in every RunSpec they build
            .expect("wear tracking enabled")
            .with(|w| w.lifetime_seconds(endurance, r.end.duration_since(Instant::ZERO)))
    };
    let controls = &results[..schemes.len()];
    let mut rows = Vec::new();
    for (bi, &ber) in bers.iter().enumerate() {
        for (si, &scheme) in schemes.iter().enumerate() {
            let r = &results[schemes.len() + bi * schemes.len() + si];
            let control = &controls[si];
            let lifetime_s = lifetime_of(r);
            rows.push(FaultSweepRow {
                scheme,
                ber,
                ipc: r.ipc0(),
                ipc_vs_fault_free: r.ipc0() / control.ipc0(),
                retries_per_kilowrite: r.mem.retries_issued as f64 * 1000.0
                    / r.mem.data_writes.max(1) as f64,
                retry_time_frac: r.mem.retry_time.as_ps() as f64 / r.end.as_ps().max(1) as f64,
                lifetime_s,
                lifetime_vs_fault_free: lifetime_s / lifetime_of(control),
                // lint: allow(panic-policy) — invariant: fault sweeps run with the fault model installed two lines up
                faults: r.faults.expect("fault model installed"),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Section 7 — process-variability sensitivity.
// ---------------------------------------------------------------------------

/// Outcome of the shrunk-dynamic-range study.
#[derive(Debug, Clone)]
pub struct VariabilityResult {
    /// LADDER-Hybrid speedup with the full latency range.
    pub speedup_full: f64,
    /// LADDER-Hybrid speedup with the range shrunk 2×.
    pub speedup_shrunk: f64,
    /// Fraction of the performance advantage retained.
    pub retention: f64,
}

/// Reproduces the Section 7 experiment on one workload.
pub fn variability(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> VariabilityResult {
    let tables = cfg.tables();
    let shrunk = tables.shrink_dynamic_range(2.0);
    let sets = [&tables, &shrunk];
    let schemes = [Scheme::Baseline, Scheme::LadderHybrid];
    // Four independent runs: (full, shrunk) × (baseline, hybrid).
    let (runs, _) = runner.run_jobs(4, |i| {
        run_sim(&SimConfig::new(schemes[i % 2], workload), cfg, sets[i / 2])
    });
    let full = runs[1].ipc0() / runs[0].ipc0();
    let small = runs[3].ipc0() / runs[2].ipc0();
    VariabilityResult {
        speedup_full: full,
        speedup_shrunk: small,
        retention: if full > 1.0 {
            (small - 1.0) / (full - 1.0)
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            instructions_per_core: 40_000,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn workload_enumeration_matches_table3() {
        let all = Workload::all();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0].label(), "astar");
        assert_eq!(all[8].label(), "mix-1");
        assert_eq!(all[8].members().len(), 4);
        assert!(all[8].is_mix() && !all[0].is_mix());
    }

    #[test]
    fn core_windows_are_disjoint_and_above_metadata() {
        let g = Geometry::default();
        let mut prev_end = g.pages() as u64 / 16;
        for c in 0..4 {
            let (base, len) = core_window(c, &g);
            assert!(base >= prev_end);
            prev_end = base + len;
        }
        assert!(prev_end <= g.pages() as u64);
    }

    #[test]
    fn shard_seed_salt_changes_the_request_stream() {
        let cfg = tiny_cfg();
        let g = Geometry::default();
        let (mut plain, _) = shard_trace_for("astar", 0, &cfg, &g, None);
        let (mut s0, _) = shard_trace_for("astar", 0, &cfg, &g, Some(0));
        let (mut s1, _) = shard_trace_for("astar", 0, &cfg, &g, Some(1));
        let sig = |t: &mut Box<dyn TraceSource>| -> Vec<u64> {
            (0..32)
                .map_while(|_| t.next_event())
                .map(|e| match e.op {
                    ladder_cpu::TraceOp::Read { addr, .. } => addr.0,
                    ladder_cpu::TraceOp::Write { addr, .. } => addr.0,
                })
                .collect()
        };
        let (p, a, b) = (sig(&mut plain), sig(&mut s0), sig(&mut s1));
        assert_ne!(p, a, "shard 0 must not replay the monolithic stream");
        assert_ne!(a, b, "distinct shards must see distinct streams");
    }

    #[test]
    fn scheme_ordering_on_one_workload() {
        let cfg = tiny_cfg();
        let tables = cfg.tables();
        let w = Workload::Single("astar");
        let base = run_sim(&SimConfig::new(Scheme::Baseline, w), &cfg, &tables);
        let hybrid = run_sim(&SimConfig::new(Scheme::LadderHybrid, w), &cfg, &tables);
        let oracle = run_sim(&SimConfig::new(Scheme::Oracle, w), &cfg, &tables);
        // Oracle ≤ Hybrid < baseline on write service time.
        assert!(oracle.avg_write_service() <= hybrid.avg_write_service());
        assert!(hybrid.avg_write_service() < base.avg_write_service());
        // And the IPC ordering follows.
        assert!(hybrid.ipc0() > base.ipc0());
        assert!(oracle.ipc0() >= hybrid.ipc0() * 0.98);
    }

    #[test]
    fn fig2_normalizes_to_baseline() {
        let mut cfg = tiny_cfg();
        cfg.instructions_per_core = 25_000;
        let rows = fig2(&cfg, &Runner::with_jobs(2));
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.location_aware >= 0.9, "{}: {}", r.bench, r.location_aware);
            assert!(
                r.data_location_aware >= r.location_aware * 0.98,
                "{}: content-awareness must not lose to location-only",
                r.bench
            );
        }
    }

    #[test]
    fn main_eval_builder_restricts_schemes_and_workloads() {
        let mut cfg = tiny_cfg();
        cfg.instructions_per_core = 25_000;
        let eval = MainEval::builder(&cfg)
            .schemes(&[Scheme::Baseline, Scheme::LadderHybrid])
            .workloads(&[Workload::Single("astar"), Workload::Mix("mix-1")])
            .run(&Runner::with_jobs(2));
        assert_eq!(eval.workloads.len(), 2);
        assert_eq!(eval.workloads[0].runs.len(), 2);
        // Matrix (2×2) plus alone-run baselines for mix-1's members that
        // are not evaluated as singles.
        assert!(eval.stats.jobs > 4, "stats cover the whole batch");
        let base = eval.workloads[0].speedup(Scheme::Baseline);
        assert!((base - 1.0).abs() < 1e-12, "baseline normalizes to 1.0");
        assert!(eval.workloads[1].speedup(Scheme::LadderHybrid) > 1.0);
    }

    #[test]
    #[should_panic(expected = "requires Scheme::Baseline")]
    fn main_eval_builder_requires_baseline() {
        let cfg = tiny_cfg();
        MainEval::builder(&cfg)
            .schemes(&[Scheme::LadderHybrid])
            .run(&Runner::sequential());
    }

    #[test]
    fn figure_series_table_renders() {
        let s = FigureSeries {
            metric: "x".into(),
            schemes: vec![Scheme::Baseline, Scheme::Oracle],
            rows: vec![("w1".into(), vec![1.0, 0.5])],
            average: vec![1.0, 0.5],
        };
        let t = s.to_table();
        assert!(t.contains("baseline"));
        assert!(t.contains("AVG"));
        assert!((s.avg_of(Scheme::Oracle) - 0.5).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Section 7 — crash consistency: lazy LRS-metadata correction.
// ---------------------------------------------------------------------------

/// Outcome of the crash-recovery timing study.
#[derive(Debug, Clone)]
pub struct CrashRecoveryResult {
    /// Mean `tWR` (ns) over write windows before the crash.
    pub steady_twr_ns: f64,
    /// Mean `tWR` (ns) per window of writes after the crash, in order.
    pub post_crash_windows_ns: Vec<f64>,
}

/// Measures how write latencies recover after a power failure wipes the
/// metadata cache and lazy correction saturates the metadata region
/// (paper Section 7): the first post-crash writes pay worst-case-content
/// timings, then estimates re-tighten as lines are rewritten.
pub fn crash_recovery(cfg: &ExperimentConfig, bench: &'static str) -> CrashRecoveryResult {
    use ladder_core::{LadderConfig, LadderVariant};
    use ladder_memctrl::{LadderPolicy, MemCtrlConfig, MemoryController};
    use ladder_reram::AddressMap;

    let tables = cfg.tables();
    let map = AddressMap::new(Geometry::default());
    let policy = Box::new(LadderPolicy::new(
        LadderConfig::for_variant(LadderVariant::Est),
        tables.ladder.clone(),
        map.clone(),
    ));
    let mut mc = MemoryController::new(MemCtrlConfig::default(), map, policy);
    let (base, _) = core_window(0, &Geometry::default());
    // A compact, heavily revisited window so post-crash rewrites actually
    // re-tighten the same pages being measured.
    let mut gen = WorkloadGen::new(profile_of(bench), cfg.seed, base, 384, 800_000);
    let mut now = Instant::ZERO;
    let window = 500u64;
    let mut feed = |mc: &mut MemoryController, now: &mut Instant, n_writes: u64| -> f64 {
        let before = (mc.stats().t_wr_data, mc.stats().data_writes);
        let mut fed = 0;
        while fed < n_writes {
            let Some(ev) = gen.next_event() else { break };
            if let ladder_cpu::TraceOp::Write { addr, data } = ev.op {
                while !mc.enqueue_write(addr, *data, *now) {
                    // lint: allow(panic-policy) — invariant: an unfinished controller always schedules a next wake (kernel progress invariant, DESIGN §3)
                    *now = mc.next_wake(*now).expect("controller progress");
                    mc.process(*now);
                }
                mc.process(*now);
                fed += 1;
            }
        }
        *now = mc.finish(*now);
        let dt = (mc.stats().t_wr_data - before.0).as_ns();
        let dn = mc.stats().data_writes - before.1;
        if dn == 0 {
            0.0
        } else {
            dt / dn as f64
        }
    };
    // Steady state: enough warm windows to fill the working set; use the
    // last as the reference.
    let mut steady = 0.0;
    for _ in 0..40 {
        steady = feed(&mut mc, &mut now, window);
    }
    // Power failure + lazy correction. Full convergence needs every line
    // of a page rewritten (~64 writes/page), so post windows are wider.
    mc.crash_recover();
    let post: Vec<f64> = (0..24)
        .map(|_| feed(&mut mc, &mut now, window * 4))
        .collect();
    CrashRecoveryResult {
        steady_twr_ns: steady,
        post_crash_windows_ns: post,
    }
}

// ---------------------------------------------------------------------------
// Extension (paper Section 8): hot-page remapping to low-latency rows.
// ---------------------------------------------------------------------------

/// Result of the hot-page remapping extension study.
#[derive(Debug, Clone)]
pub struct HotRemapResult {
    /// LADDER-Hybrid speedup over baseline, no remapping.
    pub ladder_speedup: f64,
    /// LADDER-Hybrid + hot-page remapping speedup over the same baseline.
    pub ladder_remap_speedup: f64,
    /// Mean write-recovery time without remapping (ns).
    pub twr_ladder_ns: f64,
    /// Mean write-recovery time with remapping (ns).
    pub twr_remap_ns: f64,
}

/// Evaluates the paper's future-work idea of combining LADDER with
/// adaptive remapping of write-hot pages into bottom (fast) rows
/// (Leader/Aliens style, the paper's references 62 and 51).
pub fn hot_remap_extension(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> HotRemapResult {
    use ladder_wear::HotPageRemapper;

    let tables = cfg.tables();
    // Frames: data pages in the lowest 32 wordlines, outside the cores'
    // windows so no workload data is displaced.
    let geometry = Geometry::default();
    let wl_div = geometry.total_banks() as u64;
    let window_base = geometry.pages() as u64 / 16;
    let frames: Vec<u64> = (0..geometry.pages() as u64)
        .filter(|&p| (p / wl_div) % (geometry.mat_rows as u64) < 32 && p < window_base)
        .take(4096)
        .collect();
    let (runs, _) = runner.run_jobs(3, |i| match i {
        0 => run_sim(&SimConfig::new(Scheme::Baseline, workload), cfg, &tables),
        1 => run_sim(
            &SimConfig::new(Scheme::LadderHybrid, workload),
            cfg,
            &tables,
        ),
        _ => {
            let mut b = SystemBuilder::with_tables(Scheme::LadderHybrid, &tables);
            for (core, bench) in workload.members().into_iter().enumerate() {
                let (trace, mlp) = trace_for(bench, core, cfg);
                b.core(trace, mlp);
            }
            b.leveler(Box::new(HotPageRemapper::new(frames.clone(), 400)));
            b.run()
        }
    });
    let (base, plain, remapped) = (&runs[0], &runs[1], &runs[2]);
    let twr = |r: &RunResult| {
        if r.mem.data_writes == 0 {
            0.0
        } else {
            r.mem.t_wr_data.as_ns() / r.mem.data_writes as f64
        }
    };
    HotRemapResult {
        ladder_speedup: plain.ipc0() / base.ipc0(),
        ladder_remap_speedup: remapped.ipc0() / base.ipc0(),
        twr_ladder_ns: twr(plain),
        twr_remap_ns: twr(remapped),
    }
}

// ---------------------------------------------------------------------------
// Extension — multi-year lifetime campaign: skew × BER × remap × coding.
// ---------------------------------------------------------------------------

/// Mean-tropical-year seconds, for converting extrapolated device
/// lifetimes into the figure's device-years unit.
const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Sweep axes and scale of the multi-year lifetime campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Zipfian key-skew values (`theta` in (0,1), 0 = uniform) driving the
    /// open-loop tenant streams — the campaign's write-skew axis.
    pub skews: Vec<f64>,
    /// Raw worst-corner transient bit-error rates to sweep.
    pub bers: Vec<f64>,
    /// Remap backends to sweep.
    pub remaps: Vec<RemapKind>,
    /// Code schemes to sweep.
    pub codings: Vec<CodingKind>,
    /// Open-loop requests per shard per cell.
    pub requests: u64,
    /// Offered load in requests/µs per shard.
    pub load: f64,
    /// Sharded topology every cell runs over.
    pub topology: Topology,
    /// Write scheme under test (fixed across the sweep; the campaign's
    /// axes are the reliability knobs, not the write path).
    pub scheme: Scheme,
}

impl CampaignSpec {
    /// The shipped figure: 2 skews × 3 BERs × both remap backends × all
    /// three code schemes over a 2×2 topology. `quick` scales the
    /// per-cell request count down to smoke-run size.
    pub fn standard(quick: bool) -> Self {
        Self {
            skews: vec![0.2, 0.99],
            bers: vec![1e-4, 1e-3, 5e-3],
            remaps: RemapKind::ALL.to_vec(),
            codings: CodingKind::ALL.to_vec(),
            requests: if quick { 600 } else { 8_000 },
            load: 4.0,
            // lint: allow(panic-policy) — static 2x2 literal is always a valid topology
            topology: Topology::new(2, 2).expect("static 2x2 topology"),
            scheme: Scheme::LadderEst,
        }
    }

    /// Number of sweep cells this spec describes.
    pub fn cells(&self) -> usize {
        self.skews.len() * self.bers.len() * self.remaps.len() * self.codings.len()
    }
}

/// One `(skew, BER, remap, coding)` cell of the lifetime campaign.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Zipfian key skew of the request stream.
    pub skew: f64,
    /// Raw worst-corner transient bit-error rate.
    pub ber: f64,
    /// Remap backend the cell ran with.
    pub remap: RemapKind,
    /// Code scheme the cell ran with.
    pub coding: CodingKind,
    /// Projected device lifetime in years under deployed wear-leveling:
    /// the perfectly-leveled bound (endurance × data lines ÷ write rate)
    /// derated by the measured wear unevenness (worst line over mean —
    /// the concentration a leveler must fight) and by the code scheme's
    /// parity write amplification.
    pub device_years: f64,
    /// The worst shard's measured wear unevenness (worst-line writes over
    /// the mean; 1.0 = perfectly level).
    pub unevenness: f64,
    /// Median demand-read latency (ns) — the scheme's latency overhead
    /// floor.
    pub p50_read_ns: f64,
    /// Tail demand-read latency (ns) — what retry escalation costs.
    pub p99_read_ns: f64,
    /// Folded coding-layer counters for the cell.
    pub coding_stats: CodingStats,
    /// Folded fault-model counters for the cell.
    pub faults: FaultStats,
}

impl CampaignRow {
    /// Column header matching [`Self::csv_line`].
    pub const CSV_HEADER: &'static str = "skew,ber,remap,coding,device_years,unevenness,\
p50_read_ns,p99_read_ns,corrected_bits,uncorrectable_lines,remaps,write_amplification";

    /// The row as one CSV line (stable column order, no trailing newline).
    pub fn csv_line(&self) -> String {
        format!(
            "{},{:e},{},{},{:.3},{:.2},{:.1},{:.1},{},{},{},{:.6}",
            self.skew,
            self.ber,
            self.remap.name(),
            self.coding.name(),
            self.device_years,
            self.unevenness,
            self.p50_read_ns,
            self.p99_read_ns,
            self.coding_stats.total_corrected_bits(),
            self.coding_stats.total_uncorrectable(),
            self.coding_stats.remaps,
            self.coding_stats.write_amplification(),
        )
    }
}

/// Runs the multi-year lifetime campaign: every `(skew, BER, remap,
/// coding)` cell is one sharded open-loop run over `spec.topology` with
/// wear tracking and the fault model installed, folded bit-reproducibly
/// at any `--jobs`.
///
/// Device lifetime is projected for a deployed module: the
/// perfectly-leveled bound `endurance × data lines ÷ device write rate`
/// (endurance at the nominal [`FaultConfig::new`] budget, not the sweep's
/// accelerated one), divided by the worst shard's measured wear
/// *unevenness* (worst-line writes over the mean — the concentration a
/// deployed leveler has to fight, which grows with skew) and by
/// `1 + WA` for the code scheme's parity traffic (parity writes wear
/// cells exactly like data writes).
pub fn lifetime_campaign(
    cfg: &ExperimentConfig,
    spec: &CampaignSpec,
    runner: &Runner,
) -> Vec<CampaignRow> {
    let tables = cfg.tables();
    // Nominal per-cell endurance for the projection; the fault model
    // itself runs at `with_ber`'s accelerated budget so wear-out events
    // are observable inside the window.
    let nominal_endurance = FaultConfig::new(cfg.seed).endurance;
    let shard_geometry = spec.topology.shard_geometry(&Geometry::default());
    // Writable data region: everything above the 1/16 metadata reserve.
    let data_pages = shard_geometry.pages() as u64 * spec.topology.shards() as u64 * 15 / 16;
    let data_lines = data_pages * LINES_PER_WLG as u64;
    let mut rows = Vec::with_capacity(spec.cells());
    for &skew in &spec.skews {
        for &ber in &spec.bers {
            for &remap in &spec.remaps {
                for &coding in &spec.codings {
                    let service = ServiceConfig::builder()
                        .load(spec.load)
                        .zipf_theta(skew)
                        .requests(spec.requests)
                        .build();
                    let fcfg = FaultConfig::with_ber(cfg.seed, ber);
                    let sim = SimConfig::builder()
                        .scheme(spec.scheme)
                        .service(service)
                        .topology(spec.topology)
                        .track_wear(true)
                        .faults(fcfg)
                        .coding(coding)
                        .remap(remap)
                        .build();
                    let run = run_sharded(&sim, cfg, &tables, runner);
                    // Device write rate over the run, and the worst
                    // shard's wear concentration (the device dies at its
                    // most uneven spot).
                    let total_writes: u64 = run
                        .shards
                        .iter()
                        .map(|r| {
                            r.wear
                                .as_ref()
                                // lint: allow(panic-policy) — invariant: the campaign enables wear tracking in every config it builds
                                .expect("campaign enables wear tracking")
                                .with(|w| w.total_writes())
                        })
                        .sum();
                    let unevenness = run
                        .shards
                        .iter()
                        .map(|r| {
                            r.wear
                                .as_ref()
                                // lint: allow(panic-policy) — invariant: the campaign enables wear tracking in every config it builds
                                .expect("campaign enables wear tracking")
                                .with(|w| w.unevenness())
                        })
                        .fold(1.0_f64, f64::max);
                    let elapsed_s = run.end.duration_since(Instant::ZERO).as_ps() as f64 * 1e-12;
                    let rate = total_writes as f64 / elapsed_s;
                    let leveled_secs = nominal_endurance as f64 * data_lines as f64 / rate;
                    let coding_stats = run.coding.unwrap_or_default();
                    let wa = coding_stats.write_amplification();
                    rows.push(CampaignRow {
                        skew,
                        ber,
                        remap,
                        coding,
                        device_years: leveled_secs / unevenness / (1.0 + wa) / SECONDS_PER_YEAR,
                        unevenness,
                        p50_read_ns: run.read_histogram.percentile(0.50).as_ns(),
                        p99_read_ns: run.read_histogram.percentile(0.99).as_ns(),
                        coding_stats,
                        faults: run.faults.unwrap_or_default(),
                    });
                }
            }
        }
    }
    rows
}
