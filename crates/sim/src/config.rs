//! The topology-aware simulation configuration: [`SimConfig`] and its
//! builder — the single front door for launching simulations.
//!
//! A [`SimConfig`] names the scheme and workload of a run plus everything
//! that modifies it: an optional sharded [`Topology`], the address
//! [`Interleave`] policy, wear/fault/tracing options. Monolithic runs
//! (no topology) go through [`run_sim`]; sharded runs go through
//! [`crate::shard::run_sharded`], which spawns one controller per channel
//! and folds the shards deterministically.
//!
//! Construction goes through [`SimConfig::builder`] — the struct is
//! `#[non_exhaustive]`, so new knobs can be added without breaking
//! callers, and the `flat-options` lint keeps struct literals out of the
//! rest of the workspace.

use crate::experiments::{shard_trace_for, ExperimentConfig, Workload};
use crate::scheme::Scheme;
use crate::service::{feed_for, ServiceConfig};
use crate::system::{RunResult, SystemBuilder};
use ladder_coding::CodingKind;
use ladder_faults::FaultConfig;
use ladder_memctrl::Tables;
use ladder_reram::{Geometry, Interleave, QueueBackend, Topology};
use ladder_wear::{RemapKind, SegmentVwl};

/// Full description of one simulation: scheme, workload, topology and
/// every run-modifying option.
///
/// Build with [`SimConfig::builder`] (or [`SimConfig::new`] for a plain
/// `(scheme, workload)` cell):
///
/// ```
/// use ladder_sim::{Scheme, SimConfig};
/// use ladder_sim::experiments::Workload;
///
/// let cfg = SimConfig::builder()
///     .scheme(Scheme::LadderEst)
///     .workload(Workload::Single("astar"))
///     .topology("4x2".parse().unwrap())
///     .trace(true)
///     .build();
/// assert_eq!(cfg.topology.unwrap().channels, 4);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The write scheme under test.
    pub scheme: Scheme,
    /// The workload driving the cores.
    pub workload: Workload,
    /// Sharded topology: `Some(CxR)` runs one controller per channel
    /// ([`crate::shard::run_sharded`]); `None` is the paper's monolithic
    /// single-controller configuration.
    pub topology: Option<Topology>,
    /// Address striping policy (default: the legacy channel-fastest
    /// order).
    pub interleave: Interleave,
    /// Track per-write exact counters (Fig. 15).
    pub track_exact: bool,
    /// Track per-line wear (Section 6.4).
    pub track_wear: bool,
    /// Wrap addresses with segment-based vertical wear-leveling and
    /// horizontal byte rotation (Section 6.4).
    pub wear_leveling: bool,
    /// Install the device fault model (stuck-at + transient write
    /// failures, P&V retries, ECC/remap recovery).
    pub faults: Option<FaultConfig>,
    /// Code scheme consulted by the fault model's resolve path. The
    /// default, [`CodingKind::Flat`], is the legacy flat-ECC budget —
    /// byte-identical to runs predating this knob. Only meaningful when
    /// `faults` is set.
    pub coding: CodingKind,
    /// Remap backend absorbing faulty pages. The default,
    /// [`RemapKind::Retire`], is the legacy one-way retirement pool —
    /// byte-identical to runs predating this knob. Only meaningful when
    /// `faults` is set.
    pub remap: RemapKind,
    /// Event-queue backend driving the kernel. Both backends pop in the
    /// same deterministic order, so results are bit-identical either way;
    /// [`QueueBackend::Heap`] is the reference path used by differential
    /// tests, [`QueueBackend::Calendar`] (default) the fast path.
    pub queue: QueueBackend,
    /// Capture a structured trace ([`RunResult::trace`]).
    pub trace: bool,
    /// Open-loop service mode: `Some` replaces the closed-loop cores with
    /// a timestamped multi-tenant request stream
    /// ([`crate::service::ServiceConfig`]); the `workload` field is then
    /// unused. `None` is the legacy closed-loop path, byte-compatible
    /// with the golden digests.
    pub service: Option<ServiceConfig>,
}

impl SimConfig {
    /// Starts a builder with the defaults: baseline scheme, `astar`
    /// single workload, monolithic topology, channel interleave, no
    /// tracking, no faults, no trace.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig {
                scheme: Scheme::Baseline,
                workload: Workload::Single("astar"),
                topology: None,
                interleave: Interleave::Channel,
                track_exact: false,
                track_wear: false,
                wear_leveling: false,
                faults: None,
                coding: CodingKind::Flat,
                remap: RemapKind::Retire,
                queue: QueueBackend::Calendar,
                trace: false,
                service: None,
            },
        }
    }

    /// A plain `(scheme, workload)` cell with every option at its
    /// default — the common case of evaluation matrices.
    pub fn new(scheme: Scheme, workload: Workload) -> Self {
        Self::builder().scheme(scheme).workload(workload).build()
    }

    /// Number of independent simulations this config describes: the shard
    /// count of its topology, or 1 for a monolithic run.
    pub fn shards(&self) -> usize {
        self.topology.map(|t| t.shards()).unwrap_or(1)
    }
}

/// Builder for [`SimConfig`] — see [`SimConfig::builder`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the write scheme under test.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the workload driving the cores.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.cfg.workload = workload;
        self
    }

    /// Requests a sharded `channels × ranks` run (one controller and
    /// event stream per channel).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = Some(topology);
        self
    }

    /// Sets the address striping policy.
    pub fn interleave(mut self, interleave: Interleave) -> Self {
        self.cfg.interleave = interleave;
        self
    }

    /// Tracks per-write exact counters (Fig. 15).
    pub fn track_exact(mut self, on: bool) -> Self {
        self.cfg.track_exact = on;
        self
    }

    /// Tracks per-line wear (Section 6.4).
    pub fn track_wear(mut self, on: bool) -> Self {
        self.cfg.track_wear = on;
        self
    }

    /// Enables segment-based vertical wear-leveling plus horizontal byte
    /// rotation (Section 6.4).
    pub fn wear_leveling(mut self, on: bool) -> Self {
        self.cfg.wear_leveling = on;
        self
    }

    /// Installs the device fault model.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = Some(faults);
        self
    }

    /// Selects the code scheme the fault model resolves residues with
    /// (default: the legacy flat-ECC budget).
    pub fn coding(mut self, kind: CodingKind) -> Self {
        self.cfg.coding = kind;
        self
    }

    /// Selects the remap backend absorbing faulty pages (default: the
    /// legacy one-way retirement pool).
    pub fn remap(mut self, kind: RemapKind) -> Self {
        self.cfg.remap = kind;
        self
    }

    /// Selects the kernel event-queue backend (default: the calendar
    /// queue; the heap is the reference for differential tests).
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.cfg.queue = backend;
        self
    }

    /// Captures a structured trace ([`RunResult::trace`]).
    pub fn trace(mut self, on: bool) -> Self {
        self.cfg.trace = on;
        self
    }

    /// Selects open-loop service mode: the run is driven by `service`'s
    /// timestamped multi-tenant request stream instead of closed-loop
    /// cores, and the result carries per-tenant latency statistics.
    pub fn service(mut self, service: ServiceConfig) -> Self {
        self.cfg.service = Some(service);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

/// Assembles the [`SystemBuilder`] for one simulation of `cfg` over
/// `geometry` — the shared setup of the monolithic and sharded paths.
/// `shard` stamps a shard identity into the run (workload seeds and, when
/// tracing, the trace record stream).
pub(crate) fn builder_for(
    cfg: &SimConfig,
    ecfg: &ExperimentConfig,
    tables: &Tables,
    geometry: Geometry,
    shard: Option<u32>,
) -> SystemBuilder {
    let mut b = SystemBuilder::with_tables(cfg.scheme, tables);
    b.geometry(geometry.clone());
    b.interleave(cfg.interleave);
    if let Some(s) = shard {
        b.shard(s);
    }
    if let Some(scfg) = &cfg.service {
        b.service(feed_for(scfg, ecfg, &geometry, shard));
    } else {
        for (core, bench) in cfg.workload.members().into_iter().enumerate() {
            let (trace, mlp) = shard_trace_for(bench, core, ecfg, &geometry, shard);
            b.core(trace, mlp);
        }
    }
    b.track_exact(cfg.track_exact);
    b.track_wear(cfg.track_wear);
    if cfg.wear_leveling {
        b.leveler(make_leveler(ecfg, &geometry));
        b.horizontal_leveling(true);
    }
    if let Some(fcfg) = cfg.faults {
        b.faults(fcfg);
        b.coding(cfg.coding);
        b.remap(cfg.remap);
    }
    b.queue(cfg.queue);
    b.tracing(cfg.trace);
    b
}

/// Segment-based VWL over the data region of `geometry`: 16 MB segments
/// (4096 pages), swapping every 100k writes.
fn make_leveler(ecfg: &ExperimentConfig, geometry: &Geometry) -> Box<SegmentVwl> {
    let total = geometry.pages() as u64;
    let base = total / 16;
    let pages_per_segment = 4096;
    let segments = (total - base) / pages_per_segment;
    Box::new(SegmentVwl::new(
        base,
        segments,
        pages_per_segment,
        100_000,
        ecfg.seed,
    ))
}

/// Runs one monolithic (single-controller) simulation described by `cfg`.
///
/// This is the topology-free entry point — the replacement for the old
/// positional `run_one(scheme, workload, cfg, tables, opts)` call. Sharded
/// configurations go through [`crate::shard::run_sharded`].
///
/// # Panics
///
/// Panics if `cfg.topology` is set: a sharded run produces one result per
/// shard and must be launched through the sharded runner.
pub fn run_sim(cfg: &SimConfig, ecfg: &ExperimentConfig, tables: &Tables) -> RunResult {
    assert!(
        cfg.topology.is_none(),
        "run_sim is the monolithic path; run topology {} through shard::run_sharded",
        cfg.topology.map(|t| t.to_string()).unwrap_or_default()
    );
    builder_for(cfg, ecfg, tables, Geometry::default(), None).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_the_monolithic_baseline() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.scheme, Scheme::Baseline);
        assert_eq!(cfg.workload, Workload::Single("astar"));
        assert!(cfg.topology.is_none());
        assert_eq!(cfg.interleave, Interleave::Channel);
        assert!(!cfg.track_exact && !cfg.track_wear && !cfg.wear_leveling);
        assert!(cfg.faults.is_none() && !cfg.trace);
        assert_eq!(cfg.coding, CodingKind::Flat);
        assert_eq!(cfg.remap, RemapKind::Retire);
        assert_eq!(cfg.queue, QueueBackend::Calendar);
        assert!(cfg.service.is_none());
        assert_eq!(cfg.shards(), 1);
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = SimConfig::builder()
            .scheme(Scheme::LadderHybrid)
            .workload(Workload::Mix("mix-1"))
            .topology(Topology::new(4, 2).unwrap())
            .interleave(Interleave::Page)
            .track_exact(true)
            .track_wear(true)
            .wear_leveling(true)
            .faults(FaultConfig::with_ber(7, 1e-5))
            .coding(CodingKind::TieredBch)
            .remap(RemapKind::Pad)
            .queue(QueueBackend::Heap)
            .trace(true)
            .service(ServiceConfig::builder().load(6.0).build())
            .build();
        assert_eq!(cfg.scheme, Scheme::LadderHybrid);
        assert_eq!(cfg.shards(), 4);
        assert_eq!(cfg.interleave, Interleave::Page);
        assert!(cfg.track_exact && cfg.track_wear && cfg.wear_leveling && cfg.trace);
        assert!(cfg.faults.is_some());
        assert_eq!(cfg.coding, CodingKind::TieredBch);
        assert_eq!(cfg.remap, RemapKind::Pad);
        assert_eq!(cfg.queue, QueueBackend::Heap);
        assert_eq!(cfg.service.unwrap().load, 6.0);
    }

    #[test]
    #[should_panic(expected = "monolithic path")]
    fn run_sim_rejects_sharded_configs() {
        let cfg = SimConfig::builder()
            .topology(Topology::new(2, 2).unwrap())
            .build();
        let ecfg = ExperimentConfig::quick();
        let tables = ecfg.tables();
        let _ = run_sim(&cfg, &ecfg, &tables);
    }
}
