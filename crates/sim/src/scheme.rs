//! The write schemes under comparison and their construction.

use ladder_baselines::SplitReset;
use ladder_core::{LadderConfig, LadderVariant};
use ladder_memctrl::{
    BlpPolicy, FixedWorstPolicy, LadderPolicy, LocationAwarePolicy, OraclePolicy, SplitResetPolicy,
    WritePolicy,
};
use ladder_reram::AddressMap;
use ladder_xbar::{CrossbarParams, TimingTable};

/// Every scheme evaluated in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Fixed worst-case `tWR` (the paper's baseline).
    Baseline,
    /// Location-dependent `tWR`, worst-case content assumed (Fig. 2).
    LocationAware,
    /// Split-reset (Xu et al., HPCA'15).
    SplitReset,
    /// Bitline-pattern profiling (Wen et al., TCAD'19).
    Blp,
    /// LADDER with exact counters.
    LadderBasic,
    /// LADDER with partial-counter estimation and bit shifting.
    LadderEst,
    /// LADDER-Est with multi-granularity counters.
    LadderHybrid,
    /// Exact counters known for free (upper bound).
    Oracle,
}

impl Scheme {
    /// The seven schemes of the main evaluation, in the paper's bar order.
    pub const MAIN_EVAL: [Scheme; 7] = [
        Scheme::Baseline,
        Scheme::SplitReset,
        Scheme::Blp,
        Scheme::LadderBasic,
        Scheme::LadderEst,
        Scheme::LadderHybrid,
        Scheme::Oracle,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::LocationAware => "Location-aware",
            Scheme::SplitReset => "Split-reset",
            Scheme::Blp => "BLP",
            Scheme::LadderBasic => "LADDER-Basic",
            Scheme::LadderEst => "LADDER-Est",
            Scheme::LadderHybrid => "LADDER-Hybrid",
            Scheme::Oracle => "Oracle",
        }
    }

    /// Builds the policy object for this scheme.
    ///
    /// `ladder_table` must use the wordline content axis and `blp_table`
    /// the bitline axis; both must share one device latency law.
    /// `track_exact` enables the per-write exact-counter trace (Fig. 15).
    pub fn build_policy(
        self,
        params: &CrossbarParams,
        ladder_table: &TimingTable,
        blp_table: &TimingTable,
        map: &AddressMap,
        track_exact: bool,
    ) -> Box<dyn WritePolicy> {
        self.build_policy_with(params, ladder_table, blp_table, map, track_exact, None)
    }

    /// Like [`Scheme::build_policy`], with an optional LADDER configuration
    /// override (ablation studies: cache size, shifting, FNW variant,
    /// low-precision rows). The override's `variant` field is replaced by
    /// this scheme's variant.
    pub fn build_policy_with(
        self,
        params: &CrossbarParams,
        ladder_table: &TimingTable,
        blp_table: &TimingTable,
        map: &AddressMap,
        track_exact: bool,
        ladder_override: Option<LadderConfig>,
    ) -> Box<dyn WritePolicy> {
        let ladder = |variant: LadderVariant| -> Box<dyn WritePolicy> {
            let mut cfg = match &ladder_override {
                Some(c) => {
                    let mut c = c.clone();
                    c.variant = variant;
                    c
                }
                None => LadderConfig::for_variant(variant),
            };
            cfg.track_exact = track_exact;
            Box::new(LadderPolicy::new(cfg, ladder_table.clone(), map.clone()))
        };
        match self {
            Scheme::Baseline => Box::new(FixedWorstPolicy::new(ladder_table)),
            Scheme::LocationAware => {
                Box::new(LocationAwarePolicy::new(ladder_table.clone(), map.clone()))
            }
            Scheme::SplitReset => Box::new(SplitResetPolicy::new(SplitReset::new(
                params,
                ladder_table.law(),
            ))),
            Scheme::Blp => Box::new(BlpPolicy::new(blp_table.clone(), map.clone())),
            Scheme::LadderBasic => ladder(LadderVariant::Basic),
            Scheme::LadderEst => ladder(LadderVariant::Est),
            Scheme::LadderHybrid => ladder(LadderVariant::Hybrid),
            Scheme::Oracle => Box::new(OraclePolicy::new(ladder_table.clone(), map.clone())),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_memctrl::standard_tables;
    use ladder_reram::Geometry;
    use ladder_xbar::TableConfig;

    #[test]
    fn every_scheme_constructs() {
        let cfg = TableConfig::ladder_default();
        let t = standard_tables(&cfg);
        let (ladder, blp) = (t.ladder, t.blp);
        let map = AddressMap::new(Geometry::default());
        for s in [
            Scheme::Baseline,
            Scheme::LocationAware,
            Scheme::SplitReset,
            Scheme::Blp,
            Scheme::LadderBasic,
            Scheme::LadderEst,
            Scheme::LadderHybrid,
            Scheme::Oracle,
        ] {
            let p = s.build_policy(&cfg.params, &ladder, &blp, &map, false);
            assert_eq!(p.name().to_lowercase(), s.name().to_lowercase());
        }
    }

    #[test]
    fn main_eval_order_matches_paper_legend() {
        let names: Vec<_> = Scheme::MAIN_EVAL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "baseline",
                "Split-reset",
                "BLP",
                "LADDER-Basic",
                "LADDER-Est",
                "LADDER-Hybrid",
                "Oracle"
            ]
        );
    }
}
