//! Full-system simulation and the paper's experiments.
//!
//! This crate assembles the substrates — crossbar timing tables
//! (`ladder-xbar`), the memory controller and scheme policies
//! (`ladder-memctrl`), cores (`ladder-cpu`), synthetic workloads
//! (`ladder-workloads`), energy (`ladder-energy`) and wear (`ladder-wear`)
//! — into runnable systems, and exposes one function per paper table or
//! figure in [`experiments`].

pub mod ablations;
pub mod experiments;
pub mod overhead;
pub mod runner;
mod scheme;
mod system;
pub mod wallclock;

pub use runner::{default_jobs, AloneIpcCache, RunSpec, Runner, RunnerStats};
pub use scheme::Scheme;
pub use system::{CoreResult, EventCounts, RunResult, SystemBuilder};
