//! Full-system simulation and the paper's experiments.
//!
//! This crate assembles the substrates — crossbar timing tables
//! (`ladder-xbar`), the memory controller and scheme policies
//! (`ladder-memctrl`), cores (`ladder-cpu`), synthetic workloads
//! (`ladder-workloads`), energy (`ladder-energy`) and wear (`ladder-wear`)
//! — into runnable systems, and exposes one function per paper table or
//! figure in [`experiments`].
//!
//! The front door is the topology-aware [`SimConfig`] builder: a
//! monolithic (single-controller) config runs through [`run_sim`], and a
//! sharded `channels × ranks` [`Topology`] runs through [`run_sharded`],
//! which folds the per-channel shards bit-reproducibly at any `--jobs`.

pub mod ablations;
pub mod config;
pub mod experiments;
pub mod overhead;
pub mod runner;
mod scheme;
pub mod service;
pub mod shard;
mod system;
pub mod wallclock;

pub use config::{run_sim, SimConfig, SimConfigBuilder};
pub use runner::{default_jobs, AloneIpcCache, Runner, RunnerStats};
pub use scheme::Scheme;
pub use service::{ArrivalKind, ServiceConfig, ServiceConfigBuilder, ServiceStats};
pub use shard::{run_sharded, ShardedRun};
pub use system::{CoreResult, EventCounts, RunResult, SystemBuilder};

// Re-exported so bench binaries can parse and build topologies without
// depending on ladder-reram directly.
pub use ladder_reram::{Interleave, QueueBackend, Topology};

// Re-exported so bench binaries can sweep coding schemes and remap
// backends without depending on ladder-coding / ladder-wear directly.
pub use ladder_coding::{CodingKind, CodingStats};
pub use ladder_wear::RemapKind;
