//! Work-stealing parallel experiment runner.
//!
//! Every experiment in this crate is a matrix of fully independent,
//! deterministic simulations — the paper runs them as separate gem5
//! instances, and nothing here shares mutable state between cells. The
//! [`Runner`] exploits that: it takes a list of [`SimConfig`] jobs, fans
//! them out over `jobs` worker threads with an atomic work-stealing
//! cursor, and returns results **in submission order**, so the output of
//! a parallel run is byte-identical to the sequential path.
//!
//! ```no_run
//! use ladder_sim::experiments::ExperimentConfig;
//! use ladder_sim::{Runner, Scheme, SimConfig};
//! use ladder_sim::experiments::Workload;
//! use std::sync::Arc;
//!
//! let cfg = ExperimentConfig::quick();
//! let tables = Arc::new(cfg.tables());
//! let runner = Runner::new();
//! let configs = vec![
//!     SimConfig::new(Scheme::Baseline, Workload::Single("astar")),
//!     SimConfig::new(Scheme::LadderHybrid, Workload::Single("astar")),
//! ];
//! let (results, stats) = runner.run_configs(&cfg, &tables, &configs);
//! assert_eq!(results.len(), 2);
//! eprintln!("{}", stats.summary());
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use ladder_memctrl::Tables;
use ladder_reram::Picos;

use crate::config::{run_sim, SimConfig};
use crate::experiments::{ExperimentConfig, Workload};
use crate::scheme::Scheme;
use crate::system::{EventCounts, RunResult};

/// Timing observability for one batch of jobs.
#[derive(Debug, Clone)]
pub struct RunnerStats {
    /// Number of jobs executed in the batch.
    pub jobs: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Sum of per-job wall-clock times — the sequential-time estimate.
    pub total_job_time: Duration,
    /// Per-job wall-clock times, in submission order.
    pub job_times: Vec<Duration>,
    /// Event-kernel dispatch counters aggregated over the batch's
    /// simulations (populated by [`Runner::run_configs`]; generic
    /// [`Runner::run_jobs`] batches cannot see into their jobs and leave
    /// this zero).
    pub events: EventCounts,
    /// Total simulated time across the batch's simulations.
    pub sim_time: Picos,
}

impl RunnerStats {
    /// Estimated speedup over a sequential run of the same batch
    /// (`total_job_time / wall`).
    pub fn speedup_estimate(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.total_job_time.as_secs_f64() / wall
    }

    /// Kernel events dispatched per simulated second, aggregated over the
    /// batch — the discrete-event kernel's efficiency metric. Zero when
    /// the batch simulated nothing (or ran through the generic job path).
    pub fn events_per_sim_second(&self) -> f64 {
        let secs = self.sim_time.as_ps() as f64 * 1e-12;
        if secs == 0.0 {
            0.0
        } else {
            self.events.total() as f64 / secs
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "runner: {} job{} on {} worker{}, wall {:.2}s, cpu-time {:.2}s, est. speedup {:.2}x",
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall.as_secs_f64(),
            self.total_job_time.as_secs_f64(),
            self.speedup_estimate()
        );
        if self.events.total() > 0 {
            s.push_str(&format!(
                ", {} kernel events ({:.2e}/sim-s)",
                self.events.total(),
                self.events_per_sim_second()
            ));
        }
        s
    }

    /// Folds another batch's stats into this one (used by experiments
    /// that issue several batches).
    pub fn merge(&mut self, other: &RunnerStats) {
        self.jobs = self.jobs.saturating_add(other.jobs);
        self.workers = self.workers.max(other.workers);
        self.wall += other.wall;
        self.total_job_time += other.total_job_time;
        self.job_times.extend_from_slice(&other.job_times);
        self.events.merge(&other.events);
        self.sim_time += other.sim_time;
    }
}

impl ladder_trace::Mergeable for RunnerStats {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Default for RunnerStats {
    fn default() -> Self {
        RunnerStats {
            jobs: 0,
            workers: 0,
            wall: Duration::ZERO,
            total_job_time: Duration::ZERO,
            job_times: Vec::new(),
            events: EventCounts::default(),
            sim_time: Picos::ZERO,
        }
    }
}

/// Work-stealing executor for independent simulation jobs.
///
/// Jobs are claimed with an atomic cursor (`fetch_add`), so an idle
/// worker always takes the next unstarted job regardless of how unequal
/// the job durations are. Results land in per-slot cells indexed by
/// submission position; the batch result vector is therefore identical
/// to what a sequential loop would produce.
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    /// Stats accumulated over every batch this runner has executed, so a
    /// caller can report one summary after several experiment calls.
    accum: Mutex<RunnerStats>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with the default worker count: the `LADDER_JOBS`
    /// environment variable if set and positive, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn new() -> Self {
        Self::with_jobs(default_jobs())
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            accum: Mutex::new(RunnerStats::default()),
        }
    }

    /// A strictly sequential runner (`jobs = 1`).
    pub fn sequential() -> Self {
        Self::with_jobs(1)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `n` independent jobs produced by `f(index)` and returns the
    /// results in index order plus batch statistics.
    ///
    /// With one worker the jobs run inline on the caller's thread; with
    /// more, `std::thread::scope` workers steal indices from an atomic
    /// cursor. A panic in any job propagates to the caller either way.
    pub fn run_jobs<T, F>(&self, n: usize, f: F) -> (Vec<T>, RunnerStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n.max(1));
        let start = crate::wallclock::Stopwatch::start();
        let mut results: Vec<T> = Vec::with_capacity(n);
        let mut job_times: Vec<Duration> = Vec::with_capacity(n);

        if workers <= 1 {
            for i in 0..n {
                let t0 = crate::wallclock::Stopwatch::start();
                results.push(f(i));
                job_times.push(t0.elapsed());
            }
        } else {
            let slots: Vec<Mutex<Option<(T, Duration)>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = crate::wallclock::Stopwatch::start();
                        let out = f(i);
                        let elapsed = t0.elapsed();
                        // A poisoned slot means another worker panicked;
                        // the panic is already propagating via the scope,
                        // so storing into the recovered guard is sound.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some((out, elapsed));
                    });
                }
            });
            for slot in slots {
                let (out, elapsed) = slot
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // lint: allow(panic-policy) — invariant: the scope joined, so every slot was filled exactly once
                    .expect("runner: every job slot is filled after the scope joins");
                results.push(out);
                job_times.push(elapsed);
            }
        }

        let wall = start.elapsed();
        let total_job_time = job_times.iter().sum();
        let stats = RunnerStats {
            jobs: n,
            workers,
            wall,
            total_job_time,
            job_times,
            events: EventCounts::default(),
            sim_time: Picos::default(),
        };
        self.accum
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(&stats);
        (results, stats)
    }

    /// Stats accumulated over every batch this runner has executed so far.
    pub fn cumulative(&self) -> RunnerStats {
        self.accum
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Runs a batch of [`SimConfig`] simulation jobs against one shared
    /// [`Tables`] bundle, returning results in submission order.
    ///
    /// Each config must be monolithic (no topology) — sharded configs go
    /// through [`crate::shard::run_sharded`], which itself fans its shards
    /// out on a `Runner`. Besides timings, the returned stats carry the
    /// batch's aggregate event-kernel dispatch counters and total
    /// simulated time, so events-per-sim-second is reported alongside
    /// wall-clock speedup.
    pub fn run_configs(
        &self,
        cfg: &ExperimentConfig,
        tables: &Arc<Tables>,
        configs: &[SimConfig],
    ) -> (Vec<RunResult>, RunnerStats) {
        let (results, mut stats) =
            self.run_jobs(configs.len(), |i| run_sim(&configs[i], cfg, tables));
        for r in &results {
            stats.events.merge(&r.events);
            stats.sim_time += Picos::from_ps(r.end.as_ps());
        }
        {
            let mut acc = self.accum.lock().unwrap_or_else(PoisonError::into_inner);
            acc.events.merge(&stats.events);
            acc.sim_time += stats.sim_time;
        }
        (results, stats)
    }
}

/// Resolves the default worker count: `LADDER_JOBS` (if set to a
/// positive integer), else `available_parallelism()`, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("LADDER_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Memoized alone-run baseline IPCs, keyed by benchmark name.
///
/// Mix metrics (weighted speedup, fair slowdown) normalize each member's
/// IPC by the IPC of the same benchmark running alone under the
/// baseline scheme. The evaluation matrix already produces most of those
/// runs (every `Workload::Single` × `Scheme::Baseline` cell), so the
/// cache is populated from matrix results first and only the leftover
/// benchmarks (mix members that are not in the single-programmed set)
/// are simulated on demand.
#[derive(Debug, Clone, Default)]
pub struct AloneIpcCache {
    ipc: BTreeMap<&'static str, f64>,
}

impl AloneIpcCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the alone-run baseline IPC for `bench`.
    pub fn insert(&mut self, bench: &'static str, ipc: f64) {
        self.ipc.insert(bench, ipc);
    }

    /// The cached IPC for `bench`, if present.
    pub fn get(&self, bench: &str) -> Option<f64> {
        self.ipc.get(bench).copied()
    }

    /// The cached IPC for `bench`; panics if the cache was not populated
    /// for it (a bug in the caller's populate step).
    pub fn ipc(&self, bench: &str) -> f64 {
        self.get(bench)
            // lint: allow(panic-policy) — populate() precedes every mix-metric read; a miss is a caller bug worth aborting on
            .unwrap_or_else(|| panic!("alone-run IPC for '{bench}' was never populated"))
    }

    /// Number of cached benchmarks.
    pub fn len(&self) -> usize {
        self.ipc.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.ipc.is_empty()
    }

    /// The benchmarks from `benches` that are not cached yet, deduplicated
    /// and in first-appearance order.
    pub fn missing(&self, benches: &[&'static str]) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for &b in benches {
            if self.get(b).is_none() && !out.contains(&b) {
                out.push(b);
            }
        }
        out
    }

    /// Simulates (in parallel) and caches the alone-run baseline IPC for
    /// every benchmark in `benches` that is still missing. Returns the
    /// batch statistics if anything had to run.
    pub fn ensure(
        &mut self,
        benches: &[&'static str],
        runner: &Runner,
        cfg: &ExperimentConfig,
        tables: &Arc<Tables>,
    ) -> Option<RunnerStats> {
        let missing = self.missing(benches);
        if missing.is_empty() {
            return None;
        }
        let configs: Vec<SimConfig> = missing
            .iter()
            .map(|&b| SimConfig::new(Scheme::Baseline, Workload::Single(b)))
            .collect();
        let (results, stats) = runner.run_configs(cfg, tables, &configs);
        for (&b, r) in missing.iter().zip(&results) {
            self.insert(b, r.ipc0());
        }
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let runner = Runner::with_jobs(4);
        // Later jobs finish first: ordering must still follow submission.
        let (results, stats) = runner.run_jobs(16, |i| {
            std::thread::sleep(Duration::from_millis((16 - i) as u64));
            i * 10
        });
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(stats.jobs, 16);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.job_times.len(), 16);
    }

    #[test]
    fn sequential_runner_matches_parallel() {
        let f = |i: usize| i * i + 7;
        let (seq, seq_stats) = Runner::sequential().run_jobs(10, f);
        let (par, _) = Runner::with_jobs(3).run_jobs(10, f);
        assert_eq!(seq, par);
        assert_eq!(seq_stats.workers, 1);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn worker_count_never_exceeds_job_count() {
        let (_, stats) = Runner::with_jobs(8).run_jobs(2, |i| i);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (results, stats) = Runner::new().run_jobs(0, |i| i);
        assert!(results.is_empty());
        assert_eq!(stats.jobs, 0);
        assert!(stats.speedup_estimate() >= 0.0);
    }

    #[test]
    fn cumulative_stats_span_batches() {
        let runner = Runner::with_jobs(2);
        runner.run_jobs(3, |i| i);
        runner.run_jobs(4, |i| i);
        let total = runner.cumulative();
        assert_eq!(total.jobs, 7);
        assert_eq!(total.job_times.len(), 7);
    }

    #[test]
    fn stats_merge_accumulates() {
        let (_, mut a) = Runner::sequential().run_jobs(3, |i| i);
        let (_, b) = Runner::sequential().run_jobs(2, |i| i);
        a.merge(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.job_times.len(), 5);
    }

    #[test]
    fn merge_accumulates_kernel_counters() {
        let mut a = RunnerStats::default();
        let mut b = RunnerStats::default();
        b.events.core_wake = 5;
        b.events.ctrl_bank_free = 3;
        b.sim_time = Picos::from_ps(2_000_000);
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.events.core_wake, 10);
        assert_eq!(a.events.total(), 16);
        assert!(a.events_per_sim_second() > 0.0);
        assert!(a.summary().contains("kernel events"), "{}", a.summary());
    }

    #[test]
    fn summary_mentions_jobs_and_workers() {
        let (_, stats) = Runner::with_jobs(2).run_jobs(4, |i| i);
        let s = stats.summary();
        assert!(s.contains("4 jobs"), "{s}");
        assert!(s.contains("2 workers"), "{s}");
    }

    #[test]
    fn alone_cache_dedups_and_memoizes() {
        let mut cache = AloneIpcCache::new();
        cache.insert("astar", 1.5);
        assert_eq!(cache.get("astar"), Some(1.5));
        assert_eq!(cache.ipc("astar"), 1.5);
        assert_eq!(
            cache.missing(&["astar", "mcf", "mcf", "lbm"]),
            vec!["mcf", "lbm"]
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never populated")]
    fn alone_cache_panics_on_missing_bench() {
        AloneIpcCache::new().ipc("nonesuch");
    }
}
