//! Ablation studies of the design choices the paper motivates in prose:
//! metadata-cache sizing (Section 6.3: "< 2 % gain when increasing cache
//! size"), intra-line bit shifting (Section 4.1), the FNW constraint
//! (Section 3.3: "< 4 % of flipping operations are canceled"), the
//! low-precision row count (Section 4.2), the 8×8×8 timing-table
//! quantization (Section 5: "< 3 % impact"), and line- vs segment-based
//! vertical wear-leveling (Section 6.4).

use crate::experiments::{run_one, ExperimentConfig, RunOptions, Workload};
use crate::scheme::Scheme;
use crate::system::{RunResult, SystemBuilder};
use ladder_core::{FnwPolicy, LadderConfig, LadderVariant, MetadataCacheConfig};
use ladder_memctrl::MemCtrlConfig;
use ladder_reram::Geometry;
use ladder_wear::StartGap;
use ladder_xbar::{TableConfig, TimingTable};

/// One measured ablation point.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// What was varied (human-readable).
    pub label: String,
    /// Speedup over the pessimistic baseline under the same conditions.
    pub speedup: f64,
    /// Metadata-cache hit ratio, when applicable.
    pub cache_hit: Option<f64>,
    /// Additional reads fraction.
    pub extra_reads: f64,
    /// Additional writes fraction.
    pub extra_writes: f64,
}

fn point(label: impl Into<String>, r: &RunResult, base: &RunResult) -> AblationPoint {
    AblationPoint {
        label: label.into(),
        speedup: r.ipc0() / base.ipc0(),
        cache_hit: r.cache_hit,
        extra_reads: r.mem.additional_read_fraction(),
        extra_writes: r.mem.additional_write_fraction(),
    }
}

fn run_with_ladder_cfg(
    cfg: &ExperimentConfig,
    workload: Workload,
    tables: &(TimingTable, TimingTable),
    lcfg: LadderConfig,
    scheme: Scheme,
) -> RunResult {
    let mut b = SystemBuilder::new(scheme, tables.0.clone(), tables.1.clone());
    for (core, bench) in workload.members().into_iter().enumerate() {
        let (trace, mlp) = crate::experiments::trace_for_pub(bench, core, cfg);
        b.core(trace, mlp);
    }
    b.ladder_config(lcfg);
    b.run()
}

/// Metadata-cache capacity sweep (LADDER-Est).
pub fn cache_size_sweep(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let base = run_one(Scheme::Baseline, workload, cfg, &tables, RunOptions::default());
    [16usize, 32, 64, 128, 256]
        .into_iter()
        .map(|kb| {
            let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
            lcfg.cache = MetadataCacheConfig {
                capacity_bytes: kb * 1024,
                ..MetadataCacheConfig::default()
            };
            let r = run_with_ladder_cfg(cfg, workload, &tables, lcfg, Scheme::LadderEst);
            point(format!("{kb} KB cache"), &r, &base)
        })
        .collect()
}

/// Intra-line bit shifting on/off (LADDER-Est).
pub fn shifting_ablation(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let base = run_one(Scheme::Baseline, workload, cfg, &tables, RunOptions::default());
    [false, true]
        .into_iter()
        .map(|shifting| {
            let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
            lcfg.shifting = shifting;
            let r = run_with_ladder_cfg(cfg, workload, &tables, lcfg, Scheme::LadderEst);
            point(
                if shifting { "shifting on" } else { "shifting off" },
                &r,
                &base,
            )
        })
        .collect()
}

/// FNW policy comparison (LADDER-Est): returns the ablation points plus the
/// fraction of flips the counting constraint cancelled.
pub fn fnw_ablation(
    cfg: &ExperimentConfig,
    workload: Workload,
) -> (Vec<AblationPoint>, Option<f64>) {
    let tables = cfg.tables();
    let base = run_one(Scheme::Baseline, workload, cfg, &tables, RunOptions::default());
    let mut cancelled_fraction = None;
    let points = [FnwPolicy::Disabled, FnwPolicy::Constrained]
        .into_iter()
        .map(|fnw| {
            let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
            lcfg.fnw = fnw;
            let r = run_with_ladder_cfg(cfg, workload, &tables, lcfg, Scheme::LadderEst);
            if fnw == FnwPolicy::Constrained {
                if let Some((cancelled, opportunities)) = r.fnw {
                    if opportunities > 0 {
                        cancelled_fraction = Some(cancelled as f64 / opportunities as f64);
                    }
                }
            }
            let mut p = point(format!("{fnw:?}"), &r, &base);
            p.label = format!("FNW {fnw:?} (bits switched: {})", r.mem.bits_set + r.mem.bits_reset);
            p
        })
        .collect();
    (points, cancelled_fraction)
}

/// Low-precision row-count sweep (LADDER-Hybrid).
pub fn low_rows_sweep(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let base = run_one(Scheme::Baseline, workload, cfg, &tables, RunOptions::default());
    [0usize, 64, 128, 256]
        .into_iter()
        .map(|rows| {
            let mut lcfg = LadderConfig::for_variant(LadderVariant::Hybrid);
            lcfg.low_precision_rows = rows;
            let r = run_with_ladder_cfg(cfg, workload, &tables, lcfg, Scheme::LadderHybrid);
            point(format!("{rows} low-precision rows"), &r, &base)
        })
        .collect()
}

/// Timing-table quantization sweep: 4, 8 and 16 bands per dimension.
pub fn table_granularity_sweep(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    [4usize, 8, 16]
        .into_iter()
        .map(|bands| {
            let mut tc = TableConfig::ladder_default();
            tc.bands = bands;
            let mut c = cfg.clone();
            c.table_cfg = tc;
            let tables = c.tables();
            let base = run_one(Scheme::Baseline, workload, &c, &tables, RunOptions::default());
            let r = run_one(Scheme::LadderEst, workload, &c, &tables, RunOptions::default());
            let mut p = point(format!("{bands}x{bands}x{bands} table"), &r, &base);
            p.label = format!(
                "{bands}x{bands}x{bands} table ({} B ROM)",
                tables.0.to_rom_bytes().len()
            );
            p
        })
        .collect()
}

/// Write-drain watermark sweep (baseline vs LADDER-Est sensitivity).
pub fn drain_watermark_sweep(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    [(40usize, 16usize), (55, 32), (60, 48)]
        .into_iter()
        .map(|(high, low)| {
            let mem_cfg = MemCtrlConfig {
                drain_high: high,
                drain_low: low,
                ..MemCtrlConfig::default()
            };
            let run = |scheme| {
                let mut b = SystemBuilder::new(scheme, tables.0.clone(), tables.1.clone());
                for (core, bench) in workload.members().into_iter().enumerate() {
                    let (trace, mlp) = crate::experiments::trace_for_pub(bench, core, cfg);
                    b.core(trace, mlp);
                }
                b.mem_config(mem_cfg);
                b.run()
            };
            let base = run(Scheme::Baseline);
            let est = run(Scheme::LadderEst);
            point(format!("drain at {high}/{low}"), &est, &base)
        })
        .collect()
}

/// Line-based (start-gap) vs segment-based vertical wear-leveling under
/// LADDER-Est: line-granularity remapping scatters a page's lines across
/// wordline groups and deteriorates metadata locality (paper Section 6.4).
pub fn vwl_comparison(cfg: &ExperimentConfig, workload: Workload) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let base = run_one(Scheme::Baseline, workload, cfg, &tables, RunOptions::default());
    let mut out = Vec::new();
    // No wear-leveling.
    let plain = run_one(Scheme::LadderEst, workload, cfg, &tables, RunOptions::default());
    out.push(point("no wear-leveling", &plain, &base));
    // Segment-based VWL (the LADDER-friendly kind).
    let seg = run_one(
        Scheme::LadderEst,
        workload,
        cfg,
        &tables,
        RunOptions {
            wear_leveling: true,
            ..RunOptions::default()
        },
    );
    out.push(point("segment VWL + HWL", &seg, &base));
    // Line-based start-gap over the data region.
    let total_lines = Geometry::default().lines();
    let base_line = (Geometry::default().pages() as u64 / 16) * 64;
    let mut b = SystemBuilder::new(Scheme::LadderEst, tables.0.clone(), tables.1.clone());
    for (core, bench) in workload.members().into_iter().enumerate() {
        let (trace, mlp) = crate::experiments::trace_for_pub(bench, core, cfg);
        b.core(trace, mlp);
    }
    b.leveler(Box::new(StartGap::new(base_line, total_lines - base_line - 1, 100)));
    let sg = b.run();
    out.push(point("line-based start-gap VWL", &sg, &base));
    out
}

/// Renders ablation points as an aligned table.
pub fn render(points: &[AblationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42}{:>9}{:>10}{:>10}{:>10}\n",
        "configuration", "speedup", "hit", "extra rd", "extra wr"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<42}{:>9.3}{:>10}{:>9.1}%{:>9.1}%\n",
            p.label,
            p.speedup,
            p.cache_hit
                .map(|h| format!("{h:.3}"))
                .unwrap_or_else(|| "-".into()),
            p.extra_reads * 100.0,
            p.extra_writes * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            instructions_per_core: 30_000,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn cache_sweep_hit_ratio_grows_with_capacity() {
        let pts = cache_size_sweep(&tiny(), Workload::Single("cannl"));
        assert_eq!(pts.len(), 5);
        let first = pts.first().expect("points").cache_hit.expect("ladder");
        let last = pts.last().expect("points").cache_hit.expect("ladder");
        assert!(last >= first, "bigger cache cannot hit less ({first} vs {last})");
    }

    #[test]
    fn shifting_does_not_break_the_system() {
        let pts = shifting_ablation(&tiny(), Workload::Single("astar"));
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.speedup > 1.0, "{}: LADDER must beat baseline", p.label);
        }
    }

    #[test]
    fn fnw_constraint_cancels_only_a_small_fraction() {
        let (pts, cancelled) = fnw_ablation(&tiny(), Workload::Single("lbm"));
        assert_eq!(pts.len(), 2);
        if let Some(frac) = cancelled {
            // Paper Section 6.1: < 4 % of flips cancelled.
            assert!(frac < 0.25, "cancelled fraction {frac} out of range");
        }
    }

    #[test]
    fn table_granularity_has_modest_impact() {
        let pts = table_granularity_sweep(&tiny(), Workload::Single("fsim"));
        assert_eq!(pts.len(), 3);
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        // Paper Section 5: reduced granularity costs < 3 %; allow slack for
        // the tiny test run.
        assert!((max - min) / max < 0.15, "granularity swing too large: {speedups:?}");
    }

    #[test]
    fn render_formats_every_point() {
        let pts = vec![AblationPoint {
            label: "x".into(),
            speedup: 1.5,
            cache_hit: None,
            extra_reads: 0.1,
            extra_writes: 0.05,
        }];
        let s = render(&pts);
        assert!(s.contains("1.500"));
        assert!(s.contains('x'));
    }
}
