//! Ablation studies of the design choices the paper motivates in prose:
//! metadata-cache sizing (Section 6.3: "< 2 % gain when increasing cache
//! size"), intra-line bit shifting (Section 4.1), the FNW constraint
//! (Section 3.3: "< 4 % of flipping operations are canceled"), the
//! low-precision row count (Section 4.2), the 8×8×8 timing-table
//! quantization (Section 5: "< 3 % impact"), and line- vs segment-based
//! vertical wear-leveling (Section 6.4).
//!
//! Every sweep point is an independent simulation, so each study fans its
//! runs out on the caller's [`Runner`].

use crate::config::{run_sim, SimConfig};
use crate::experiments::{ExperimentConfig, Workload};
use crate::runner::Runner;
use crate::scheme::Scheme;
use crate::system::{RunResult, SystemBuilder};
use ladder_core::{FnwPolicy, LadderConfig, LadderVariant, MetadataCacheConfig};
use ladder_memctrl::{MemCtrlConfig, Tables};
use ladder_reram::Geometry;
use ladder_wear::StartGap;
use ladder_xbar::TableConfig;

/// One measured ablation point.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// What was varied (human-readable).
    pub label: String,
    /// Speedup over the pessimistic baseline under the same conditions.
    pub speedup: f64,
    /// Metadata-cache hit ratio, when applicable.
    pub cache_hit: Option<f64>,
    /// Additional reads fraction.
    pub extra_reads: f64,
    /// Additional writes fraction.
    pub extra_writes: f64,
}

fn point(label: impl Into<String>, r: &RunResult, base: &RunResult) -> AblationPoint {
    AblationPoint {
        label: label.into(),
        speedup: r.ipc0() / base.ipc0(),
        cache_hit: r.cache_hit,
        extra_reads: r.mem.additional_read_fraction(),
        extra_writes: r.mem.additional_write_fraction(),
    }
}

fn run_with_ladder_cfg(
    cfg: &ExperimentConfig,
    workload: Workload,
    tables: &Tables,
    lcfg: LadderConfig,
    scheme: Scheme,
) -> RunResult {
    let mut b = SystemBuilder::with_tables(scheme, tables);
    for (core, bench) in workload.members().into_iter().enumerate() {
        let (trace, mlp) = crate::experiments::trace_for(bench, core, cfg);
        b.core(trace, mlp);
    }
    b.ladder_config(lcfg);
    b.run()
}

/// Runs the shared pessimistic baseline plus one LADDER run per sweep
/// value, all in one parallel batch; job 0 is the baseline.
fn sweep_with_base<V: Copy + Sync>(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
    values: &[V],
    run_value: impl Fn(&Tables, V) -> RunResult + Sync,
) -> (RunResult, Vec<RunResult>) {
    let tables = cfg.tables();
    let (mut results, _) = runner.run_jobs(values.len() + 1, |i| {
        if i == 0 {
            run_sim(&SimConfig::new(Scheme::Baseline, workload), cfg, &tables)
        } else {
            run_value(&tables, values[i - 1])
        }
    });
    let rest = results.split_off(1);
    // lint: allow(panic-policy) — invariant: split_off(1) leaves exactly the baseline run in results
    (results.pop().expect("baseline run"), rest)
}

/// Metadata-cache capacity sweep (LADDER-Est).
pub fn cache_size_sweep(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let sizes = [16usize, 32, 64, 128, 256];
    let (base, runs) = sweep_with_base(cfg, workload, runner, &sizes, |tables, kb| {
        let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
        lcfg.cache = MetadataCacheConfig {
            capacity_bytes: kb * 1024,
            ..MetadataCacheConfig::default()
        };
        run_with_ladder_cfg(cfg, workload, tables, lcfg, Scheme::LadderEst)
    });
    sizes
        .iter()
        .zip(&runs)
        .map(|(kb, r)| point(format!("{kb} KB cache"), r, &base))
        .collect()
}

/// Intra-line bit shifting on/off (LADDER-Est).
pub fn shifting_ablation(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let modes = [false, true];
    let (base, runs) = sweep_with_base(cfg, workload, runner, &modes, |tables, shifting| {
        let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
        lcfg.shifting = shifting;
        run_with_ladder_cfg(cfg, workload, tables, lcfg, Scheme::LadderEst)
    });
    modes
        .iter()
        .zip(&runs)
        .map(|(&shifting, r)| {
            point(
                if shifting {
                    "shifting on"
                } else {
                    "shifting off"
                },
                r,
                &base,
            )
        })
        .collect()
}

/// FNW policy comparison (LADDER-Est): returns the ablation points plus the
/// fraction of flips the counting constraint cancelled.
pub fn fnw_ablation(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> (Vec<AblationPoint>, Option<f64>) {
    let policies = [FnwPolicy::Disabled, FnwPolicy::Constrained];
    let (base, runs) = sweep_with_base(cfg, workload, runner, &policies, |tables, fnw| {
        let mut lcfg = LadderConfig::for_variant(LadderVariant::Est);
        lcfg.fnw = fnw;
        run_with_ladder_cfg(cfg, workload, tables, lcfg, Scheme::LadderEst)
    });
    let mut cancelled_fraction = None;
    let points = policies
        .iter()
        .zip(&runs)
        .map(|(&fnw, r)| {
            if fnw == FnwPolicy::Constrained {
                if let Some((cancelled, opportunities)) = r.fnw {
                    if opportunities > 0 {
                        cancelled_fraction = Some(cancelled as f64 / opportunities as f64);
                    }
                }
            }
            let mut p = point(format!("{fnw:?}"), r, &base);
            p.label = format!(
                "FNW {fnw:?} (bits switched: {})",
                r.mem.bits_set + r.mem.bits_reset
            );
            p
        })
        .collect();
    (points, cancelled_fraction)
}

/// Low-precision row-count sweep (LADDER-Hybrid).
pub fn low_rows_sweep(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let row_counts = [0usize, 64, 128, 256];
    let (base, runs) = sweep_with_base(cfg, workload, runner, &row_counts, |tables, rows| {
        let mut lcfg = LadderConfig::for_variant(LadderVariant::Hybrid);
        lcfg.low_precision_rows = rows;
        run_with_ladder_cfg(cfg, workload, tables, lcfg, Scheme::LadderHybrid)
    });
    row_counts
        .iter()
        .zip(&runs)
        .map(|(rows, r)| point(format!("{rows} low-precision rows"), r, &base))
        .collect()
}

/// Timing-table quantization sweep: 4, 8 and 16 bands per dimension.
///
/// Each band count regenerates its own tables, so a sweep point is a
/// `(baseline, LADDER-Est)` pair sharing those tables; the pairs run in
/// parallel.
pub fn table_granularity_sweep(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let band_counts = [4usize, 8, 16];
    let (results, _) = runner.run_jobs(band_counts.len(), |i| {
        let bands = band_counts[i];
        let mut tc = TableConfig::ladder_default();
        tc.bands = bands;
        let mut c = cfg.clone();
        c.table_cfg = tc;
        let tables = c.tables();
        let base = run_sim(&SimConfig::new(Scheme::Baseline, workload), &c, &tables);
        let r = run_sim(&SimConfig::new(Scheme::LadderEst, workload), &c, &tables);
        let rom_bytes = tables.ladder.to_rom_bytes().len();
        (base, r, rom_bytes)
    });
    band_counts
        .iter()
        .zip(&results)
        .map(|(bands, (base, r, rom_bytes))| {
            let mut p = point(format!("{bands}x{bands}x{bands} table"), r, base);
            p.label = format!("{bands}x{bands}x{bands} table ({rom_bytes} B ROM)");
            p
        })
        .collect()
}

/// Write-drain watermark sweep (baseline vs LADDER-Est sensitivity).
pub fn drain_watermark_sweep(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let watermarks = [(40usize, 16usize), (55, 32), (60, 48)];
    let schemes = [Scheme::Baseline, Scheme::LadderEst];
    // One job per (watermark, scheme) cell, watermark-major.
    let (results, _) = runner.run_jobs(watermarks.len() * schemes.len(), |i| {
        let (high, low) = watermarks[i / schemes.len()];
        let scheme = schemes[i % schemes.len()];
        let mut b = SystemBuilder::with_tables(scheme, &tables);
        for (core, bench) in workload.members().into_iter().enumerate() {
            let (trace, mlp) = crate::experiments::trace_for(bench, core, cfg);
            b.core(trace, mlp);
        }
        b.mem_config(MemCtrlConfig {
            drain_high: high,
            drain_low: low,
            ..MemCtrlConfig::default()
        });
        b.run()
    });
    watermarks
        .iter()
        .zip(results.chunks_exact(schemes.len()))
        .map(|(&(high, low), pair)| point(format!("drain at {high}/{low}"), &pair[1], &pair[0]))
        .collect()
}

/// Line-based (start-gap) vs segment-based vertical wear-leveling under
/// LADDER-Est: line-granularity remapping scatters a page's lines across
/// wordline groups and deteriorates metadata locality (paper Section 6.4).
pub fn vwl_comparison(
    cfg: &ExperimentConfig,
    workload: Workload,
    runner: &Runner,
) -> Vec<AblationPoint> {
    let tables = cfg.tables();
    let (results, _) = runner.run_jobs(4, |i| match i {
        0 => run_sim(&SimConfig::new(Scheme::Baseline, workload), cfg, &tables),
        // No wear-leveling.
        1 => run_sim(&SimConfig::new(Scheme::LadderEst, workload), cfg, &tables),
        // Segment-based VWL (the LADDER-friendly kind).
        2 => run_sim(
            &SimConfig::builder()
                .scheme(Scheme::LadderEst)
                .workload(workload)
                .wear_leveling(true)
                .build(),
            cfg,
            &tables,
        ),
        // Line-based start-gap over the data region.
        _ => {
            let total_lines = Geometry::default().lines();
            let base_line = (Geometry::default().pages() as u64 / 16) * 64;
            let mut b = SystemBuilder::with_tables(Scheme::LadderEst, &tables);
            for (core, bench) in workload.members().into_iter().enumerate() {
                let (trace, mlp) = crate::experiments::trace_for(bench, core, cfg);
                b.core(trace, mlp);
            }
            b.leveler(Box::new(StartGap::new(
                base_line,
                total_lines - base_line - 1,
                100,
            )));
            b.run()
        }
    });
    let base = &results[0];
    vec![
        point("no wear-leveling", &results[1], base),
        point("segment VWL + HWL", &results[2], base),
        point("line-based start-gap VWL", &results[3], base),
    ]
}

/// Renders ablation points as an aligned table.
pub fn render(points: &[AblationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42}{:>9}{:>10}{:>10}{:>10}\n",
        "configuration", "speedup", "hit", "extra rd", "extra wr"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<42}{:>9.3}{:>10}{:>9.1}%{:>9.1}%\n",
            p.label,
            p.speedup,
            p.cache_hit
                .map(|h| format!("{h:.3}"))
                .unwrap_or_else(|| "-".into()),
            p.extra_reads * 100.0,
            p.extra_writes * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            instructions_per_core: 30_000,
            ..ExperimentConfig::default()
        }
    }

    fn runner() -> Runner {
        Runner::with_jobs(2)
    }

    #[test]
    fn cache_sweep_hit_ratio_grows_with_capacity() {
        let pts = cache_size_sweep(&tiny(), Workload::Single("cannl"), &runner());
        assert_eq!(pts.len(), 5);
        let first = pts.first().expect("points").cache_hit.expect("ladder");
        let last = pts.last().expect("points").cache_hit.expect("ladder");
        assert!(
            last >= first,
            "bigger cache cannot hit less ({first} vs {last})"
        );
    }

    #[test]
    fn shifting_does_not_break_the_system() {
        let pts = shifting_ablation(&tiny(), Workload::Single("astar"), &runner());
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.speedup > 1.0, "{}: LADDER must beat baseline", p.label);
        }
    }

    #[test]
    fn fnw_constraint_cancels_only_a_small_fraction() {
        let (pts, cancelled) = fnw_ablation(&tiny(), Workload::Single("lbm"), &runner());
        assert_eq!(pts.len(), 2);
        if let Some(frac) = cancelled {
            // Paper Section 6.1: < 4 % of flips cancelled.
            assert!(frac < 0.25, "cancelled fraction {frac} out of range");
        }
    }

    #[test]
    fn table_granularity_has_modest_impact() {
        let pts = table_granularity_sweep(&tiny(), Workload::Single("fsim"), &runner());
        assert_eq!(pts.len(), 3);
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        // Paper Section 5: reduced granularity costs < 3 %; allow slack for
        // the tiny test run.
        assert!(
            (max - min) / max < 0.15,
            "granularity swing too large: {speedups:?}"
        );
    }

    #[test]
    fn render_formats_every_point() {
        let pts = vec![AblationPoint {
            label: "x".into(),
            speedup: 1.5,
            cache_hit: None,
            extra_reads: 0.1,
            extra_writes: 0.05,
        }];
        let s = render(&pts);
        assert!(s.contains("1.500"));
        assert!(s.contains('x'));
    }
}
