//! The full-system simulator: cores, memory controller, optional
//! wear-leveling, and the discrete-event kernel connecting them.
//!
//! Simulated time advances only by popping the next scheduled event from a
//! single [`EventQueue`] — there is no polling loop, no fixed time step and
//! no fallback "nudge". Every component registers the precise instants at
//! which it can next make progress: cores post the end of their compute
//! phases, the controller registers bank frees, queue-slot frees, mode
//! switches and dependency completions ([`CtrlWake`]), and demand-read
//! data bursts are delivered to their cores at their exact completion
//! times.

use crate::scheme::Scheme;
use crate::service::ServiceStats;
use ladder_coding::{CodingKind, CodingStats};
use ladder_core::LadderConfig;
use ladder_cpu::{Core, CoreAction, CoreConfig, TraceOp, TraceSource};
use ladder_energy::{EnergyBreakdown, EnergyMeter, EnergyParams};
use ladder_faults::{CellFaultModel, FaultConfig, FaultStats, SharedCellFaultModel};
use ladder_memctrl::{
    CtrlWake, CwTrace, LatencyHistogram, MemCtrlConfig, MemStats, MemoryController, ReqId, Tables,
};
use ladder_reram::{
    AddressMap, EventQueue, Geometry, Instant, Interleave, LineAddr, Picos, QueueBackend,
};
use ladder_trace::{DispatchKind, Mergeable, Trace, TraceRecord, TraceRecorder};
use ladder_wear::{
    RemapBackend, RemapKind, RotateHwl, SharedPadRemapper, SharedRetirePool, SharedWearMap,
    WearLeveler,
};
use ladder_workloads::service::ServiceGen;
use ladder_xbar::{CrossbarParams, TimingTable};
use std::collections::{BTreeMap, VecDeque};

/// Per-core outcome of a run.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Workload label.
    pub label: String,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions per cycle over the core's own execution window.
    pub ipc: f64,
    /// When the core finished.
    pub finish: Instant,
    /// Time the core spent stalled on memory.
    pub stall: Picos,
}

/// Outcome of one system run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme that was active.
    pub scheme: Scheme,
    /// Per-core results (inactive cores omitted).
    pub cores: Vec<CoreResult>,
    /// Memory-controller statistics.
    pub mem: MemStats,
    /// Dynamic energy breakdown.
    pub energy: EnergyBreakdown,
    /// Final simulated time (after the closing drain).
    pub end: Instant,
    /// Estimation-accuracy trace (LADDER schemes with tracking enabled).
    pub cw_trace: Option<CwTrace>,
    /// Metadata-cache hit ratio (LADDER schemes).
    pub cache_hit: Option<f64>,
    /// `(flips cancelled, flip opportunities)` under constrained FNW
    /// (LADDER schemes).
    pub fnw: Option<(u64, u64)>,
    /// Distribution of demand-read latencies.
    pub read_histogram: LatencyHistogram,
    /// Wear map, when wear tracking was requested.
    pub wear: Option<SharedWearMap>,
    /// Fault-model counters, when fault injection was requested.
    pub faults: Option<FaultStats>,
    /// Coding-layer counters (per-tier resolves, remaps, parity write
    /// amplification), when fault injection was requested.
    pub coding: Option<CodingStats>,
    /// Per-[`EventKind`](EventCounts) dispatch counters of the event
    /// kernel that drove this run.
    pub events: EventCounts,
    /// The assembled structured trace, when tracing was requested
    /// ([`SystemBuilder::tracing`]).
    pub trace: Option<Trace>,
    /// Open-loop service statistics, when a service stream drove the run
    /// ([`SystemBuilder::service`]).
    pub service: Option<ServiceStats>,
}

impl RunResult {
    /// IPC of core 0 (the single-programmed metric).
    pub fn ipc0(&self) -> f64 {
        self.cores.first().map(|c| c.ipc).unwrap_or(0.0)
    }

    /// Kernel events dispatched per simulated second — the event kernel's
    /// efficiency metric (a polled loop revisits every component at every
    /// instant; the kernel touches only what is scheduled).
    pub fn events_per_sim_second(&self) -> f64 {
        let secs = self.end.as_ps() as f64 * 1e-12;
        if secs == 0.0 {
            0.0
        } else {
            self.events.total() as f64 / secs
        }
    }

    /// Renders a human-readable report of everything this run measured.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scheme: {}", self.scheme.name());
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                out,
                "  core {i} ({}): {} instructions, IPC {:.3}, stalled {:.1} us",
                c.label,
                c.retired,
                c.ipc,
                c.stall.as_ns() / 1000.0
            );
        }
        let m = &self.mem;
        let _ = writeln!(
            out,
            "  reads: {} demand (avg {:.1} ns, P95 {:.1}, P99 {:.1}), {} SMB, {} metadata",
            m.demand_reads,
            m.avg_read_latency().as_ns(),
            self.read_histogram.percentile(0.95).as_ns(),
            self.read_histogram.percentile(0.99).as_ns(),
            m.smb_reads,
            m.metadata_reads
        );
        let _ = writeln!(
            out,
            "  writes: {} data (avg service {:.1} ns), {} metadata, {} drain switches",
            m.data_writes,
            m.avg_write_service().as_ns(),
            m.metadata_writes,
            m.drain_switches
        );
        let _ = writeln!(
            out,
            "  cells switched: {} set, {} reset",
            m.bits_set, m.bits_reset
        );
        let _ = writeln!(
            out,
            "  energy: {:.1} nJ read + {:.1} nJ write",
            self.energy.read_pj / 1000.0,
            self.energy.write_pj / 1000.0
        );
        if let Some(hit) = self.cache_hit {
            let _ = writeln!(out, "  metadata cache hit ratio: {hit:.3}");
        }
        if let Some((cancelled, opportunities)) = self.fnw {
            if opportunities > 0 {
                let _ = writeln!(
                    out,
                    "  FNW: {cancelled}/{opportunities} flips cancelled by the constraint"
                );
            }
        }
        if let Some(t) = self.cw_trace {
            let _ = writeln!(
                out,
                "  counter estimate − exact (mean): {:.1}",
                t.mean_diff()
            );
        }
        if let Some(f) = self.faults {
            // Only report when the model actually did something, so an
            // inert (rate-0) run renders identically to a no-fault run.
            if f.transient_bit_errors + f.stuck_cells + f.corrected_bits + f.uncorrectable_lines > 0
            {
                let _ = writeln!(out, "  {}", f.summary());
                let _ = writeln!(
                    out,
                    "  P&V: {} failed verifies, {} retries ({:.1} us of retry pulses)",
                    m.failed_verifies,
                    m.retries_issued,
                    m.retry_time.as_ns() / 1000.0
                );
            }
        }
        if let Some(c) = self.coding {
            // Tiered resolves only happen under a non-default scheme, so
            // legacy (flat-ECC) fault runs render identically to before.
            if c.resolves[1..].iter().sum::<u64>() > 0 {
                let _ = writeln!(out, "  {}", c.summary());
            }
        }
        let _ = writeln!(
            out,
            "  simulated time: {:.1} us",
            self.end.as_ps() as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  kernel: {} events dispatched ({:.0} per simulated second)",
            self.events.total(),
            self.events_per_sim_second()
        );
        out
    }

    /// Mean write service time.
    pub fn avg_write_service(&self) -> Picos {
        self.mem.avg_write_service()
    }

    /// Mean demand read latency.
    pub fn avg_read_latency(&self) -> Picos {
        self.mem.avg_read_latency()
    }
}

/// Everything needed to run one configuration.
pub struct SystemBuilder {
    geometry: Geometry,
    interleave: Interleave,
    shard: Option<u32>,
    mem_cfg: MemCtrlConfig,
    core_cfg: CoreConfig,
    params: CrossbarParams,
    ladder_table: TimingTable,
    blp_table: TimingTable,
    scheme: Scheme,
    traces: Vec<Box<dyn TraceSource>>,
    core_mlps: Vec<usize>,
    track_exact: bool,
    track_wear: bool,
    leveler: Option<Box<dyn WearLeveler>>,
    hwl: Option<RotateHwl>,
    energy_params: EnergyParams,
    ladder_override: Option<LadderConfig>,
    fault_cfg: Option<FaultConfig>,
    coding: CodingKind,
    remap_kind: RemapKind,
    queue: QueueBackend,
    tracing: bool,
    service: Option<ServiceGen>,
}

impl SystemBuilder {
    /// Starts a builder for `scheme`, cloning both tables out of a shared
    /// [`Tables`] bundle.
    pub fn with_tables(scheme: Scheme, tables: &Tables) -> Self {
        Self::new(scheme, tables.ladder.clone(), tables.blp.clone())
    }

    /// Starts a builder for `scheme` over shared timing tables.
    pub fn new(scheme: Scheme, ladder_table: TimingTable, blp_table: TimingTable) -> Self {
        Self {
            geometry: Geometry::default(),
            interleave: Interleave::Channel,
            shard: None,
            mem_cfg: MemCtrlConfig::default(),
            core_cfg: CoreConfig::default(),
            params: CrossbarParams::default(),
            ladder_table,
            blp_table,
            scheme,
            traces: Vec::new(),
            core_mlps: Vec::new(),
            track_exact: false,
            track_wear: false,
            leveler: None,
            hwl: None,
            energy_params: EnergyParams::default(),
            ladder_override: None,
            fault_cfg: None,
            coding: CodingKind::Flat,
            remap_kind: RemapKind::Retire,
            queue: QueueBackend::default(),
            tracing: false,
            service: None,
        }
    }

    /// Overrides the module geometry (default: [`Geometry::default`]).
    /// The sharded runner uses this to hand each shard its one-channel
    /// slice of the topology.
    pub fn geometry(&mut self, g: Geometry) -> &mut Self {
        self.geometry = g;
        self
    }

    /// Sets the address striping policy (default: the legacy
    /// channel-fastest order, which golden traces depend on).
    pub fn interleave(&mut self, interleave: Interleave) -> &mut Self {
        self.interleave = interleave;
        self
    }

    /// Stamps this run as shard `index` of a sharded topology: when
    /// tracing, the kernel emits a [`TraceRecord::ShardTag`] at `t = 0`
    /// so each shard's digest is bound to its identity.
    pub fn shard(&mut self, index: u32) -> &mut Self {
        self.shard = Some(index);
        self
    }

    /// Selects the kernel event-queue backend. Both backends dispatch in
    /// the same deterministic order (ascending `(Instant, seq)`), so a run
    /// is bit-identical under either; the heap is kept as the reference
    /// implementation for differential tests.
    pub fn queue(&mut self, backend: QueueBackend) -> &mut Self {
        self.queue = backend;
        self
    }

    /// Enables structured tracing: the kernel and the controller each get
    /// an enabled [`TraceRecorder`], and the run's [`RunResult::trace`]
    /// carries the assembled [`Trace`]. Off by default (the disabled
    /// recorders cost one branch per record site).
    pub fn tracing(&mut self, on: bool) -> &mut Self {
        self.tracing = on;
        self
    }

    /// Adds a core running `trace` with the given MLP.
    pub fn core(&mut self, trace: Box<dyn TraceSource>, mlp: usize) -> &mut Self {
        self.traces.push(trace);
        self.core_mlps.push(mlp);
        self
    }

    /// Installs an open-loop service stream: the kernel pumps timestamped
    /// `RequestArrival` events from `gen` instead of (or alongside)
    /// back-pressure-driven cores, and the run's
    /// [`RunResult::service`] carries per-tenant latency statistics.
    pub fn service(&mut self, gen: ServiceGen) -> &mut Self {
        self.service = Some(gen);
        self
    }

    /// Overrides the LADDER engine configuration (cache geometry,
    /// shifting, FNW policy, low-precision rows) for ablation studies;
    /// ignored by non-LADDER schemes.
    pub fn ladder_config(&mut self, cfg: LadderConfig) -> &mut Self {
        self.ladder_override = Some(cfg);
        self
    }

    /// Overrides the memory-controller configuration (queue depths, drain
    /// watermarks).
    pub fn mem_config(&mut self, cfg: MemCtrlConfig) -> &mut Self {
        self.mem_cfg = cfg;
        self
    }

    /// Enables the per-write exact-counter trace (Fig. 15).
    pub fn track_exact(&mut self, on: bool) -> &mut Self {
        self.track_exact = on;
        self
    }

    /// Enables wear tracking.
    pub fn track_wear(&mut self, on: bool) -> &mut Self {
        self.track_wear = on;
        self
    }

    /// Installs a vertical wear-leveler (applied before LADDER).
    pub fn leveler(&mut self, l: Box<dyn WearLeveler>) -> &mut Self {
        self.leveler = Some(l);
        self
    }

    /// Installs horizontal wear-leveling (intra-line byte rotation).
    pub fn horizontal_leveling(&mut self, on: bool) -> &mut Self {
        self.hwl = if on { Some(RotateHwl::new()) } else { None };
        self
    }

    /// Installs the device fault model: stuck-at and transient write
    /// failures, program-and-verify retries in the controller, and
    /// ECC/retire recovery. An inert (all-zero-rate) config leaves the run
    /// bit-identical to one without this call.
    pub fn faults(&mut self, cfg: FaultConfig) -> &mut Self {
        self.fault_cfg = Some(cfg);
        self
    }

    /// Selects the code scheme the fault model resolves residues with.
    /// The default, [`CodingKind::Flat`], reproduces the legacy flat
    /// SEC-DED budget bit-for-bit. No effect without [`Self::faults`].
    pub fn coding(&mut self, kind: CodingKind) -> &mut Self {
        self.coding = kind;
        self
    }

    /// Selects the remap backend absorbing faulty pages. The default,
    /// [`RemapKind::Retire`], reproduces the legacy one-way retirement
    /// pool bit-for-bit. No effect without [`Self::faults`].
    pub fn remap(&mut self, kind: RemapKind) -> &mut Self {
        self.remap_kind = kind;
        self
    }

    /// Spare frames for fault-driven page retirement: a slice of the
    /// reserved low-page region (below the workload windows at
    /// `pages/16`, above the metadata pages at the bottom).
    fn spare_frames(geometry: &Geometry) -> Vec<u64> {
        let reserve_base = geometry.pages() as u64 / 32;
        (reserve_base..reserve_base + 2048).collect()
    }

    /// Runs the configured system to completion.
    ///
    /// # Panics
    ///
    /// Panics if neither cores nor a service stream were added.
    pub fn run(self) -> RunResult {
        assert!(
            !self.traces.is_empty() || self.service.is_some(),
            "at least one core or a service stream required"
        );
        let map = AddressMap::with_interleave(self.geometry.clone(), self.interleave);
        let policy = self.scheme.build_policy_with(
            &self.params,
            &self.ladder_table,
            &self.blp_table,
            &map,
            self.track_exact,
            self.ladder_override.clone(),
        );
        let mut mc = MemoryController::new(self.mem_cfg, map, policy);
        let wear = if self.track_wear {
            let shared = SharedWearMap::new();
            mc.set_observer(shared.clone());
            Some(shared)
        } else {
            None
        };
        // The fault model always samples against the physical LADDER table
        // (it describes the device, not the active policy), so every scheme
        // faces identical raw fault pressure.
        let coding_kind = self.coding;
        let remap_kind = self.remap_kind;
        let fault_model = self.fault_cfg.map(|fcfg| {
            let frames = Self::spare_frames(&self.geometry);
            let backend = match remap_kind {
                RemapKind::Retire => RemapBackend::Retire(SharedRetirePool::with_spares(frames)),
                // Same wear-rotation cadence as the segment VWL leveler.
                RemapKind::Pad => RemapBackend::Pad(SharedPadRemapper::new(frames, 100_000)),
            };
            let model = CellFaultModel::new(
                fcfg,
                self.ladder_table.clone(),
                AddressMap::with_interleave(self.geometry.clone(), self.interleave),
            )
            .with_coding(coding_kind)
            .with_remap_backend(backend.clone());
            let shared = SharedCellFaultModel::new(model);
            mc.set_fault_injector(shared.clone());
            (shared, backend)
        });
        let mut cores: Vec<Core> = self
            .traces
            .into_iter()
            .zip(&self.core_mlps)
            .map(|(t, &mlp)| {
                let cfg = CoreConfig {
                    mlp,
                    ..self.core_cfg
                };
                Core::new(cfg, t)
            })
            .collect();

        let service = self.service.map(|gen| {
            // Register every tenant up front so idle tenants still appear
            // in the folded report.
            let mut stats = ServiceStats::default();
            for t in gen.mix().tenants() {
                stats
                    .tenants
                    .ensure(&t.name, (t.weight * 1e6) as u64, t.qos.code());
            }
            ServiceState {
                gen,
                next: None,
                pending: VecDeque::new(),
                inflight: BTreeMap::new(),
                stats,
            }
        });
        let mut sim = EventKernel {
            mc,
            leveler: self.leveler,
            remap: fault_model.as_ref().map(|(_, backend)| backend.clone()),
            hwl: self.hwl,
            pending_reads: BTreeMap::new(),
            pending_migrations: VecDeque::new(),
            core_finish: vec![None; cores.len()],
            events: EventQueue::with_backend(self.queue),
            core_wake: vec![None; cores.len()],
            waiting: vec![false; cores.len()],
            last_process: None,
            ctrl_dirty: false,
            counts: EventCounts::default(),
            recorder: if self.tracing {
                TraceRecorder::enabled()
            } else {
                TraceRecorder::disabled()
            },
            service,
        };
        if self.tracing {
            sim.mc.set_trace_recorder(TraceRecorder::enabled());
        }
        if let Some(shard) = self.shard {
            // Bind the shard identity into the trace stream (and hence
            // the digest) before any kernel event fires. A no-op unless
            // tracing is on.
            sim.recorder
                .record(Instant::ZERO, TraceRecord::ShardTag { shard });
        }
        let end = sim.run(&mut cores);

        let core_results: Vec<CoreResult> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let finish = sim.core_finish[i].unwrap_or(end);
                CoreResult {
                    label: c.label().to_string(),
                    retired: c.retired_instructions(),
                    ipc: c.ipc(finish),
                    finish,
                    stall: c.stall_time(),
                }
            })
            .collect();

        let trace = if self.tracing {
            let kernel_rec = std::mem::replace(&mut sim.recorder, TraceRecorder::disabled());
            let mc_rec = sim.mc.take_trace_recorder();
            Some(Trace::assemble(vec![
                ("kernel", kernel_rec),
                ("memctrl", mc_rec),
            ]))
        } else {
            None
        };

        let mem = sim.mc.stats();
        let mut meter = EnergyMeter::new(self.energy_params);
        meter.record_reads(mem.demand_reads + mem.smb_reads + mem.metadata_reads);
        meter.record_write_aggregate(
            mem.t_wr_data + mem.t_wr_metadata,
            mem.bits_set + mem.bits_reset,
            mem.data_writes + mem.metadata_writes,
        );
        RunResult {
            scheme: self.scheme,
            cores: core_results,
            mem,
            energy: meter.breakdown(),
            end,
            cw_trace: sim.mc.policy().cw_trace(),
            cache_hit: sim.mc.policy().cache_hit_ratio(),
            fnw: sim.mc.policy().fnw_stats(),
            read_histogram: sim.mc.read_histogram().clone(),
            wear,
            coding: fault_model
                .as_ref()
                .map(|(shared, _)| shared.coding_stats()),
            faults: fault_model.map(|(shared, _)| shared.stats()),
            events: sim.counts,
            trace,
            service: sim.service.map(|s| s.stats),
        }
    }
}

/// What a scheduled kernel event means when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A core's compute phase ends and its next memory op is due.
    CoreWake(usize),
    /// A demand read's data burst finishes; deliver it to its core.
    ReadComplete(ReqId),
    /// A controller-registered wake (see [`CtrlWake`]).
    Ctrl(CtrlWake),
    /// The open-loop service stream's next request arrives. Exactly one
    /// is in flight at a time; dispatching it pumps the next.
    Arrival,
}

/// Per-event-kind dispatch counters for one run of the event kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Core compute phases ending.
    pub core_wake: u64,
    /// Demand-read completions delivered to cores.
    pub read_complete: u64,
    /// Controller wakes: new work arrived in a queue.
    pub ctrl_work_arrived: u64,
    /// Controller wakes: a bank finished its operation.
    pub ctrl_bank_free: u64,
    /// Controller wakes: a write-queue slot freed.
    pub ctrl_queue_slot_free: u64,
    /// Controller wakes: a queued write's last dependency read completed.
    pub ctrl_dep_ready: u64,
    /// Controller wakes: a channel switched read/write-drain mode.
    pub ctrl_mode_switch: u64,
    /// Controller wakes: a program-and-verify retry pulse fired.
    pub ctrl_retry_pulse: u64,
    /// Open-loop service requests arriving (service mode only; always
    /// zero on the closed-loop path).
    pub request_arrival: u64,
}

impl EventCounts {
    /// Total events dispatched.
    pub fn total(&self) -> u64 {
        self.core_wake
            + self.read_complete
            + self.ctrl_work_arrived
            + self.ctrl_bank_free
            + self.ctrl_queue_slot_free
            + self.ctrl_dep_ready
            + self.ctrl_mode_switch
            + self.ctrl_retry_pulse
            + self.request_arrival
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &EventCounts) {
        self.core_wake = self.core_wake.saturating_add(other.core_wake);
        self.read_complete = self.read_complete.saturating_add(other.read_complete);
        self.ctrl_work_arrived = self
            .ctrl_work_arrived
            .saturating_add(other.ctrl_work_arrived);
        self.ctrl_bank_free = self.ctrl_bank_free.saturating_add(other.ctrl_bank_free);
        self.ctrl_queue_slot_free = self
            .ctrl_queue_slot_free
            .saturating_add(other.ctrl_queue_slot_free);
        self.ctrl_dep_ready = self.ctrl_dep_ready.saturating_add(other.ctrl_dep_ready);
        self.ctrl_mode_switch = self.ctrl_mode_switch.saturating_add(other.ctrl_mode_switch);
        self.ctrl_retry_pulse = self.ctrl_retry_pulse.saturating_add(other.ctrl_retry_pulse);
        self.request_arrival = self.request_arrival.saturating_add(other.request_arrival);
    }

    fn count(&mut self, ev: EventKind) {
        match ev {
            EventKind::CoreWake(_) => self.core_wake += 1,
            EventKind::ReadComplete(_) => self.read_complete += 1,
            EventKind::Ctrl(CtrlWake::WorkArrived) => self.ctrl_work_arrived += 1,
            EventKind::Ctrl(CtrlWake::BankFree) => self.ctrl_bank_free += 1,
            EventKind::Ctrl(CtrlWake::QueueSlotFree) => self.ctrl_queue_slot_free += 1,
            EventKind::Ctrl(CtrlWake::DepReady) => self.ctrl_dep_ready += 1,
            EventKind::Ctrl(CtrlWake::ModeSwitch) => self.ctrl_mode_switch += 1,
            EventKind::Ctrl(CtrlWake::RetryPulse) => self.ctrl_retry_pulse += 1,
            EventKind::Arrival => self.request_arrival += 1,
        }
    }
}

impl Mergeable for EventCounts {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// The trace-record dispatch kind for a kernel event.
fn dispatch_kind(ev: EventKind) -> DispatchKind {
    match ev {
        EventKind::CoreWake(_) => DispatchKind::CoreWake,
        EventKind::ReadComplete(_) => DispatchKind::ReadComplete,
        EventKind::Ctrl(CtrlWake::WorkArrived) => DispatchKind::CtrlWorkArrived,
        EventKind::Ctrl(CtrlWake::BankFree) => DispatchKind::CtrlBankFree,
        EventKind::Ctrl(CtrlWake::QueueSlotFree) => DispatchKind::CtrlQueueSlotFree,
        EventKind::Ctrl(CtrlWake::DepReady) => DispatchKind::CtrlDepReady,
        EventKind::Ctrl(CtrlWake::ModeSwitch) => DispatchKind::CtrlModeSwitch,
        EventKind::Ctrl(CtrlWake::RetryPulse) => DispatchKind::CtrlRetryPulse,
        EventKind::Arrival => DispatchKind::RequestArrival,
    }
}

/// The discrete-event kernel tying cores, controller and wear-leveling
/// together.
///
/// Time advances only from event to event: the pump pops the earliest
/// scheduled `(Instant, EventKind)` (FIFO among ties, so runs are
/// deterministic), dispatches it, absorbs any wakes the dispatch
/// registered, and repeats until the queue is empty — at which point every
/// core must have finished. There is no time nudge and no iteration guard:
/// a component that cannot make progress without an external state change
/// simply has no event scheduled, and the state change that unblocks it
/// schedules one.
struct EventKernel {
    mc: MemoryController,
    leveler: Option<Box<dyn WearLeveler>>,
    /// Fault-driven page remapping (retirement chains or PAD decoder
    /// swaps), applied after the primary leveler (both remap physical
    /// pages; the fault backend wins last).
    remap: Option<RemapBackend>,
    hwl: Option<RotateHwl>,
    pending_reads: BTreeMap<u64, usize>,
    pending_migrations: VecDeque<LineAddr>,
    core_finish: Vec<Option<Instant>>,
    events: EventQueue<EventKind>,
    /// Earliest pending [`EventKind::CoreWake`] per core, for dedup.
    core_wake: Vec<Option<Instant>>,
    /// Cores whose last drive ended blocked on the controller (rejected
    /// request, full MSHRs or a critical read); re-driven after each
    /// controller dispatch.
    waiting: Vec<bool>,
    /// Instant of the most recent `MemoryController::process` call, for
    /// coalescing same-instant controller wakes into one dispatch.
    last_process: Option<Instant>,
    /// Whether kernel-side enqueues happened since `last_process`.
    ctrl_dirty: bool,
    counts: EventCounts,
    recorder: TraceRecorder,
    /// Open-loop service mode, when a service stream drives the run.
    service: Option<ServiceState>,
}

/// Kernel-side state of the open-loop service stream.
///
/// Arrivals are pumped one at a time: the next request is drawn from the
/// generator, held in `next`, and scheduled as an [`EventKind::Arrival`]
/// at its timestamp. Requests the controller cannot accept yet wait in
/// `pending` — that queue is the open-loop difference: it keeps filling
/// at arrival rate while the banks are busy, and each read's latency runs
/// from its *arrival*, not from controller acceptance.
struct ServiceState {
    gen: ServiceGen,
    /// The drawn-but-not-yet-dispatched next arrival.
    next: Option<ladder_workloads::service::ServiceRequest>,
    /// Arrived requests the controller has not accepted yet, FIFO, as
    /// `(arrival instant, tenant index, operation)`.
    pending: VecDeque<(Instant, usize, TraceOp)>,
    /// Accepted reads awaiting completion: request id → (tenant index,
    /// arrival instant).
    inflight: BTreeMap<u64, (usize, Instant)>,
    stats: ServiceStats,
}

impl EventKernel {
    fn map_addr(&self, logical: LineAddr) -> LineAddr {
        let leveled = match &self.leveler {
            Some(l) => l.map(logical),
            None => logical,
        };
        match &self.remap {
            Some(backend) => backend.map(leveled),
            None => leveled,
        }
    }

    fn run(&mut self, cores: &mut [Core]) -> Instant {
        let mut now = Instant::ZERO;
        for i in 0..cores.len() {
            self.drive_core(cores, i, now);
        }
        self.pump_service_arrival();
        self.absorb();
        while let Some((t, ev)) = self.events.pop() {
            assert!(
                t >= now,
                "event kernel time went backwards: {t} after {now}"
            );
            now = t;
            self.counts.count(ev);
            self.recorder.record(
                now,
                TraceRecord::KernelDispatch {
                    kind: dispatch_kind(ev),
                },
            );
            match ev {
                EventKind::CoreWake(i) => {
                    if self.core_wake[i] == Some(t) {
                        self.core_wake[i] = None;
                    }
                    self.drive_core(cores, i, now);
                }
                EventKind::ReadComplete(id) => {
                    if let Some(core_idx) = self.pending_reads.remove(&id.0) {
                        cores[core_idx].on_read_completed(id.0, now);
                        self.drive_core(cores, core_idx, now);
                    } else if let Some(svc) = &mut self.service {
                        if let Some((tenant, arrived)) = svc.inflight.remove(&id.0) {
                            svc.stats.reads_completed += 1;
                            // Open-loop latency runs from *arrival*, not
                            // from controller acceptance: queueing ahead
                            // of the controller counts against the SLO.
                            let latency = now.duration_since(arrived);
                            let name = &svc.gen.mix().tenants()[tenant].name;
                            svc.stats.tenants.record_read(name, latency);
                        }
                    }
                }
                EventKind::Ctrl(_) => {
                    // Several controller wakes can land on one instant (a
                    // burst of enqueues, a bank free plus a dep ready);
                    // one process() serves them all.
                    if self.ctrl_dirty || self.last_process != Some(now) {
                        self.process_ctrl(cores, now);
                    }
                }
                EventKind::Arrival => {
                    if let Some(svc) = &mut self.service {
                        if let Some(req) = svc.next.take() {
                            svc.stats.arrivals += 1;
                            svc.pending.push_back((
                                Instant::from_ps(req.at_ps),
                                req.tenant,
                                req.op,
                            ));
                        }
                    }
                    self.pump_service_arrival();
                    self.drain_service(now);
                    if let Some(svc) = &mut self.service {
                        if !svc.pending.is_empty() {
                            // The controller is saturated; this arrival
                            // queues kernel-side — the open-loop signal a
                            // closed-loop run can never produce.
                            svc.stats.deferred += 1;
                        }
                    }
                }
            }
            self.absorb();
        }
        assert!(
            cores.iter().all(|c| c.is_finished()),
            "event queue drained with unfinished cores (scheduling bug)"
        );
        if let Some(svc) = &self.service {
            assert!(
                svc.next.is_none() && svc.pending.is_empty() && svc.inflight.is_empty(),
                "event queue drained with undelivered service requests (scheduling bug)"
            );
        }
        self.mc.finish(now)
    }

    /// Draws the service stream's next request (when none is in flight)
    /// and schedules its arrival.
    fn pump_service_arrival(&mut self) {
        let Some(svc) = &mut self.service else { return };
        if svc.next.is_some() {
            return;
        }
        let Some(req) = svc.gen.next_request() else {
            return;
        };
        let at = Instant::from_ps(req.at_ps);
        svc.next = Some(req);
        self.events.schedule(at, EventKind::Arrival);
    }

    /// Offers pending service requests to the controller in arrival
    /// order, stopping at the first the controller cannot accept (FIFO —
    /// later requests must not overtake a blocked head-of-line request).
    fn drain_service(&mut self, now: Instant) {
        loop {
            let Some((arrived, tenant, op)) =
                self.service.as_mut().and_then(|s| s.pending.pop_front())
            else {
                return;
            };
            match op {
                TraceOp::Read { addr, critical } => {
                    let phys = self.map_addr(addr);
                    match self.mc.enqueue_read(phys, now) {
                        Some(id) => {
                            self.ctrl_dirty = true;
                            if let Some(svc) = &mut self.service {
                                svc.inflight.insert(id.0, (tenant, arrived));
                            }
                        }
                        None => {
                            if let Some(svc) = &mut self.service {
                                svc.pending.push_front((
                                    arrived,
                                    tenant,
                                    TraceOp::Read { addr, critical },
                                ));
                            }
                            return;
                        }
                    }
                }
                TraceOp::Write { addr, data } => {
                    // Mirror the core write path exactly: rotate, note
                    // wear, remap, then offer — and on rejection requeue
                    // the original op so the retry recomputes everything,
                    // like a re-driven core does.
                    let stored = match &mut self.hwl {
                        Some(h) => h.rotate_for_write(addr, &data),
                        None => *data,
                    };
                    let mut migrations = match &mut self.leveler {
                        Some(l) => l.note_write(addr),
                        None => Vec::new(),
                    };
                    if let Some(backend) = &mut self.remap {
                        migrations.extend(backend.note_write(addr));
                    }
                    let phys = self.map_addr(addr);
                    if self.mc.enqueue_write(phys, stored, now) {
                        self.ctrl_dirty = true;
                        self.pending_migrations.extend(migrations);
                        if let Some(svc) = &mut self.service {
                            svc.stats.writes_accepted += 1;
                            let name = &svc.gen.mix().tenants()[tenant].name;
                            svc.stats.tenants.note_write(name);
                        }
                    } else {
                        if let Some(svc) = &mut self.service {
                            svc.pending.push_front((
                                arrived,
                                tenant,
                                TraceOp::Write { addr, data },
                            ));
                        }
                        return;
                    }
                }
            }
        }
    }

    /// Runs the controller at `now`, then retries everything a freed queue
    /// slot or completed operation may have unblocked: deferred migration
    /// writes and cores waiting on the controller.
    fn process_ctrl(&mut self, cores: &mut [Core], now: Instant) {
        self.mc.process(now);
        self.last_process = Some(now);
        self.ctrl_dirty = false;
        while let Some(&m) = self.pending_migrations.front() {
            if !self.mc.can_enqueue_write(m) {
                break;
            }
            let data = self.mc.store().read(m);
            let ok = self.mc.enqueue_write(m, data, now);
            debug_assert!(ok);
            self.ctrl_dirty = true;
            self.pending_migrations.pop_front();
        }
        // Freed queue slots pull queued open-loop requests before waiting
        // cores are re-driven (arrivals precede core retries in time).
        self.drain_service(now);
        for i in 0..cores.len() {
            if self.waiting[i] {
                self.waiting[i] = false;
                self.drive_core(cores, i, now);
            }
        }
    }

    /// Transfers wakes and read completions the controller registered
    /// during the last dispatch into the kernel's event queue.
    fn absorb(&mut self) {
        for (at, wake) in self.mc.take_wakes() {
            self.events.schedule(at, EventKind::Ctrl(wake));
        }
        for (id, at) in self.mc.take_completed_reads() {
            self.events.schedule(at, EventKind::ReadComplete(id));
        }
    }

    fn schedule_core_wake(&mut self, i: usize, t: Instant) {
        // A core's compute cursor only moves forward, so an already
        // scheduled wake at or before `t` covers this request.
        if self.core_wake[i].is_none_or(|s| t < s) {
            self.core_wake[i] = Some(t);
            self.events.schedule(t, EventKind::CoreWake(i));
        }
    }

    /// Advances core `i` through every action it can take at `now`,
    /// scheduling its next wake or marking it as waiting on the
    /// controller.
    fn drive_core(&mut self, cores: &mut [Core], i: usize, now: Instant) {
        loop {
            match cores[i].next_action(now) {
                CoreAction::Finished => {
                    if self.core_finish[i].is_none() {
                        self.core_finish[i] = Some(now);
                    }
                    return;
                }
                CoreAction::Idle { until } => {
                    match until {
                        Some(t) => self.schedule_core_wake(i, t),
                        // Waiting on an external completion or queue
                        // space; a ReadComplete or controller dispatch
                        // re-drives this core.
                        None => self.waiting[i] = true,
                    }
                    return;
                }
                CoreAction::IssueRead { addr } => {
                    let phys = self.map_addr(addr);
                    match self.mc.enqueue_read(phys, now) {
                        Some(id) => {
                            self.ctrl_dirty = true;
                            self.pending_reads.insert(id.0, i);
                            cores[i].on_read_issued(id.0, now);
                        }
                        None => {
                            cores[i].on_read_rejected(now);
                            self.waiting[i] = true;
                            return;
                        }
                    }
                }
                CoreAction::IssueWrite { addr, data } => {
                    let stored = match &mut self.hwl {
                        Some(h) => h.rotate_for_write(addr, &data),
                        None => *data,
                    };
                    let mut migrations = match &mut self.leveler {
                        Some(l) => l.note_write(addr),
                        None => Vec::new(),
                    };
                    if let Some(backend) = &mut self.remap {
                        migrations.extend(backend.note_write(addr));
                    }
                    let phys = self.map_addr(addr);
                    if self.mc.enqueue_write(phys, stored, now) {
                        self.ctrl_dirty = true;
                        cores[i].on_write_accepted(now);
                        self.pending_migrations.extend(migrations);
                    } else {
                        cores[i].on_write_rejected(now);
                        self.waiting[i] = true;
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_cpu::{MemEvent, TraceOp, VecTrace};
    use ladder_memctrl::standard_tables;
    use ladder_xbar::TableConfig;

    fn tables() -> (TimingTable, TimingTable) {
        let t = standard_tables(&TableConfig::ladder_default());
        (t.ladder, t.blp)
    }

    fn simple_trace(n: u64, base_page: u64) -> VecTrace {
        let events = (0..n)
            .map(|i| MemEvent {
                gap_instructions: 200,
                op: if i % 3 == 0 {
                    TraceOp::Write {
                        addr: LineAddr::new(base_page * 64 + i % 640),
                        data: Box::new([(i % 256) as u8; 64]),
                    }
                } else {
                    TraceOp::Read {
                        addr: LineAddr::new(base_page * 64 + (i * 7) % 640),
                        critical: i % 2 == 0,
                    }
                },
            })
            .collect();
        VecTrace::new("simple", events)
    }

    #[test]
    fn single_core_run_completes() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.core(Box::new(simple_trace(300, 40_000)), 8);
        let r = b.run();
        assert_eq!(r.cores.len(), 1);
        assert!(r.cores[0].retired > 0);
        assert!(r.cores[0].ipc > 0.0);
        assert_eq!(r.mem.data_writes, 100);
        assert_eq!(r.mem.demand_reads, 200);
        assert!(r.energy.total_pj() > 0.0);
        // The event kernel accounts every dispatch.
        assert!(r.events.core_wake > 0);
        assert_eq!(r.events.read_complete, 200);
        assert!(r.events.ctrl_work_arrived > 0);
        assert!(r.events.ctrl_bank_free > 0);
        assert!(r.events_per_sim_second() > 0.0);
    }

    #[test]
    fn drain_mode_switch_progresses_without_nudge() {
        // Regression for the scenario the old polled loop papered over
        // with a 1 ns time nudge: every core is blocked on a full write
        // queue, and no queue slot can free until the controller switches
        // into write-drain mode. Nothing external is scheduled at that
        // point — the polled loop found no candidate instant and had to
        // invent one. The event kernel must drain purely from registered
        // wakes (WorkArrived → ModeSwitch → QueueSlotFree), with no nudge
        // and no iteration guard.
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.mem_config(MemCtrlConfig {
            rdq_capacity: 4,
            wrq_capacity: 4,
            drain_high: 4,
            drain_low: 1,
            spill_capacity: 4,
            ..MemCtrlConfig::default()
        });
        for c in 0..2u64 {
            let events = (0..40u64)
                .map(|i| MemEvent {
                    // Zero compute gap: the core re-offers its write the
                    // moment the previous one is accepted.
                    gap_instructions: 0,
                    op: TraceOp::Write {
                        addr: LineAddr::new((40_000 + c * 5_000) * 64 + i),
                        data: Box::new([(i % 251) as u8; 64]),
                    },
                })
                .collect();
            b.core(Box::new(VecTrace::new("writes", events)), 4);
        }
        let r = b.run();
        assert_eq!(r.mem.data_writes, 80, "every write must be serviced");
        assert!(r.mem.drain_switches > 0, "scenario must exercise the drain");
        assert!(r.events.ctrl_mode_switch > 0);
        assert!(r.events.ctrl_queue_slot_free > 0);
        for c in &r.cores {
            assert!(c.retired > 0);
        }
    }

    #[test]
    fn ladder_beats_baseline_on_write_service() {
        let (lt, bt) = tables();
        let run = |scheme| {
            let mut b = SystemBuilder::new(scheme, lt.clone(), bt.clone());
            b.core(Box::new(simple_trace(600, 40_000)), 8);
            b.run()
        };
        let base = run(Scheme::Baseline);
        let ladder = run(Scheme::LadderHybrid);
        assert!(
            ladder.avg_write_service() < base.avg_write_service(),
            "LADDER {} vs baseline {}",
            ladder.avg_write_service(),
            base.avg_write_service()
        );
        assert!(ladder.cache_hit.expect("ladder cache") > 0.0);
    }

    #[test]
    fn four_core_run_isolates_windows() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::LadderEst, lt, bt);
        for c in 0..4u64 {
            b.core(Box::new(simple_trace(200, 40_000 + c * 5_000)), 8);
        }
        let r = b.run();
        assert_eq!(r.cores.len(), 4);
        for c in &r.cores {
            assert!(c.retired > 0);
        }
        assert_eq!(r.mem.data_writes, 4 * 67); // 67 writes per core trace
    }

    #[test]
    fn service_mode_runs_without_cores_and_records_tenant_tails() {
        use crate::experiments::ExperimentConfig;
        use crate::service::{feed_for, ServiceConfig};

        let (lt, bt) = tables();
        let scfg = ServiceConfig::builder().load(6.0).requests(2_000).build();
        let ecfg = ExperimentConfig::default();
        let run = |scheme| {
            let mut b = SystemBuilder::new(scheme, lt.clone(), bt.clone());
            b.service(feed_for(&scfg, &ecfg, &Geometry::default(), None));
            b.run()
        };
        let r = run(Scheme::Baseline);
        assert!(r.cores.is_empty());
        let svc = r.service.as_ref().expect("service mode");
        assert_eq!(svc.arrivals, 2_000);
        assert_eq!(
            svc.reads_completed + svc.writes_accepted,
            2_000,
            "every request must be serviced"
        );
        assert_eq!(r.events.request_arrival, 2_000);
        assert_eq!(svc.tenants.total_reads(), svc.reads_completed);
        assert_eq!(svc.tenants.total_writes(), svc.writes_accepted);
        // All three tenants are registered, with their QoS codes.
        let groups: Vec<_> = svc.tenants.iter().collect();
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|(_, g)| g.qos_code > 0));
        // Open-loop latency (arrival→completion) includes kernel-side
        // queueing, so it can only exceed the controller's own
        // acceptance→completion histogram at the tail.
        let t0 = svc.tenants.group("t0").expect("t0 registered");
        assert!(t0.reads.count() > 0);
        assert!(t0.reads.percentile(0.99) >= r.read_histogram.percentile(0.5));

        // Deterministic: identical feeds give identical stats.
        let r2 = run(Scheme::Baseline);
        assert_eq!(r.service, r2.service);
        assert_eq!(r.end, r2.end);
    }

    #[test]
    fn service_mode_is_open_loop_under_overload() {
        use crate::experiments::ExperimentConfig;
        use crate::service::{feed_for, ServiceConfig};

        let (lt, bt) = tables();
        // Writes are slow; an all-write stream at absurd offered load must
        // queue kernel-side (deferred arrivals) yet still fully drain.
        let scfg = ServiceConfig::builder()
            .load(500.0)
            .read_fraction(0.0)
            .requests(500)
            .build();
        let ecfg = ExperimentConfig::default();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.service(feed_for(&scfg, &ecfg, &Geometry::default(), None));
        let r = b.run();
        let svc = r.service.expect("service mode");
        assert_eq!(svc.writes_accepted, 500);
        assert!(
            svc.deferred > 0,
            "overload must leave arrivals queued at the controller"
        );
    }

    #[test]
    fn wear_tracking_collects_counts() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.core(Box::new(simple_trace(90, 40_000)), 8);
        b.track_wear(true);
        let r = b.run();
        let wear = r.wear.expect("tracking enabled");
        assert_eq!(wear.with(|w| w.total_writes()), r.mem.data_writes);
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use crate::config::{run_sim, SimConfig};
    use crate::experiments::{ExperimentConfig, Workload};

    #[test]
    fn summary_mentions_every_section() {
        let cfg = ExperimentConfig {
            instructions_per_core: 20_000,
            ..ExperimentConfig::default()
        };
        let tables = cfg.tables();
        let r = run_sim(
            &SimConfig::new(Scheme::LadderHybrid, Workload::Single("astar")),
            &cfg,
            &tables,
        );
        let s = r.summary();
        for needle in [
            "scheme: LADDER-Hybrid",
            "core 0 (astar)",
            "reads:",
            "writes:",
            "cells switched:",
            "energy:",
            "metadata cache hit ratio:",
            "simulated time:",
        ] {
            assert!(s.contains(needle), "summary missing {needle:?}:\n{s}");
        }
    }
}
