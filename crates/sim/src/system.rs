//! The full-system simulator: cores, memory controller, optional
//! wear-leveling, and the event loop connecting them.

use crate::scheme::Scheme;
use ladder_core::LadderConfig;
use ladder_cpu::{Core, CoreAction, CoreConfig, TraceSource};
use ladder_energy::{EnergyBreakdown, EnergyMeter, EnergyParams};
use ladder_memctrl::{
    CwTrace, LatencyHistogram, MemCtrlConfig, MemStats, MemoryController, ReqId, Tables,
};
use ladder_reram::{AddressMap, Geometry, Instant, LineAddr, Picos};
use ladder_wear::{RotateHwl, SharedWearMap, WearLeveler};
use ladder_xbar::{CrossbarParams, TimingTable};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Per-core outcome of a run.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Workload label.
    pub label: String,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions per cycle over the core's own execution window.
    pub ipc: f64,
    /// When the core finished.
    pub finish: Instant,
    /// Time the core spent stalled on memory.
    pub stall: Picos,
}

/// Outcome of one system run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme that was active.
    pub scheme: Scheme,
    /// Per-core results (inactive cores omitted).
    pub cores: Vec<CoreResult>,
    /// Memory-controller statistics.
    pub mem: MemStats,
    /// Dynamic energy breakdown.
    pub energy: EnergyBreakdown,
    /// Final simulated time (after the closing drain).
    pub end: Instant,
    /// Estimation-accuracy trace (LADDER schemes with tracking enabled).
    pub cw_trace: Option<CwTrace>,
    /// Metadata-cache hit ratio (LADDER schemes).
    pub cache_hit: Option<f64>,
    /// `(flips cancelled, flip opportunities)` under constrained FNW
    /// (LADDER schemes).
    pub fnw: Option<(u64, u64)>,
    /// Distribution of demand-read latencies.
    pub read_histogram: LatencyHistogram,
    /// Wear map, when wear tracking was requested.
    pub wear: Option<SharedWearMap>,
}

impl RunResult {
    /// IPC of core 0 (the single-programmed metric).
    pub fn ipc0(&self) -> f64 {
        self.cores.first().map(|c| c.ipc).unwrap_or(0.0)
    }

    /// Renders a human-readable report of everything this run measured.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scheme: {}", self.scheme.name());
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                out,
                "  core {i} ({}): {} instructions, IPC {:.3}, stalled {:.1} us",
                c.label,
                c.retired,
                c.ipc,
                c.stall.as_ns() / 1000.0
            );
        }
        let m = &self.mem;
        let _ = writeln!(
            out,
            "  reads: {} demand (avg {:.1} ns, P95 {:.1}, P99 {:.1}), {} SMB, {} metadata",
            m.demand_reads,
            m.avg_read_latency().as_ns(),
            self.read_histogram.percentile(0.95).as_ns(),
            self.read_histogram.percentile(0.99).as_ns(),
            m.smb_reads,
            m.metadata_reads
        );
        let _ = writeln!(
            out,
            "  writes: {} data (avg service {:.1} ns), {} metadata, {} drain switches",
            m.data_writes,
            m.avg_write_service().as_ns(),
            m.metadata_writes,
            m.drain_switches
        );
        let _ = writeln!(
            out,
            "  cells switched: {} set, {} reset",
            m.bits_set, m.bits_reset
        );
        let _ = writeln!(
            out,
            "  energy: {:.1} nJ read + {:.1} nJ write",
            self.energy.read_pj / 1000.0,
            self.energy.write_pj / 1000.0
        );
        if let Some(hit) = self.cache_hit {
            let _ = writeln!(out, "  metadata cache hit ratio: {hit:.3}");
        }
        if let Some((cancelled, opportunities)) = self.fnw {
            if opportunities > 0 {
                let _ = writeln!(
                    out,
                    "  FNW: {cancelled}/{opportunities} flips cancelled by the constraint"
                );
            }
        }
        if let Some(t) = self.cw_trace {
            let _ = writeln!(out, "  counter estimate − exact (mean): {:.1}", t.mean_diff());
        }
        let _ = writeln!(out, "  simulated time: {:.1} us", self.end.as_ps() as f64 / 1e6);
        out
    }

    /// Mean write service time.
    pub fn avg_write_service(&self) -> Picos {
        self.mem.avg_write_service()
    }

    /// Mean demand read latency.
    pub fn avg_read_latency(&self) -> Picos {
        self.mem.avg_read_latency()
    }
}

/// Everything needed to run one configuration.
pub struct SystemBuilder {
    geometry: Geometry,
    mem_cfg: MemCtrlConfig,
    core_cfg: CoreConfig,
    params: CrossbarParams,
    ladder_table: TimingTable,
    blp_table: TimingTable,
    scheme: Scheme,
    traces: Vec<Box<dyn TraceSource>>,
    core_mlps: Vec<usize>,
    track_exact: bool,
    track_wear: bool,
    leveler: Option<Box<dyn WearLeveler>>,
    hwl: Option<RotateHwl>,
    energy_params: EnergyParams,
    ladder_override: Option<LadderConfig>,
}

impl SystemBuilder {
    /// Starts a builder for `scheme`, cloning both tables out of a shared
    /// [`Tables`] bundle.
    pub fn with_tables(scheme: Scheme, tables: &Tables) -> Self {
        Self::new(scheme, tables.ladder.clone(), tables.blp.clone())
    }

    /// Starts a builder for `scheme` over shared timing tables.
    pub fn new(scheme: Scheme, ladder_table: TimingTable, blp_table: TimingTable) -> Self {
        Self {
            geometry: Geometry::default(),
            mem_cfg: MemCtrlConfig::default(),
            core_cfg: CoreConfig::default(),
            params: CrossbarParams::default(),
            ladder_table,
            blp_table,
            scheme,
            traces: Vec::new(),
            core_mlps: Vec::new(),
            track_exact: false,
            track_wear: false,
            leveler: None,
            hwl: None,
            energy_params: EnergyParams::default(),
            ladder_override: None,
        }
    }

    /// Adds a core running `trace` with the given MLP.
    pub fn core(&mut self, trace: Box<dyn TraceSource>, mlp: usize) -> &mut Self {
        self.traces.push(trace);
        self.core_mlps.push(mlp);
        self
    }

    /// Overrides the LADDER engine configuration (cache geometry,
    /// shifting, FNW policy, low-precision rows) for ablation studies;
    /// ignored by non-LADDER schemes.
    pub fn ladder_config(&mut self, cfg: LadderConfig) -> &mut Self {
        self.ladder_override = Some(cfg);
        self
    }

    /// Overrides the memory-controller configuration (queue depths, drain
    /// watermarks).
    pub fn mem_config(&mut self, cfg: MemCtrlConfig) -> &mut Self {
        self.mem_cfg = cfg;
        self
    }

    /// Enables the per-write exact-counter trace (Fig. 15).
    pub fn track_exact(&mut self, on: bool) -> &mut Self {
        self.track_exact = on;
        self
    }

    /// Enables wear tracking.
    pub fn track_wear(&mut self, on: bool) -> &mut Self {
        self.track_wear = on;
        self
    }

    /// Installs a vertical wear-leveler (applied before LADDER).
    pub fn leveler(&mut self, l: Box<dyn WearLeveler>) -> &mut Self {
        self.leveler = Some(l);
        self
    }

    /// Installs horizontal wear-leveling (intra-line byte rotation).
    pub fn horizontal_leveling(&mut self, on: bool) -> &mut Self {
        self.hwl = if on { Some(RotateHwl::new()) } else { None };
        self
    }

    /// Runs the configured system to completion.
    ///
    /// # Panics
    ///
    /// Panics if no cores were added.
    pub fn run(self) -> RunResult {
        assert!(!self.traces.is_empty(), "at least one core required");
        let map = AddressMap::new(self.geometry.clone());
        let policy = self.scheme.build_policy_with(
            &self.params,
            &self.ladder_table,
            &self.blp_table,
            &map,
            self.track_exact,
            self.ladder_override.clone(),
        );
        let mut mc = MemoryController::new(self.mem_cfg, map, policy);
        let wear = if self.track_wear {
            let shared = SharedWearMap::new();
            mc.set_observer(shared.clone());
            Some(shared)
        } else {
            None
        };
        let mut cores: Vec<Core> = self
            .traces
            .into_iter()
            .zip(&self.core_mlps)
            .map(|(t, &mlp)| {
                let cfg = CoreConfig {
                    mlp,
                    ..self.core_cfg
                };
                Core::new(cfg, t)
            })
            .collect();

        let mut sim = SystemLoop {
            mc,
            leveler: self.leveler,
            hwl: self.hwl,
            pending_reads: HashMap::new(),
            completions: BinaryHeap::new(),
            pending_migrations: VecDeque::new(),
            core_finish: vec![None; cores.len()],
        };
        let end = sim.run(&mut cores);

        let core_results: Vec<CoreResult> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let finish = sim.core_finish[i].unwrap_or(end);
                CoreResult {
                    label: c.label().to_string(),
                    retired: c.retired_instructions(),
                    ipc: c.ipc(finish),
                    finish,
                    stall: c.stall_time(),
                }
            })
            .collect();

        let mem = sim.mc.stats();
        let mut meter = EnergyMeter::new(self.energy_params);
        meter.record_reads(mem.demand_reads + mem.smb_reads + mem.metadata_reads);
        meter.record_write_aggregate(
            mem.t_wr_data + mem.t_wr_metadata,
            mem.bits_set + mem.bits_reset,
            mem.data_writes + mem.metadata_writes,
        );
        RunResult {
            scheme: self.scheme,
            cores: core_results,
            mem,
            energy: meter.breakdown(),
            end,
            cw_trace: sim.mc.policy().cw_trace(),
            cache_hit: sim.mc.policy().cache_hit_ratio(),
            fnw: sim.mc.policy().fnw_stats(),
            read_histogram: sim.mc.read_histogram().clone(),
            wear,
        }
    }
}

/// Min-heap entry for read completions.
#[derive(Debug, PartialEq, Eq)]
struct Completion(Instant, ReqId);

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap.
        other.0.cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct SystemLoop {
    mc: MemoryController,
    leveler: Option<Box<dyn WearLeveler>>,
    hwl: Option<RotateHwl>,
    pending_reads: HashMap<u64, usize>,
    completions: BinaryHeap<Completion>,
    pending_migrations: VecDeque<LineAddr>,
    core_finish: Vec<Option<Instant>>,
}

impl SystemLoop {
    fn map_addr(&self, logical: LineAddr) -> LineAddr {
        match &self.leveler {
            Some(l) => l.map(logical),
            None => logical,
        }
    }

    fn run(&mut self, cores: &mut [Core]) -> Instant {
        let mut now = Instant::ZERO;
        let mut guard: u64 = 0;
        loop {
            guard += 1;
            assert!(guard < 2_000_000_000, "system loop runaway");
            self.mc.process(now);
            // Collect newly scheduled completions.
            for (id, at) in self.mc.take_completed_reads() {
                self.completions.push(Completion(at, id));
            }
            // Deliver due completions.
            while let Some(Completion(at, id)) = self.completions.peek() {
                if *at > now {
                    break;
                }
                let (at, id) = (*at, *id);
                self.completions.pop();
                if let Some(core_idx) = self.pending_reads.remove(&id.0) {
                    cores[core_idx].on_read_completed(id.0, at);
                }
            }
            // Drain deferred migration writes opportunistically.
            while let Some(&m) = self.pending_migrations.front() {
                if !self.mc.can_enqueue_write(m) {
                    break;
                }
                let data = self.mc.store().read(m);
                let ok = self.mc.enqueue_write(m, data, now);
                debug_assert!(ok);
                self.pending_migrations.pop_front();
            }
            // Let every core act.
            let mut next_core_event: Option<Instant> = None;
            let mut all_finished = true;
            for (i, core) in cores.iter_mut().enumerate() {
                loop {
                    match core.next_action(now) {
                        CoreAction::Finished => {
                            if self.core_finish[i].is_none() {
                                self.core_finish[i] = Some(now);
                            }
                            break;
                        }
                        CoreAction::Idle { until } => {
                            all_finished = false;
                            if let Some(t) = until {
                                next_core_event = Some(match next_core_event {
                                    Some(b) => b.min(t),
                                    None => t,
                                });
                            }
                            break;
                        }
                        CoreAction::IssueRead { addr } => {
                            all_finished = false;
                            let phys = self.map_addr(addr);
                            match self.mc.enqueue_read(phys, now) {
                                Some(id) => {
                                    self.pending_reads.insert(id.0, i);
                                    core.on_read_issued(id.0, now);
                                }
                                None => {
                                    core.on_read_rejected(now);
                                    break;
                                }
                            }
                        }
                        CoreAction::IssueWrite { addr, data } => {
                            all_finished = false;
                            let stored = match &mut self.hwl {
                                Some(h) => h.rotate_for_write(addr, &data),
                                None => *data,
                            };
                            let migrations = match &mut self.leveler {
                                Some(l) => l.note_write(addr),
                                None => Vec::new(),
                            };
                            let phys = self.map_addr(addr);
                            if self.mc.enqueue_write(phys, stored, now) {
                                core.on_write_accepted(now);
                                self.pending_migrations.extend(migrations);
                            } else {
                                core.on_write_rejected(now);
                                break;
                            }
                        }
                    }
                }
            }
            if all_finished && self.completions.is_empty() {
                break;
            }
            // Advance time to the next interesting instant.
            let mut next = next_core_event;
            let mut fold = |t: Option<Instant>| {
                if let Some(t) = t {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            };
            fold(self.mc.next_event(now));
            fold(self.completions.peek().map(|c| c.0));
            match next {
                Some(t) if t > now => now = t,
                Some(_) => {
                    // Same-instant progress (e.g. a completion delivered
                    // above unblocked a core); loop again at `now`.
                }
                None => {
                    // Nothing scheduled: cores must be blocked on memory
                    // that has work but needs a mode change, or on queue
                    // space that a process() call will free. Nudge time by
                    // one controller transaction to avoid a livelock.
                    now += Picos::from_ns(1.0);
                }
            }
        }
        self.mc.finish(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_cpu::{MemEvent, TraceOp, VecTrace};
    use ladder_memctrl::standard_tables;
    use ladder_xbar::TableConfig;

    fn tables() -> (TimingTable, TimingTable) {
        let t = standard_tables(&TableConfig::ladder_default());
        (t.ladder, t.blp)
    }

    fn simple_trace(n: u64, base_page: u64) -> VecTrace {
        let events = (0..n)
            .map(|i| MemEvent {
                gap_instructions: 200,
                op: if i % 3 == 0 {
                    TraceOp::Write {
                        addr: LineAddr::new(base_page * 64 + i % 640),
                        data: Box::new([(i % 256) as u8; 64]),
                    }
                } else {
                    TraceOp::Read {
                        addr: LineAddr::new(base_page * 64 + (i * 7) % 640),
                        critical: i % 2 == 0,
                    }
                },
            })
            .collect();
        VecTrace::new("simple", events)
    }

    #[test]
    fn single_core_run_completes() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.core(Box::new(simple_trace(300, 40_000)), 8);
        let r = b.run();
        assert_eq!(r.cores.len(), 1);
        assert!(r.cores[0].retired > 0);
        assert!(r.cores[0].ipc > 0.0);
        assert_eq!(r.mem.data_writes, 100);
        assert_eq!(r.mem.demand_reads, 200);
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn ladder_beats_baseline_on_write_service() {
        let (lt, bt) = tables();
        let run = |scheme| {
            let mut b = SystemBuilder::new(scheme, lt.clone(), bt.clone());
            b.core(Box::new(simple_trace(600, 40_000)), 8);
            b.run()
        };
        let base = run(Scheme::Baseline);
        let ladder = run(Scheme::LadderHybrid);
        assert!(
            ladder.avg_write_service() < base.avg_write_service(),
            "LADDER {} vs baseline {}",
            ladder.avg_write_service(),
            base.avg_write_service()
        );
        assert!(ladder.cache_hit.expect("ladder cache") > 0.0);
    }

    #[test]
    fn four_core_run_isolates_windows() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::LadderEst, lt, bt);
        for c in 0..4u64 {
            b.core(Box::new(simple_trace(200, 40_000 + c * 5_000)), 8);
        }
        let r = b.run();
        assert_eq!(r.cores.len(), 4);
        for c in &r.cores {
            assert!(c.retired > 0);
        }
        assert_eq!(r.mem.data_writes, 4 * 67); // 67 writes per core trace
    }

    #[test]
    fn wear_tracking_collects_counts() {
        let (lt, bt) = tables();
        let mut b = SystemBuilder::new(Scheme::Baseline, lt, bt);
        b.core(Box::new(simple_trace(90, 40_000)), 8);
        b.track_wear(true);
        let r = b.run();
        let wear = r.wear.expect("tracking enabled");
        assert_eq!(wear.with(|w| w.total_writes()), r.mem.data_writes);
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use crate::experiments::{run_one, ExperimentConfig, RunOptions, Workload};

    #[test]
    fn summary_mentions_every_section() {
        let cfg = ExperimentConfig {
            instructions_per_core: 20_000,
            ..ExperimentConfig::default()
        };
        let tables = cfg.tables();
        let r = run_one(
            Scheme::LadderHybrid,
            Workload::Single("astar"),
            &cfg,
            &tables,
            RunOptions::default(),
        );
        let s = r.summary();
        for needle in [
            "scheme: LADDER-Hybrid",
            "core 0 (astar)",
            "reads:",
            "writes:",
            "cells switched:",
            "energy:",
            "metadata cache hit ratio:",
            "simulated time:",
        ] {
            assert!(s.contains(needle), "summary missing {needle:?}:\n{s}");
        }
    }
}
