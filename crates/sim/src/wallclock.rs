//! The workspace's sanctioned wall-clock access point.
//!
//! Simulated time lives in [`ladder_reram::Instant`] and must never depend
//! on the host clock — `ladder-lint`'s `wall-clock` rule denies
//! `Instant::now()` / `SystemTime` everywhere else. Host-time measurement
//! is legitimate only for *reporting* (runner throughput, bench table
//! timings), and all of it flows through this module so a reader can audit
//! every wall-clock consumer in one place.

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
///
/// Thin wrapper over [`std::time::Instant`] used for throughput and
/// elapsed-time *reporting*; never feed its output back into simulated
/// logic.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed wall time in seconds as `f64` (for rate computations).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Runs `f` and returns its result together with the wall time it took.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        let d = sw.elapsed();
        assert!(d <= sw.elapsed());
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }
}
