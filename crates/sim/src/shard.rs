//! The sharded multi-channel runner: one controller and event stream per
//! channel, folded bit-reproducibly.
//!
//! A topology `C x R` splits the module into `C` shards, each a
//! one-channel slice ([`Topology::shard_geometry`]) driven by its own
//! [`crate::system::SystemBuilder`]-built event kernel with a
//! shard-salted workload stream. Shards are fully independent
//! simulations, so they fan out on the work-stealing [`Runner`] — and
//! because the runner returns results in submission order, every merged
//! statistic and the merged golden-trace digest are bit-identical at any
//! `--jobs`.

use crate::config::{builder_for, SimConfig};
use crate::experiments::ExperimentConfig;
use crate::runner::{Runner, RunnerStats};
use crate::service::ServiceStats;
use crate::system::{EventCounts, RunResult};
use ladder_coding::CodingStats;
use ladder_energy::EnergyBreakdown;
use ladder_faults::FaultStats;
use ladder_memctrl::{LatencyHistogram, MemStats, Tables};
use ladder_reram::{Geometry, Instant, Interleave, Topology};
use ladder_trace::{merge_digests, Mergeable, TraceDigest};

/// Outcome of one sharded run: the per-shard results plus every
/// cross-shard fold a figure or gate consumes.
#[derive(Debug)]
pub struct ShardedRun {
    /// The topology that was simulated.
    pub topology: Topology,
    /// The address striping policy the shards decoded with.
    pub interleave: Interleave,
    /// Per-shard results, in shard-index (= channel) order.
    pub shards: Vec<RunResult>,
    /// Memory-controller statistics folded over all shards.
    pub mem: MemStats,
    /// Event-kernel dispatch counters folded over all shards.
    pub events: EventCounts,
    /// Dynamic energy summed over all shards.
    pub energy: EnergyBreakdown,
    /// Final simulated time: the slowest shard's end.
    pub end: Instant,
    /// Demand-read latency distribution folded over all shards.
    pub read_histogram: LatencyHistogram,
    /// Fault-model counters folded over all shards, when fault injection
    /// was requested.
    pub faults: Option<FaultStats>,
    /// Coding-layer counters folded over all shards, when fault injection
    /// was requested.
    pub coding: Option<CodingStats>,
    /// Open-loop service statistics folded over all shards, when the
    /// config selected service mode.
    pub service: Option<ServiceStats>,
    /// Merged golden-trace digest (shard digests folded in shard order),
    /// when tracing was requested and every shard produced a trace.
    pub digest: Option<TraceDigest>,
    /// Total trace records across shards.
    pub records: u64,
    /// Timing observability for the shard batch.
    pub stats: RunnerStats,
}

impl ShardedRun {
    /// Instructions retired summed over every core of every shard.
    pub fn retired(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|r| r.cores.iter())
            .map(|c| c.retired)
            .sum()
    }

    /// Renders a human-readable report of the merged run.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "topology {} ({} interleave), {} shards",
            self.topology,
            self.interleave,
            self.shards.len()
        );
        for (i, r) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i}: {} retired, {} writes, {} reads, end {:.1} us",
                r.cores.iter().map(|c| c.retired).sum::<u64>(),
                r.mem.data_writes,
                r.mem.demand_reads,
                r.end.as_ps() as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "  merged: {} writes, {} reads, {:.1} nJ, end {:.1} us, {} kernel events",
            self.mem.data_writes,
            self.mem.demand_reads,
            self.energy.total_pj() / 1000.0,
            self.end.as_ps() as f64 / 1e6,
            self.events.total()
        );
        if let Some(d) = self.digest {
            let _ = writeln!(out, "  merged trace digest: {d} ({} records)", self.records);
        }
        out
    }
}

/// Runs the sharded topology described by `cfg`: one independent
/// event-kernel simulation per channel, fanned out on `runner` and folded
/// in shard order.
///
/// # Panics
///
/// Panics if `cfg.topology` is `None`: a monolithic config belongs to
/// [`crate::config::run_sim`].
pub fn run_sharded(
    cfg: &SimConfig,
    ecfg: &ExperimentConfig,
    tables: &Tables,
    runner: &Runner,
) -> ShardedRun {
    let topology = cfg
        .topology
        // lint: allow(panic-policy) — entry-point contract: mixing the monolithic and sharded paths is a caller bug, documented under # Panics
        .expect("run_sharded requires a topology; monolithic configs go through run_sim");
    let shard_geometry = topology.shard_geometry(&Geometry::default());
    let (shards, stats) = runner.run_jobs(topology.shards(), |s| {
        builder_for(cfg, ecfg, tables, shard_geometry.clone(), Some(s as u32)).run()
    });

    let mut mem = MemStats::default();
    let mut events = EventCounts::default();
    let mut energy = EnergyBreakdown::default();
    let mut end = Instant::ZERO;
    let mut read_histogram = LatencyHistogram::default();
    let mut faults: Option<FaultStats> = None;
    let mut coding: Option<CodingStats> = None;
    let mut service: Option<ServiceStats> = None;
    let mut records = 0;
    let mut shard_digests = Vec::with_capacity(shards.len());
    for r in &shards {
        mem.merge_from(&r.mem);
        events.merge_from(&r.events);
        energy.read_pj += r.energy.read_pj;
        energy.write_pj += r.energy.write_pj;
        end = end.max(r.end);
        read_histogram.merge_from(&r.read_histogram);
        if let Some(f) = &r.faults {
            faults.get_or_insert_with(FaultStats::default).merge(f);
        }
        if let Some(c) = &r.coding {
            coding
                .get_or_insert_with(CodingStats::default)
                .merge_from(c);
        }
        if let Some(s) = &r.service {
            service
                .get_or_insert_with(ServiceStats::default)
                .merge_from(s);
        }
        if let Some(t) = &r.trace {
            records += t.records;
            shard_digests.push(t.digest);
        }
    }
    // All shards share one tracing flag, so a partial digest set can only
    // mean a logic error; fold only when complete.
    let digest =
        (cfg.trace && shard_digests.len() == shards.len()).then(|| merge_digests(shard_digests));

    ShardedRun {
        topology,
        interleave: cfg.interleave,
        shards,
        mem,
        events,
        energy,
        end,
        read_histogram,
        faults,
        coding,
        service,
        digest,
        records,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Workload;
    use crate::scheme::Scheme;

    fn sharded_cfg(channels: usize) -> SimConfig {
        SimConfig::builder()
            .scheme(Scheme::LadderEst)
            .workload(Workload::Single("astar"))
            .topology(Topology::new(channels, 2).expect("valid topology"))
            .trace(true)
            .build()
    }

    fn tiny_ecfg() -> ExperimentConfig {
        ExperimentConfig {
            instructions_per_core: 15_000,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    #[should_panic(expected = "requires a topology")]
    fn run_sharded_rejects_monolithic_configs() {
        let ecfg = tiny_ecfg();
        let tables = ecfg.tables();
        run_sharded(
            &SimConfig::new(Scheme::Baseline, Workload::Single("astar")),
            &ecfg,
            &tables,
            &Runner::sequential(),
        );
    }

    #[test]
    fn shards_are_distinct_and_folds_cover_them() {
        let ecfg = tiny_ecfg();
        let tables = ecfg.tables();
        let run = run_sharded(&sharded_cfg(2), &ecfg, &tables, &Runner::sequential());
        assert_eq!(run.shards.len(), 2);
        // Shard-salted seeds: the two channels simulate different streams.
        assert_ne!(
            run.shards[0].trace.as_ref().map(|t| t.digest),
            run.shards[1].trace.as_ref().map(|t| t.digest)
        );
        // The folds cover every shard.
        let writes: u64 = run.shards.iter().map(|r| r.mem.data_writes).sum();
        assert_eq!(run.mem.data_writes, writes);
        assert_eq!(
            run.end,
            run.shards.iter().map(|r| r.end).max().expect("two shards")
        );
        assert!(run.digest.is_some());
        assert!(run.records > 0);
        let s = run.summary();
        assert!(s.contains("topology 2x2"), "{s}");
        assert!(s.contains("merged trace digest"), "{s}");
    }

    #[test]
    fn sharded_service_runs_fold_tenant_stats_jobs_invariantly() {
        use crate::service::ServiceConfig;

        let cfg = SimConfig::builder()
            .scheme(Scheme::LadderEst)
            .workload(Workload::Single("astar"))
            .topology(Topology::new(4, 2).expect("valid topology"))
            .service(ServiceConfig::builder().load(6.0).requests(800).build())
            .build();
        let ecfg = tiny_ecfg();
        let tables = ecfg.tables();
        let seq = run_sharded(&cfg, &ecfg, &tables, &Runner::sequential());
        let par = run_sharded(&cfg, &ecfg, &tables, &Runner::with_jobs(4));
        let svc = seq.service.as_ref().expect("service mode");
        // 4 shards × 800 requests, all serviced.
        assert_eq!(svc.arrivals, 4 * 800);
        assert_eq!(svc.reads_completed + svc.writes_accepted, 4 * 800);
        // Per-shard streams are salted differently but tenant names align,
        // so the fold groups by tenant across shards.
        assert_eq!(svc.tenants.iter().count(), 3);
        // The fold is bit-reproducible at any --jobs.
        assert_eq!(seq.service, par.service);
        assert_eq!(seq.end, par.end);
    }

    #[test]
    fn merged_digest_is_jobs_invariant() {
        let ecfg = tiny_ecfg();
        let tables = ecfg.tables();
        let seq = run_sharded(&sharded_cfg(4), &ecfg, &tables, &Runner::sequential());
        let par = run_sharded(&sharded_cfg(4), &ecfg, &tables, &Runner::with_jobs(4));
        assert_eq!(seq.digest, par.digest);
        assert_eq!(seq.mem.data_writes, par.mem.data_writes);
        assert_eq!(seq.end, par.end);
    }

    #[test]
    fn each_shard_is_stamped_with_its_index() {
        let ecfg = tiny_ecfg();
        let tables = ecfg.tables();
        let run = run_sharded(&sharded_cfg(2), &ecfg, &tables, &Runner::sequential());
        for (i, r) in run.shards.iter().enumerate() {
            let t = r.trace.as_ref().expect("tracing on");
            assert_eq!(
                t.totals.shard_tags, 1,
                "shard {i} must carry exactly one ShardTag"
            );
        }
    }
}
