//! Open-loop service mode: configuration, per-run statistics, and the
//! wiring that feeds a [`ServiceGen`] request stream into the event
//! kernel.
//!
//! A [`ServiceConfig`] describes the offered traffic — arrival process,
//! load, tenant count, key skew — and rides on
//! [`SimConfig`](crate::config::SimConfig) via its
//! [`service`](crate::config::SimConfigBuilder::service) builder method.
//! When present, the kernel pumps timestamped `RequestArrival` events
//! from the arrival process instead of driving closed-loop cores:
//! requests queue at the controller even while every bank is busy, so
//! read latency is measured arrival→completion, the quantity a
//! tail-latency SLO is written against.

use crate::experiments::ExperimentConfig;
use ladder_reram::Geometry;
use ladder_trace::{Mergeable, TenantLatencies};
use ladder_workloads::service::{
    ArrivalProcess, BurstyArrivals, PoissonArrivals, ServiceGen, TenantMix,
};
use std::fmt;
use std::str::FromStr;

/// Which open-loop arrival process drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Independent exponential inter-arrivals at the offered load.
    Poisson,
    /// On/off bursts: 2× the offered rate inside bursts, silence between.
    Bursty,
}

impl ArrivalKind {
    /// Every kind, in sweep order.
    pub const ALL: [ArrivalKind; 2] = [ArrivalKind::Poisson, ArrivalKind::Bursty];

    /// Display name (also the `--arrival` spelling).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" => Ok(ArrivalKind::Bursty),
            other => Err(format!(
                "unknown arrival process `{other}` (poisson|bursty)"
            )),
        }
    }
}

/// Offered-traffic description of one open-loop service run.
///
/// Construct via [`ServiceConfig::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs can ride along without breaking
/// callers (same contract as `SimConfig`).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Offered load, requests per microsecond (per shard on a sharded
    /// topology — each channel serves its own stream).
    pub load: f64,
    /// Number of weighted tenants in the mix.
    pub tenants: usize,
    /// Zipfian key skew in `(0, 1)`, or `0` for uniform keys.
    pub zipf_theta: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Requests per run (per shard when sharded).
    pub requests: u64,
}

impl ServiceConfig {
    /// Starts a builder with the default traffic shape: Poisson arrivals,
    /// 4 req/µs, 3 tenants, Zipf 0.99, 90 % reads, 50 000 requests.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            inner: ServiceConfig {
                arrival: ArrivalKind::Poisson,
                load: 4.0,
                tenants: 3,
                zipf_theta: 0.99,
                read_fraction: 0.9,
                requests: 50_000,
            },
        }
    }
}

/// Consuming builder for [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    inner: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the arrival process.
    pub fn arrival(mut self, kind: ArrivalKind) -> Self {
        self.inner.arrival = kind;
        self
    }

    /// Sets the offered load in requests per microsecond.
    pub fn load(mut self, requests_per_us: f64) -> Self {
        self.inner.load = requests_per_us;
        self
    }

    /// Sets the tenant count.
    pub fn tenants(mut self, n: usize) -> Self {
        self.inner.tenants = n;
        self
    }

    /// Sets the Zipfian key skew (`0` selects uniform keys).
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.inner.zipf_theta = theta;
        self
    }

    /// Sets the read fraction.
    pub fn read_fraction(mut self, f: f64) -> Self {
        self.inner.read_fraction = f;
        self
    }

    /// Sets the request count.
    pub fn requests(mut self, n: u64) -> Self {
        self.inner.requests = n;
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> ServiceConfig {
        self.inner
    }
}

/// Statistics of one service-mode run — folded across shards through
/// [`Mergeable`] like every other aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-tenant read-latency groups and write counters.
    pub tenants: TenantLatencies,
    /// Requests that arrived (dispatched `RequestArrival` events).
    pub arrivals: u64,
    /// Reads completed (arrival→completion latency recorded).
    pub reads_completed: u64,
    /// Writes accepted into the controller.
    pub writes_accepted: u64,
    /// Arrivals that found the controller saturated and left requests
    /// queued kernel-side — the open-loop back-pressure signal.
    pub deferred: u64,
}

impl Mergeable for ServiceStats {
    fn merge_from(&mut self, other: &Self) {
        self.tenants.merge_from(&other.tenants);
        self.arrivals = self.arrivals.saturating_add(other.arrivals);
        self.reads_completed = self.reads_completed.saturating_add(other.reads_completed);
        self.writes_accepted = self.writes_accepted.saturating_add(other.writes_accepted);
        self.deferred = self.deferred.saturating_add(other.deferred);
    }
}

/// Mixing constant of the experiment seed schedule (same schedule the
/// closed-loop per-core streams use).
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Shard-salt constant (matches the closed-loop shard salting).
const SHARD_SALT: u64 = 0x517c_c1b7_2722_0a95;

/// Service streams occupy their own lane of the seed schedule so a
/// service run never replays a core stream's draws.
const SERVICE_LANE: u64 = 0xA5;

/// Builds the shard-salted request stream for one kernel: the standard
/// tenant mix over the geometry's workload window (above the reserved
/// low-page region at `pages/16`, like the closed-loop windows), driven
/// by the configured arrival process.
pub(crate) fn feed_for(
    scfg: &ServiceConfig,
    ecfg: &ExperimentConfig,
    geometry: &Geometry,
    shard: Option<u32>,
) -> ServiceGen {
    let mut seed = ecfg.seed.wrapping_mul(SEED_MIX).wrapping_add(SERVICE_LANE);
    if let Some(s) = shard {
        seed = seed.wrapping_add((s as u64 + 1).wrapping_mul(SHARD_SALT));
    }
    let pages = geometry.pages() as u64;
    let base = pages / 16;
    let mix = TenantMix::standard(
        scfg.tenants,
        base,
        pages - base,
        scfg.zipf_theta,
        scfg.read_fraction,
    );
    let arrivals: Box<dyn ArrivalProcess> = match scfg.arrival {
        ArrivalKind::Poisson => Box::new(PoissonArrivals::with_load(scfg.load)),
        ArrivalKind::Bursty => Box::new(BurstyArrivals::with_load(scfg.load)),
    };
    ServiceGen::new(arrivals, mix, seed, scfg.requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_trace::fold;

    #[test]
    fn arrival_kind_round_trips_and_rejects_garbage() {
        for k in ArrivalKind::ALL {
            assert_eq!(k.name().parse::<ArrivalKind>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        assert!("uniform".parse::<ArrivalKind>().is_err());
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let d = ServiceConfig::builder().build();
        assert_eq!(d.arrival, ArrivalKind::Poisson);
        assert_eq!(d.tenants, 3);
        assert_eq!(d.requests, 50_000);
        let c = ServiceConfig::builder()
            .arrival(ArrivalKind::Bursty)
            .load(8.0)
            .tenants(5)
            .zipf_theta(0.0)
            .read_fraction(0.5)
            .requests(1_234)
            .build();
        assert_eq!(c.arrival, ArrivalKind::Bursty);
        assert_eq!(c.load, 8.0);
        assert_eq!(c.tenants, 5);
        assert_eq!(c.zipf_theta, 0.0);
        assert_eq!(c.read_fraction, 0.5);
        assert_eq!(c.requests, 1_234);
    }

    #[test]
    fn service_stats_fold_adds_counters() {
        let mut a = ServiceStats {
            arrivals: 10,
            reads_completed: 8,
            ..ServiceStats::default()
        };
        a.tenants.ensure("t0", 100, 1);
        let mut b = ServiceStats {
            arrivals: 5,
            writes_accepted: 2,
            deferred: 1,
            ..ServiceStats::default()
        };
        b.tenants.ensure("t0", 100, 1);
        let total: ServiceStats = fold([a, b]);
        assert_eq!(total.arrivals, 15);
        assert_eq!(total.reads_completed, 8);
        assert_eq!(total.writes_accepted, 2);
        assert_eq!(total.deferred, 1);
        assert!(total.tenants.group("t0").is_some());
    }

    #[test]
    fn feeds_differ_per_shard_and_per_lane() {
        let ecfg = ExperimentConfig::default();
        let g = Geometry::default();
        let cfg = ServiceConfig::builder().requests(50).build();
        let mut mono = feed_for(&cfg, &ecfg, &g, None);
        let mut s0 = feed_for(&cfg, &ecfg, &g, Some(0));
        let mut s1 = feed_for(&cfg, &ecfg, &g, Some(1));
        let a: Vec<_> = std::iter::from_fn(|| mono.next_request()).collect();
        let b: Vec<_> = std::iter::from_fn(|| s0.next_request()).collect();
        let c: Vec<_> = std::iter::from_fn(|| s1.next_request()).collect();
        assert_eq!(a.len(), 50);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }
}
