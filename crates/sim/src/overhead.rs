//! Hardware-overhead accounting (paper Section 6.3 and Table 4).
//!
//! Storage overheads and on-chip buffer sizes are computed exactly from
//! this repository's data structures. The logic area/power/latency figures
//! of Table 4 come from the paper's Synopsys DC synthesis at 45 nm — a flow
//! software cannot reproduce — so they are quoted verbatim and labelled as
//! such.

use ladder_core::{LadderConfig, LadderVariant, MetadataLayout};
use ladder_reram::Geometry;
use ladder_xbar::{TableConfig, TimingTable};

/// Storage overhead of one LADDER variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageOverhead {
    /// Variant measured.
    pub variant: LadderVariant,
    /// Fraction of the module reserved for LRS-metadata.
    pub fraction: f64,
}

/// Computes the memory storage overhead of every variant (the 3.12 % /
/// 1.56 % / ~1 % numbers of Section 6.3).
pub fn storage_overheads(geometry: &Geometry) -> Vec<StorageOverhead> {
    [
        LadderVariant::Basic,
        LadderVariant::Est,
        LadderVariant::Hybrid,
    ]
    .into_iter()
    .map(|variant| {
        let cfg = LadderConfig::for_variant(variant);
        let layout = MetadataLayout::new(
            geometry,
            match variant {
                LadderVariant::Basic => ladder_core::MetadataFormat::Exact,
                LadderVariant::Est => ladder_core::MetadataFormat::Partial,
                LadderVariant::Hybrid => ladder_core::MetadataFormat::MultiGranularity {
                    low_precision_rows: cfg.low_precision_rows,
                },
            },
        );
        StorageOverhead {
            variant,
            fraction: layout.storage_overhead(),
        }
    })
    .collect()
}

/// On-chip state LADDER adds to the memory controller (Section 6.3 text).
#[derive(Debug, Clone, PartialEq)]
pub struct OnChipState {
    /// Timing-table ROM bytes (8×8×8 entries, one byte each).
    pub timing_table_bytes: usize,
    /// LRS-metadata cache capacity in bytes.
    pub metadata_cache_bytes: usize,
    /// Spill-buffer entries.
    pub spill_entries: usize,
    /// Extra bits per write-queue entry (partial counters + Present flag).
    pub write_queue_bits_per_entry: usize,
    /// Extra bits per read-queue entry (read-type flag).
    pub read_queue_bits_per_entry: usize,
}

/// Computes the on-chip state of the optimized (Est/Hybrid) design.
pub fn on_chip_state(table: &TimingTable) -> OnChipState {
    OnChipState {
        timing_table_bytes: table.to_rom_bytes().len(),
        metadata_cache_bytes: ladder_core::MetadataCacheConfig::default().capacity_bytes,
        spill_entries: ladder_core::MetadataCacheConfig::default().spill_entries,
        // 8 bits of partial counters + 1 Present bit.
        write_queue_bits_per_entry: 9,
        // 2-bit read-type flag (data / metadata / stale-block).
        read_queue_bits_per_entry: 2,
    }
}

/// One row of Table 4 — quoted from the paper's 45 nm synthesis, not
/// measured by this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Module name.
    pub module: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Latency in ns.
    pub latency_ns: f64,
}

/// The paper's Table 4 values (quoted; see module docs).
pub fn table4_paper_values() -> [Table4Row; 3] {
    [
        Table4Row {
            module: "LRS-metadata Update Module",
            area_mm2: 0.0061,
            power_mw: 3.71,
            latency_ns: 0.17,
        },
        Table4Row {
            module: "Latency Query Module",
            area_mm2: 0.0047,
            power_mw: 6.57,
            latency_ns: 0.32,
        },
        Table4Row {
            module: "LRS-metadata Cache (64KB)",
            area_mm2: 0.2442,
            power_mw: 48.83,
            latency_ns: 0.81,
        },
    ]
}

/// Renders the full overhead report.
pub fn report() -> String {
    let geometry = Geometry::default();
    // lint: allow(panic-policy) — invariant: the default table config generates infallibly (same contract as standard_tables)
    let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
    let mut out = String::new();
    out.push_str("Storage overhead (computed from metadata layouts):\n");
    for so in storage_overheads(&geometry) {
        out.push_str(&format!(
            "  {:?}: {:.3}%\n",
            so.variant,
            so.fraction * 100.0
        ));
    }
    let chip = on_chip_state(&table);
    out.push_str(&format!(
        "\nOn-chip state (computed):\n  timing-table ROM: {} B\n  \
         LRS-metadata cache: {} B\n  spill buffer: {} entries\n  \
         write-queue entry: +{} bits\n  read-queue entry: +{} bits\n",
        chip.timing_table_bytes,
        chip.metadata_cache_bytes,
        chip.spill_entries,
        chip.write_queue_bits_per_entry,
        chip.read_queue_bits_per_entry
    ));
    out.push_str("\nTable 4 (quoted from the paper's 45nm synthesis):\n");
    out.push_str(&format!(
        "  {:<28}{:>10}{:>10}{:>12}\n",
        "Module", "mm^2", "mW", "ns"
    ));
    for r in table4_paper_values() {
        out.push_str(&format!(
            "  {:<28}{:>10.4}{:>10.2}{:>12.2}\n",
            r.module, r.area_mm2, r.power_mw, r.latency_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_overheads_match_section_6_3() {
        let o = storage_overheads(&Geometry::default());
        assert!(
            (o[0].fraction - 0.03125).abs() < 0.0015,
            "Basic {}",
            o[0].fraction
        );
        assert!(
            (o[1].fraction - 0.015625).abs() < 0.0008,
            "Est {}",
            o[1].fraction
        );
        assert!(o[2].fraction < o[1].fraction, "Hybrid must be cheapest");
    }

    #[test]
    fn timing_table_rom_is_512_bytes() {
        let t = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
        assert_eq!(on_chip_state(&t).timing_table_bytes, 512);
    }

    #[test]
    fn report_mentions_every_module() {
        let r = report();
        for row in table4_paper_values() {
            assert!(r.contains(row.module));
        }
        assert!(r.contains("512 B"));
    }
}
