//! Model-based property test of the LRS-metadata cache: a shadow model
//! tracks sharer counts and residency, and every observable behaviour of
//! the real cache must agree with it.

use ladder_core::{InsertOutcome, MetadataCache, MetadataCacheConfig};
use ladder_reram::LineAddr;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Insert(u64),
    AddSharer(u64),
    ReleaseSharer(u64),
    MarkDirty(u64),
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = 0u64..24;
    prop_oneof![
        addr.clone().prop_map(Op::Lookup),
        addr.clone().prop_map(Op::Insert),
        addr.clone().prop_map(Op::AddSharer),
        addr.clone().prop_map(Op::ReleaseSharer),
        addr.prop_map(Op::MarkDirty),
        Just(Op::Flush),
    ]
}

/// Resident set reconstructed from the cache's own `contains`.
fn resident(cache: &MetadataCache, universe: u64) -> HashSet<u64> {
    (0..universe)
        .filter(|&a| cache.contains(LineAddr::new(a)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_agrees_with_the_shadow_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        // 8 lines, 2 ways → 4 sets; addresses 0..24 → 6 per set.
        let cfg = MetadataCacheConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            access_cycles: 2,
            spill_entries: 4,
        };
        let universe = 24u64;
        let mut cache = MetadataCache::new(cfg);
        let mut sharers: HashMap<u64, u32> = HashMap::new();
        let mut dirty: HashSet<u64> = HashSet::new();

        for op in ops {
            let res = resident(&cache, universe);
            match op {
                Op::Lookup(a) => {
                    let hit = cache.lookup(LineAddr::new(a));
                    prop_assert_eq!(hit, res.contains(&a), "lookup/contains disagree");
                }
                Op::Insert(a) => {
                    if res.contains(&a) {
                        continue; // inserting a resident line is a caller bug
                    }
                    match cache.insert(LineAddr::new(a)) {
                        InsertOutcome::Installed { writeback } => {
                            prop_assert!(cache.contains(LineAddr::new(a)));
                            if let Some(victim) = writeback {
                                prop_assert!(dirty.remove(&victim.raw()),
                                    "writeback of a clean line");
                                prop_assert_eq!(
                                    sharers.get(&victim.raw()).copied().unwrap_or(0), 0,
                                    "evicted a pinned line");
                                prop_assert!(!cache.contains(victim));
                            }
                            // Any line that silently left must have been
                            // clean and unpinned.
                            let now = resident(&cache, universe);
                            for gone in res.difference(&now) {
                                prop_assert_eq!(
                                    sharers.get(gone).copied().unwrap_or(0), 0,
                                    "evicted a pinned line silently");
                                dirty.remove(gone);
                            }
                        }
                        InsertOutcome::Blocked => {
                            // Every way of a's set must be pinned: at least
                            // `ways` resident same-set lines with sharers.
                            let set = a % 4;
                            let pinned = res.iter()
                                .filter(|r| *r % 4 == set)
                                .filter(|r| sharers.get(r).copied().unwrap_or(0) > 0)
                                .count();
                            prop_assert!(pinned >= 2, "blocked without a full pinned set");
                            prop_assert!(!cache.contains(LineAddr::new(a)));
                        }
                    }
                }
                Op::AddSharer(a) => {
                    if res.contains(&a) {
                        cache.add_sharer(LineAddr::new(a));
                        *sharers.entry(a).or_insert(0) += 1;
                    }
                }
                Op::ReleaseSharer(a) => {
                    if res.contains(&a) && sharers.get(&a).copied().unwrap_or(0) > 0 {
                        cache.release_sharer(LineAddr::new(a));
                        *sharers.get_mut(&a).expect("tracked") -= 1;
                    }
                }
                Op::MarkDirty(a) => {
                    if res.contains(&a) {
                        cache.mark_dirty(LineAddr::new(a));
                        dirty.insert(a);
                    }
                }
                Op::Flush => {
                    let flushed: HashSet<u64> =
                        cache.flush_dirty().into_iter().map(|l| l.raw()).collect();
                    prop_assert_eq!(&flushed, &dirty, "flush set mismatch");
                    dirty.clear();
                }
            }
        }
    }
}
