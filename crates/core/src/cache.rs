//! The on-chip LRS-metadata cache and its spill buffer (paper Section 3.3).
//!
//! A small set-associative cache in the memory controller holds active
//! metadata lines. Each tag carries a *Sharer* count: the number of write
//! queue entries whose latency determination still needs this line. Lines
//! with sharers can never be evicted; when a conflict set is fully shared,
//! the incoming request parks in a 16-entry spill buffer and retries when
//! the scheduler switches from write to read mode.

use ladder_reram::LineAddr;
use std::collections::VecDeque;

/// Cache geometry and access cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataCacheConfig {
    /// Total capacity in bytes (default 64 KB).
    pub capacity_bytes: usize,
    /// Associativity (default 4).
    pub ways: usize,
    /// Access latency in controller cycles (default 2).
    pub access_cycles: u32,
    /// Spill-buffer entries (default 16).
    pub spill_entries: usize,
}

impl Default for MetadataCacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 * 1024,
            ways: 4,
            access_cycles: 2,
            spill_entries: 16,
        }
    }
}

/// Running statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Clean evictions.
    pub evictions_clean: u64,
    /// Dirty evictions (each costs a metadata write to memory).
    pub evictions_dirty: u64,
    /// Inserts refused because every way was shared.
    pub blocked_inserts: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct TagEntry {
    addr: LineAddr,
    dirty: bool,
    sharers: u32,
    last_use: u64,
}

/// Outcome of inserting a missing metadata line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Installed into an empty or clean-victim way.
    Installed {
        /// Dirty line that had to be written back first, if any.
        writeback: Option<LineAddr>,
    },
    /// Every way in the set is pinned by sharers; caller must spill.
    Blocked,
}

/// The LRS-metadata cache.
///
/// # Examples
///
/// ```
/// use ladder_core::{InsertOutcome, MetadataCache, MetadataCacheConfig};
/// use ladder_reram::LineAddr;
///
/// let mut cache = MetadataCache::new(MetadataCacheConfig::default());
/// let a = LineAddr::new(17);
/// assert!(!cache.lookup(a));
/// assert!(matches!(cache.insert(a), InsertOutcome::Installed { writeback: None }));
/// assert!(cache.lookup(a));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    config: MetadataCacheConfig,
    sets: Vec<Vec<TagEntry>>,
    tick: u64,
    stats: CacheStats,
}

impl MetadataCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or zero ways.
    pub fn new(config: MetadataCacheConfig) -> Self {
        let lines = config.capacity_bytes / ladder_reram::LINE_BYTES;
        assert!(config.ways > 0 && lines >= config.ways, "degenerate cache");
        let num_sets = lines / config.ways;
        Self {
            config,
            sets: vec![Vec::new(); num_sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache configuration.
    pub fn config(&self) -> &MetadataCacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.raw() % self.sets.len() as u64) as usize
    }

    /// Looks up a metadata line, recording hit/miss and refreshing LRU.
    pub fn lookup(&mut self, addr: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.addr == addr) {
            e.last_use = tick;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether a line is resident, without touching statistics or LRU.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.sets[self.set_of(addr)].iter().any(|e| e.addr == addr)
    }

    /// Installs a missing line, evicting the LRU non-shared way if needed.
    ///
    /// Calling this for a line already resident is a logic error and
    /// panics; use [`MetadataCache::lookup`] first.
    pub fn insert(&mut self, addr: LineAddr) -> InsertOutcome {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let set_idx = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        assert!(
            set.iter().all(|e| e.addr != addr),
            "inserting already-resident line {addr}"
        );
        if set.len() < ways {
            set.push(TagEntry {
                addr,
                dirty: false,
                sharers: 0,
                last_use: tick,
            });
            return InsertOutcome::Installed { writeback: None };
        }
        // Evict the least recently used entry with no sharers.
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, e)| e.sharers == 0)
            .min_by_key(|(_, e)| e.last_use)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(
                    &mut set[i],
                    TagEntry {
                        addr,
                        dirty: false,
                        sharers: 0,
                        last_use: tick,
                    },
                );
                if old.dirty {
                    self.stats.evictions_dirty += 1;
                    InsertOutcome::Installed {
                        writeback: Some(old.addr),
                    }
                } else {
                    self.stats.evictions_clean += 1;
                    InsertOutcome::Installed { writeback: None }
                }
            }
            None => {
                self.stats.blocked_inserts += 1;
                InsertOutcome::Blocked
            }
        }
    }

    /// Increments the Sharer count of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn add_sharer(&mut self, addr: LineAddr) {
        self.entry_mut(addr).sharers += 1;
    }

    /// Decrements the Sharer count when a dependent write retires.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident or has no sharers.
    pub fn release_sharer(&mut self, addr: LineAddr) {
        let e = self.entry_mut(addr);
        assert!(e.sharers > 0, "releasing sharer of unshared line {addr}");
        e.sharers -= 1;
    }

    /// Marks a resident line dirty (its in-memory copy is stale).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) {
        self.entry_mut(addr).dirty = true;
    }

    /// Drains every dirty line (crash-flush / end-of-simulation), returning
    /// the addresses that need writing back.
    pub fn flush_dirty(&mut self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for e in set.iter_mut() {
                if e.dirty {
                    e.dirty = false;
                    out.push(e.addr);
                }
            }
        }
        out
    }

    fn entry_mut(&mut self, addr: LineAddr) -> &mut TagEntry {
        let set = self.set_of(addr);
        self.sets[set]
            .iter_mut()
            .find(|e| e.addr == addr)
            // lint: allow(panic-policy) — invariant: callers probe residency via lookup() before touching an entry; a miss here is a controller bug
            .unwrap_or_else(|| panic!("metadata line {addr} not resident"))
    }
}

/// The spill buffer holding write requests whose metadata could not be
/// installed because a whole cache set was pinned by sharers.
///
/// Stores opaque request identifiers supplied by the memory controller.
#[derive(Debug, Clone)]
pub struct SpillBuffer {
    capacity: usize,
    entries: VecDeque<u64>,
    /// High-water mark, for overhead reporting.
    peak: usize,
}

impl SpillBuffer {
    /// Creates an empty buffer with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::new(),
            peak: 0,
        }
    }

    /// Parks a request; returns `false` when the buffer is full (the
    /// controller must then stall the write queue head).
    pub fn push(&mut self, request: u64) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back(request);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Removes and returns the oldest parked request.
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop_front()
    }

    /// Parked request count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no requests are parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> MetadataCache {
        // 4 lines, 2 ways → 2 sets.
        MetadataCache::new(MetadataCacheConfig {
            capacity_bytes: 4 * 64,
            ways: 2,
            access_cycles: 2,
            spill_entries: 2,
        })
    }

    #[test]
    fn lru_eviction_prefers_oldest_unshared() {
        let mut c = tiny_cache();
        let a = LineAddr::new(0);
        let b = LineAddr::new(2); // same set as a (2 sets: even addrs → set 0)
        let d = LineAddr::new(4);
        assert!(matches!(
            c.insert(a),
            InsertOutcome::Installed { writeback: None }
        ));
        assert!(matches!(
            c.insert(b),
            InsertOutcome::Installed { writeback: None }
        ));
        // Touch `a` so `b` becomes LRU.
        assert!(c.lookup(a));
        c.mark_dirty(b);
        match c.insert(d) {
            InsertOutcome::Installed { writeback } => assert_eq!(writeback, Some(b)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
        assert_eq!(c.stats().evictions_dirty, 1);
    }

    #[test]
    fn fully_shared_set_blocks_insert() {
        let mut c = tiny_cache();
        let a = LineAddr::new(0);
        let b = LineAddr::new(2);
        c.insert(a);
        c.insert(b);
        c.add_sharer(a);
        c.add_sharer(b);
        assert_eq!(c.insert(LineAddr::new(4)), InsertOutcome::Blocked);
        assert_eq!(c.stats().blocked_inserts, 1);
        // Releasing one sharer unblocks the set.
        c.release_sharer(b);
        assert!(matches!(
            c.insert(LineAddr::new(4)),
            InsertOutcome::Installed { .. }
        ));
    }

    #[test]
    fn sharer_counts_nest() {
        let mut c = tiny_cache();
        let a = LineAddr::new(0);
        c.insert(a);
        c.add_sharer(a);
        c.add_sharer(a);
        c.release_sharer(a);
        c.add_sharer(LineAddr::new(0));
        c.release_sharer(a);
        c.release_sharer(a);
        // Now evictable again.
        c.insert(LineAddr::new(2));
        assert!(matches!(
            c.insert(LineAddr::new(4)),
            InsertOutcome::Installed { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn sharer_of_absent_line_panics() {
        let mut c = tiny_cache();
        c.add_sharer(LineAddr::new(9));
    }

    #[test]
    fn hit_ratio_tracks_lookups() {
        let mut c = tiny_cache();
        let a = LineAddr::new(0);
        assert!(!c.lookup(a));
        c.insert(a);
        assert!(c.lookup(a));
        assert!(c.lookup(a));
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_returns_only_dirty() {
        let mut c = tiny_cache();
        let a = LineAddr::new(0);
        let b = LineAddr::new(1);
        c.insert(a);
        c.insert(b);
        c.mark_dirty(b);
        let flushed = c.flush_dirty();
        assert_eq!(flushed, vec![b]);
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn spill_buffer_respects_capacity_and_order() {
        let mut s = SpillBuffer::new(2);
        assert!(s.push(10));
        assert!(s.push(11));
        assert!(!s.push(12));
        assert_eq!(s.peak(), 2);
        assert_eq!(s.pop(), Some(10));
        assert_eq!(s.pop(), Some(11));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }
}
