//! Exact per-wordline LRS counters (LADDER-Basic, paper Section 3.3).
//!
//! One *LRS-counter group* holds 64 counters, one per mat of the mat group;
//! counter `i` counts the `1` bits on mat `i`'s wordline, i.e. the sum of
//! `popcount(byte i)` over the 64 lines of the wordline group. Counters
//! range 0–512 and are stored 10-bit-packed: 80 B, spanning two 64 B
//! metadata lines.

use ladder_reram::{LineData, LINES_PER_WLG, LINE_BYTES};

/// Counters of one LRS-counter group (one per mat wordline).
///
/// # Examples
///
/// ```
/// use ladder_core::LrsCounterGroup;
///
/// let mut g = LrsCounterGroup::new();
/// let line = [0b1111_0000u8; 64];
/// g.apply_delta(&[0u8; 64], &line);
/// assert_eq!(g.max(), 4); // every byte contributes 4 ones to its mat
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrsCounterGroup {
    counters: [u16; LINE_BYTES],
}

impl Default for LrsCounterGroup {
    fn default() -> Self {
        Self {
            counters: [0; LINE_BYTES],
        }
    }
}

/// Number of bytes the packed representation occupies (64 × 10 bits).
pub const PACKED_BYTES: usize = 80;
/// Metadata lines one packed counter group spans.
pub const LINES_PER_GROUP: usize = 2;
/// Maximum value of one counter (bits per mat wordline).
pub const COUNTER_MAX: u16 = 512;

impl LrsCounterGroup {
    /// All-zero counters (freshly formed array).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the exact counters for a wordline group from the current
    /// contents of its 64 lines (in block-slot order).
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a LineData>) -> Self {
        let mut g = Self::new();
        let mut seen = 0;
        for data in lines {
            for (i, b) in data.iter().enumerate() {
                g.counters[i] += b.count_ones() as u16;
            }
            seen += 1;
        }
        debug_assert!(seen <= LINES_PER_WLG, "too many lines for one WLG");
        g
    }

    /// Applies the delta of one line write: `counter[i] +=
    /// popcount(new[i]) − popcount(old[i])`.
    ///
    /// This is the update LADDER-Basic performs using the stale-memory-block
    /// read. Results clamp to the 0–512 range; clamping only engages after
    /// a conservative crash-correction overwrite, where counters start
    /// saturated by design.
    pub fn apply_delta(&mut self, old: &LineData, new: &LineData) {
        for i in 0..LINE_BYTES {
            let delta = new[i].count_ones() as i32 - old[i].count_ones() as i32;
            let v = self.counters[i] as i32 + delta;
            self.counters[i] = v.clamp(0, COUNTER_MAX as i32) as u16;
        }
    }

    /// The worst-case counter `C^w_lrs = max_i C^i_lrs` that drives the
    /// RESET latency lookup.
    pub fn max(&self) -> u16 {
        // lint: allow(panic-policy) — invariant: counters is a fixed-size nonempty array, max() cannot be None
        *self.counters.iter().max().expect("fixed-size array")
    }

    /// Counter of mat `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn get(&self, i: usize) -> u16 {
        self.counters[i]
    }

    /// Packs to the 80-byte little-endian 10-bit representation.
    pub fn pack(&self) -> [u8; PACKED_BYTES] {
        let mut out = [0u8; PACKED_BYTES];
        for (i, &c) in self.counters.iter().enumerate() {
            debug_assert!(c <= COUNTER_MAX);
            let bit = i * 10;
            let (byte, off) = (bit / 8, bit % 8);
            let v = (c as u32) << off;
            out[byte] |= (v & 0xFF) as u8;
            out[byte + 1] |= ((v >> 8) & 0xFF) as u8;
            if off > 6 {
                out[byte + 2] |= ((v >> 16) & 0xFF) as u8;
            }
        }
        out
    }

    /// Unpacks from the 80-byte representation. Out-of-range fields (which
    /// can only appear after a conservative crash-correction overwrite)
    /// clamp to [`COUNTER_MAX`].
    pub fn unpack(bytes: &[u8; PACKED_BYTES]) -> Self {
        let mut g = Self::new();
        for i in 0..LINE_BYTES {
            let bit = i * 10;
            let (byte, off) = (bit / 8, bit % 8);
            let mut v = bytes[byte] as u32 | ((bytes[byte + 1] as u32) << 8);
            if off > 6 {
                v |= (bytes[byte + 2] as u32) << 16;
            }
            g.counters[i] = (((v >> off) & 0x3FF) as u16).min(COUNTER_MAX);
        }
        g
    }

    /// Splits the packed form over two metadata lines (the second is
    /// zero-padded past byte 16).
    pub fn to_metadata_lines(&self) -> [LineData; LINES_PER_GROUP] {
        let packed = self.pack();
        let mut lines = [[0u8; LINE_BYTES]; LINES_PER_GROUP];
        lines[0].copy_from_slice(&packed[..LINE_BYTES]);
        lines[1][..PACKED_BYTES - LINE_BYTES].copy_from_slice(&packed[LINE_BYTES..]);
        lines
    }

    /// Rebuilds counters from the two metadata lines.
    pub fn from_metadata_lines(lines: &[LineData; LINES_PER_GROUP]) -> Self {
        let mut packed = [0u8; PACKED_BYTES];
        packed[..LINE_BYTES].copy_from_slice(&lines[0]);
        packed[LINE_BYTES..].copy_from_slice(&lines[1][..PACKED_BYTES - LINE_BYTES]);
        Self::unpack(&packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(bytes: &[(usize, u8)]) -> LineData {
        let mut l = [0u8; LINE_BYTES];
        for &(i, v) in bytes {
            l[i] = v;
        }
        l
    }

    #[test]
    fn from_lines_counts_per_mat() {
        let a = line_with(&[(0, 0xFF), (5, 0x0F)]);
        let b = line_with(&[(0, 0x01), (63, 0xFF)]);
        let g = LrsCounterGroup::from_lines([&a, &b].into_iter());
        assert_eq!(g.get(0), 9);
        assert_eq!(g.get(5), 4);
        assert_eq!(g.get(63), 8);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn delta_update_matches_rebuild() {
        let old = line_with(&[(3, 0b1010)]);
        let new = line_with(&[(3, 0xFF), (10, 0x81)]);
        let mut g = LrsCounterGroup::from_lines([&old].into_iter());
        g.apply_delta(&old, &new);
        let rebuilt = LrsCounterGroup::from_lines([&new].into_iter());
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut g = LrsCounterGroup::new();
        for i in 0..LINE_BYTES {
            g.counters[i] = ((i * 37) % 513) as u16;
        }
        let packed = g.pack();
        assert_eq!(LrsCounterGroup::unpack(&packed), g);
    }

    #[test]
    fn pack_handles_full_range_boundaries() {
        let mut g = LrsCounterGroup::new();
        g.counters[0] = 512;
        g.counters[63] = 512;
        g.counters[31] = 1;
        let back = LrsCounterGroup::unpack(&g.pack());
        assert_eq!(back.get(0), 512);
        assert_eq!(back.get(63), 512);
        assert_eq!(back.get(31), 1);
    }

    #[test]
    fn metadata_line_roundtrip() {
        let mut g = LrsCounterGroup::new();
        for i in 0..LINE_BYTES {
            g.counters[i] = (512 - i * 8) as u16;
        }
        let lines = g.to_metadata_lines();
        assert_eq!(LrsCounterGroup::from_metadata_lines(&lines), g);
        // Packed tail must fit in the first 16 bytes of line 2.
        assert!(lines[1][16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn max_of_empty_group_is_zero() {
        assert_eq!(LrsCounterGroup::new().max(), 0);
    }
}
