//! Flip-N-Write (Cho & Lee, MICRO'09) and LADDER's counting-safe variant
//! (paper Section 3.3).
//!
//! FNW writes either a word or its complement — whichever changes fewer
//! cells — recording the choice in a flip bit per word. The classical
//! policy can *increase* the number of stored `1`s, which would break
//! LADDER's LRS accounting; the constrained variant therefore cancels any
//! flip whose flipped word holds more `1`s than the original word.

use ladder_reram::{bits, LineData, LINE_BYTES};

/// FNW word granularity in bytes (one flip bit per 8-byte word).
pub const WORD_BYTES: usize = 8;
/// Flip-decision words per line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;

/// Flip policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FnwPolicy {
    /// No flipping at all.
    Disabled,
    /// Classical FNW: flip whenever it reduces changed bits.
    Classic,
    /// LADDER's variant: flip only when it reduces changed bits *and* does
    /// not increase the word's `1` population.
    Constrained,
}

/// Result of transforming one line write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnwOutcome {
    /// The bits actually stored in memory.
    pub stored: LineData,
    /// Per-word flip decisions (bit `w` set ⇒ word `w` stored inverted).
    pub flip_mask: u8,
    /// Cells whose state changes (`SET`s + `RESET`s) vs. the old image.
    pub bits_changed: u32,
    /// Cells switching `0 → 1` (SETs).
    pub bits_set: u32,
    /// Cells switching `1 → 0` (RESETs).
    pub bits_reset: u32,
    /// Flips the classical policy would take that the constraint cancelled.
    pub flips_cancelled: u32,
}

/// Applies FNW to a line write.
///
/// `new` is the (possibly shifted) data to store and `old_stored` the bits
/// currently in the cells. Returns the image to store plus switching
/// statistics used for energy and endurance accounting.
///
/// # Examples
///
/// ```
/// use ladder_core::{apply_fnw, FnwPolicy};
///
/// // Old image all ones, new data all zeros: classical FNW flips every
/// // word (re-writing all ones costs zero cell changes) but thereby stores
/// // a much denser image than the data; the constrained variant cancels
/// // those flips to keep the LRS counters truthful.
/// let classic = apply_fnw(&[0u8; 64], &[0xFF; 64], FnwPolicy::Classic);
/// assert_eq!(classic.bits_changed, 0);
/// let safe = apply_fnw(&[0u8; 64], &[0xFF; 64], FnwPolicy::Constrained);
/// assert_eq!(safe.flips_cancelled, 8);
/// assert_eq!(safe.stored, [0u8; 64]);
/// ```
pub fn apply_fnw(new: &LineData, old_stored: &LineData, policy: FnwPolicy) -> FnwOutcome {
    let mut stored = *new;
    let mut flip_mask = 0u8;
    let mut flips_cancelled = 0u32;
    if policy != FnwPolicy::Disabled {
        for w in 0..WORDS_PER_LINE {
            let base = w * WORD_BYTES;
            let n = bits::le_word(new, base);
            let o = bits::le_word(old_stored, base);
            let dist = (n ^ o).count_ones();
            let dist_flipped = (WORD_BYTES as u32 * 8) - dist;
            if dist_flipped < dist {
                let ones = n.count_ones();
                let ones_flipped = (WORD_BYTES as u32 * 8) - ones;
                let allowed = match policy {
                    FnwPolicy::Classic => true,
                    FnwPolicy::Constrained => ones_flipped <= ones,
                    FnwPolicy::Disabled => unreachable!(),
                };
                if allowed {
                    bits::write_le_word(&mut stored, base, !n);
                    flip_mask |= 1 << w;
                } else {
                    flips_cancelled += 1;
                }
            }
        }
    }
    let (bits_set, bits_reset) = bits::delta_ones(&stored, old_stored);
    FnwOutcome {
        stored,
        flip_mask,
        bits_changed: bits_set + bits_reset,
        bits_set,
        bits_reset,
        flips_cancelled,
    }
}

/// Recovers the logical data from a stored image and its flip mask.
pub fn undo_fnw(stored: &LineData, flip_mask: u8) -> LineData {
    let mut out = *stored;
    for w in 0..WORDS_PER_LINE {
        if (flip_mask >> w) & 1 == 1 {
            let base = w * WORD_BYTES;
            let word = bits::le_word(stored, base);
            bits::write_le_word(&mut out, base, !word);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of(val: u8) -> LineData {
        [val; LINE_BYTES]
    }

    #[test]
    fn disabled_stores_verbatim() {
        let out = apply_fnw(&line_of(0xAB), &line_of(0x00), FnwPolicy::Disabled);
        assert_eq!(out.stored, line_of(0xAB));
        assert_eq!(out.flip_mask, 0);
        assert_eq!(out.bits_changed, 64 * 5); // 0xAB has 5 ones per byte
    }

    #[test]
    fn classic_flips_to_reduce_changes() {
        // Old all-zero, new all-ones: flipping stores all-zero (0 changes).
        let out = apply_fnw(&line_of(0xFF), &line_of(0x00), FnwPolicy::Classic);
        assert_eq!(out.flip_mask, 0xFF);
        assert_eq!(out.bits_changed, 0);
        assert_eq!(undo_fnw(&out.stored, out.flip_mask), line_of(0xFF));
    }

    #[test]
    fn classic_can_increase_ones() {
        // Old image is all ones; new data is all zeros. Flipping writes all
        // ones (no change) — but the stored population jumps from what the
        // counters would expect for all-zero data.
        let out = apply_fnw(&line_of(0x00), &line_of(0xFF), FnwPolicy::Classic);
        assert_eq!(out.flip_mask, 0xFF);
        let stored_ones: u32 = out.stored.iter().map(|b| b.count_ones()).sum();
        assert_eq!(stored_ones, 512);
    }

    #[test]
    fn constrained_cancels_one_increasing_flips() {
        // Same scenario: the constraint must refuse every flip because the
        // flipped word (all ones) has more 1s than the original (all zeros).
        let out = apply_fnw(&line_of(0x00), &line_of(0xFF), FnwPolicy::Constrained);
        assert_eq!(out.flip_mask, 0);
        assert_eq!(out.flips_cancelled, 8);
        let stored_ones: u32 = out.stored.iter().map(|b| b.count_ones()).sum();
        assert_eq!(stored_ones, 0);
    }

    #[test]
    fn constrained_never_increases_stored_ones_vs_original() {
        // Property over pseudo-random lines.
        let mut x = 7u64;
        let mut rand_line = || {
            let mut l = [0u8; LINE_BYTES];
            for b in &mut l {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 35) as u8;
            }
            l
        };
        for _ in 0..50 {
            let old = rand_line();
            let new = rand_line();
            let out = apply_fnw(&new, &old, FnwPolicy::Constrained);
            for w in 0..WORDS_PER_LINE {
                let r = w * WORD_BYTES..(w + 1) * WORD_BYTES;
                let stored: u32 = out.stored[r.clone()].iter().map(|b| b.count_ones()).sum();
                let orig: u32 = new[r].iter().map(|b| b.count_ones()).sum();
                assert!(stored <= orig, "word {w} stored more ones than original");
            }
            assert_eq!(undo_fnw(&out.stored, out.flip_mask), new);
        }
    }

    #[test]
    fn flip_reduces_or_preserves_changed_bits() {
        let mut x = 99u64;
        let mut rand_line = || {
            let mut l = [0u8; LINE_BYTES];
            for b in &mut l {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 29) as u8;
            }
            l
        };
        for _ in 0..50 {
            let old = rand_line();
            let new = rand_line();
            let plain = apply_fnw(&new, &old, FnwPolicy::Disabled);
            let classic = apply_fnw(&new, &old, FnwPolicy::Classic);
            let constrained = apply_fnw(&new, &old, FnwPolicy::Constrained);
            assert!(classic.bits_changed <= plain.bits_changed);
            assert!(constrained.bits_changed <= plain.bits_changed);
            assert!(classic.bits_changed <= constrained.bits_changed);
        }
    }

    #[test]
    fn set_reset_split_sums_to_changed() {
        let out = apply_fnw(
            &line_of(0b1100_0011),
            &line_of(0b1010_1010),
            FnwPolicy::Disabled,
        );
        assert_eq!(out.bits_set + out.bits_reset, out.bits_changed);
        assert!(out.bits_set > 0 && out.bits_reset > 0);
    }
}
