//! LRS-metadata storage layout and addressing (paper Sections 3.3, 4.1,
//! 4.2 and the storage-overhead analysis of Section 6.3).
//!
//! Metadata lives in a reserved physical range at the *bottom* of the
//! module (lowest pages); data pages start right after the reserved range.
//! Metadata slots are indexed by absolute page number, so the mapping is
//! closed-form and the reserved fraction matches the paper's quoted
//! overheads exactly.
//!
//! | Format | Metadata per 4 KB page | Reserved fraction |
//! |---|---|---|
//! | `Exact` (Basic) | 2 lines (64×10-bit counters) | 3.13 % |
//! | `Partial` (Est) | 1 line (64 × 1-byte partials) | 1.56 % |
//! | `MultiGranularity` (Hybrid) | 1 line, or ¼ line for bottom rows | 0.97–1.3 % |

use ladder_reram::{Geometry, LineAddr, WlgId, LINES_PER_WLG};

/// Metadata encoding used by a LADDER variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataFormat {
    /// Exact 10-bit counters (LADDER-Basic): two lines per page.
    Exact,
    /// 2-bit partial counters (LADDER-Est): one line per page.
    Partial,
    /// Partial counters, degraded to 1-bit for pages stored in the bottom
    /// `low_precision_rows` wordlines (LADDER-Hybrid): those pages pack
    /// four to a metadata line.
    MultiGranularity {
        /// Wordlines (from the bitline driver) that use 1-bit counters.
        /// The paper's evaluation uses 128; its quoted 0.97 % storage
        /// overhead corresponds to 256.
        low_precision_rows: usize,
    },
}

/// Where one wordline group's metadata lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataRef {
    /// Two full lines of packed 10-bit counters.
    Exact {
        /// First line (bytes 0–63 of the packed group).
        lo: LineAddr,
        /// Second line (bytes 64–79, rest unused).
        hi: LineAddr,
    },
    /// One full line of per-block partial-counter bytes.
    Partial {
        /// The metadata line.
        line: LineAddr,
    },
    /// A 16-byte quarter of a shared metadata line (1-bit counters).
    LowPrecision {
        /// The metadata line shared by four pages.
        line: LineAddr,
        /// Which 16 B quarter belongs to this page (0–3).
        quarter: usize,
    },
}

impl MetadataRef {
    /// The metadata line holding the latency-relevant counters; for the
    /// exact format this is the first of the two lines (both are fetched
    /// together; caching and queueing track the pair through `lines`).
    pub fn primary_line(&self) -> LineAddr {
        match *self {
            MetadataRef::Exact { lo, .. } => lo,
            MetadataRef::Partial { line } => line,
            MetadataRef::LowPrecision { line, .. } => line,
        }
    }

    /// Every memory line this reference touches.
    pub fn lines(&self) -> Vec<LineAddr> {
        match *self {
            MetadataRef::Exact { lo, hi } => vec![lo, hi],
            MetadataRef::Partial { line } => vec![line],
            MetadataRef::LowPrecision { line, .. } => vec![line],
        }
    }
}

/// Computed metadata layout for a module.
///
/// # Examples
///
/// ```
/// use ladder_core::{MetadataFormat, MetadataLayout};
/// use ladder_reram::Geometry;
///
/// let layout = MetadataLayout::new(&Geometry::default(), MetadataFormat::Partial);
/// let frac = layout.storage_overhead();
/// assert!((frac - 0.015625).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct MetadataLayout {
    format: MetadataFormat,
    total_pages: u64,
    /// Pages per wordline step in the address map
    /// (`channels × ranks × banks`): page `p` sits on wordline
    /// `(p / wl_divisor) mod mat_rows`.
    wl_divisor: u64,
    mat_rows: u64,
    low_rows: u64,
    reserved_pages: u64,
}

impl MetadataLayout {
    /// Computes the layout for a geometry and format.
    ///
    /// # Panics
    ///
    /// Panics if `low_precision_rows` exceeds the mat height.
    pub fn new(geometry: &Geometry, format: MetadataFormat) -> Self {
        let total_pages = geometry.pages() as u64;
        let wl_divisor = geometry.total_banks() as u64;
        let mat_rows = geometry.mat_rows as u64;
        let low_rows = match format {
            MetadataFormat::MultiGranularity { low_precision_rows } => {
                assert!(
                    low_precision_rows <= geometry.mat_rows,
                    "low-precision rows exceed mat height"
                );
                low_precision_rows as u64
            }
            _ => 0,
        };
        let lines_needed = match format {
            MetadataFormat::Exact => 2 * total_pages,
            MetadataFormat::Partial => total_pages,
            MetadataFormat::MultiGranularity { .. } => {
                let low = total_pages * low_rows / mat_rows;
                let high = total_pages - low;
                low.div_ceil(4) + high
            }
        };
        let reserved_pages = lines_needed.div_ceil(LINES_PER_WLG as u64);
        Self {
            format,
            total_pages,
            wl_divisor,
            mat_rows,
            low_rows,
            reserved_pages,
        }
    }

    /// Metadata format of this layout.
    pub fn format(&self) -> MetadataFormat {
        self.format
    }

    /// First page usable for data.
    pub fn first_data_page(&self) -> u64 {
        self.reserved_pages
    }

    /// Number of pages usable for data.
    pub fn data_pages(&self) -> u64 {
        self.total_pages - self.reserved_pages
    }

    /// Fraction of the module reserved for metadata.
    pub fn storage_overhead(&self) -> f64 {
        self.reserved_pages as f64 / self.total_pages as f64
    }

    /// Whether a line belongs to the reserved metadata region.
    pub fn is_metadata(&self, line: LineAddr) -> bool {
        line.page() < self.reserved_pages
    }

    /// The wordline (row) a page's lines occupy under the standard address
    /// map.
    pub fn wordline_of_page(&self, page: u64) -> u64 {
        (page / self.wl_divisor) % self.mat_rows
    }

    /// Whether a data page uses the 1-bit low-precision encoding (it sits
    /// in one of the bottom `low_precision_rows` wordlines).
    pub fn is_low_precision(&self, wlg: WlgId) -> bool {
        matches!(self.format, MetadataFormat::MultiGranularity { .. })
            && self.wordline_of_page(wlg.0) < self.low_rows
    }

    /// First data page that uses the low-precision encoding (useful for
    /// tests and experiments targeting bottom rows), or `None` when the
    /// format has no low-precision region.
    pub fn first_low_precision_data_page(&self) -> Option<u64> {
        if self.low_rows == 0 {
            return None;
        }
        (self.reserved_pages..self.total_pages).find(|&p| self.wordline_of_page(p) < self.low_rows)
    }

    /// Rank of a low-precision page among all low-precision pages.
    fn low_rank(&self, page: u64) -> u64 {
        let block = page / self.wl_divisor;
        let wl = block % self.mat_rows;
        let cycle = block / self.mat_rows;
        debug_assert!(wl < self.low_rows);
        (cycle * self.low_rows + wl) * self.wl_divisor + page % self.wl_divisor
    }

    /// Rank of a full-precision page among all full-precision pages.
    fn high_rank(&self, page: u64) -> u64 {
        let block = page / self.wl_divisor;
        let wl = block % self.mat_rows;
        let cycle = block / self.mat_rows;
        let high_rows = self.mat_rows - self.low_rows;
        debug_assert!(wl >= self.low_rows);
        (cycle * high_rows + (wl - self.low_rows)) * self.wl_divisor + page % self.wl_divisor
    }

    /// Locates the metadata for a data page's wordline group.
    ///
    /// # Panics
    ///
    /// Panics if `wlg` refers to the reserved region (metadata has no
    /// metadata — it is written with location-only latency) or lies outside
    /// the module.
    pub fn metadata_for(&self, wlg: WlgId) -> MetadataRef {
        assert!(
            wlg.0 >= self.reserved_pages,
            "metadata of the reserved region is not maintained"
        );
        assert!(wlg.0 < self.total_pages, "page outside the module");
        let p = wlg.0;
        match self.format {
            MetadataFormat::Exact => MetadataRef::Exact {
                lo: LineAddr::new(2 * p),
                hi: LineAddr::new(2 * p + 1),
            },
            MetadataFormat::Partial => MetadataRef::Partial {
                line: LineAddr::new(p),
            },
            MetadataFormat::MultiGranularity { .. } => {
                if self.is_low_precision(wlg) {
                    let rank = self.low_rank(p);
                    MetadataRef::LowPrecision {
                        line: LineAddr::new(rank / 4),
                        quarter: (rank % 4) as usize,
                    }
                } else {
                    let low_lines = (self.total_pages * self.low_rows / self.mat_rows).div_ceil(4);
                    MetadataRef::Partial {
                        line: LineAddr::new(low_lines + self.high_rank(p)),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn geo() -> Geometry {
        Geometry::default()
    }

    fn hybrid(rows: usize) -> MetadataLayout {
        MetadataLayout::new(
            &geo(),
            MetadataFormat::MultiGranularity {
                low_precision_rows: rows,
            },
        )
    }

    #[test]
    fn exact_overhead_matches_paper() {
        let layout = MetadataLayout::new(&geo(), MetadataFormat::Exact);
        assert!((layout.storage_overhead() - 0.03125).abs() < 1e-6);
    }

    #[test]
    fn partial_overhead_matches_paper() {
        let layout = MetadataLayout::new(&geo(), MetadataFormat::Partial);
        assert!((layout.storage_overhead() - 0.015625).abs() < 1e-6);
    }

    #[test]
    fn hybrid_overhead_between_bounds() {
        // 256 low rows (half the mat) reproduces the paper's 0.97 %.
        let oh256 = hybrid(256).storage_overhead();
        assert!((oh256 - 0.009766).abs() < 1e-4, "overhead {oh256}");
        // 128 low rows (the evaluation's setting) gives ≈ 1.27 %.
        let oh128 = hybrid(128).storage_overhead();
        assert!((oh128 - 0.012695).abs() < 1e-4, "overhead {oh128}");
        assert!(oh256 < oh128);
    }

    #[test]
    fn metadata_refs_are_disjoint_across_pages() {
        let layout = MetadataLayout::new(&geo(), MetadataFormat::Exact);
        let a = layout.metadata_for(WlgId(layout.first_data_page()));
        let b = layout.metadata_for(WlgId(layout.first_data_page() + 1));
        let la = a.lines();
        let lb = b.lines();
        assert!(la.iter().all(|x| !lb.contains(x)));
    }

    #[test]
    fn low_precision_follows_wordline_not_page_order() {
        let layout = hybrid(128);
        let divisor = geo().total_banks() as u64;
        // Pages in the first wordline block of the second cycle are low.
        let cycle2 = divisor * 512;
        assert!(layout.is_low_precision(WlgId(cycle2)));
        // Pages at wordline 200 are not.
        let high = cycle2 + 200 * divisor;
        assert_eq!(layout.wordline_of_page(high), 200);
        assert!(!layout.is_low_precision(WlgId(high)));
    }

    #[test]
    fn low_precision_pages_share_lines_four_ways() {
        let layout = hybrid(128);
        let start = layout
            .first_low_precision_data_page()
            .expect("hybrid has a low region");
        // Low ranks are consecutive within a wordline block, so aligning on
        // a rank multiple of four yields one shared line.
        let aligned = (start..start + 8)
            .find(|&p| layout.is_low_precision(WlgId(p)) && layout.low_rank(p).is_multiple_of(4))
            .expect("aligned low page");
        let refs: Vec<_> = (0..4)
            .map(|i| layout.metadata_for(WlgId(aligned + i)))
            .collect();
        let line0 = refs[0].primary_line();
        for (i, r) in refs.iter().enumerate() {
            match *r {
                MetadataRef::LowPrecision { line, quarter } => {
                    assert_eq!(line, line0);
                    assert_eq!(quarter, i);
                }
                _ => panic!("expected low-precision ref"),
            }
        }
    }

    #[test]
    fn hybrid_high_rows_use_full_lines() {
        let layout = hybrid(128);
        let divisor = geo().total_banks() as u64;
        let high_page = 400 * divisor; // wordline 400
        assert!(!layout.is_low_precision(WlgId(high_page)));
        assert!(matches!(
            layout.metadata_for(WlgId(high_page)),
            MetadataRef::Partial { .. }
        ));
    }

    #[test]
    fn hybrid_mapping_is_injective_across_precisions() {
        let layout = hybrid(128);
        let divisor = geo().total_banks() as u64;
        let mut seen: HashSet<(u64, usize)> = HashSet::new();
        // Probe pages across wordlines and cycles.
        for cycle in 0..3u64 {
            for wl in [0u64, 1, 127, 128, 129, 300, 511] {
                for within in [0u64, 1, 31] {
                    let p = (cycle * 512 + wl) * divisor + within;
                    if p < layout.first_data_page() {
                        continue;
                    }
                    let (line, q) = match layout.metadata_for(WlgId(p)) {
                        MetadataRef::LowPrecision { line, quarter } => (line.raw(), quarter),
                        MetadataRef::Partial { line } => (line.raw(), 4),
                        MetadataRef::Exact { .. } => unreachable!(),
                    };
                    assert!(seen.insert((line, q)), "collision at page {p}");
                }
            }
        }
    }

    #[test]
    fn every_data_page_maps_into_reserved_region() {
        for format in [
            MetadataFormat::Exact,
            MetadataFormat::Partial,
            MetadataFormat::MultiGranularity {
                low_precision_rows: 128,
            },
        ] {
            let layout = MetadataLayout::new(&geo(), format);
            let reserved_lines = layout.first_data_page() * LINES_PER_WLG as u64;
            let last = layout.data_pages() - 1;
            for rel in [0, 1, 2, 3, 1000, layout.data_pages() / 2, last] {
                let r = layout.metadata_for(WlgId(layout.first_data_page() + rel));
                for l in r.lines() {
                    assert!(
                        l.raw() < reserved_lines,
                        "{format:?}: metadata line {l} outside reserved region"
                    );
                }
            }
        }
    }

    #[test]
    fn metadata_region_lines_are_flagged() {
        let layout = MetadataLayout::new(&geo(), MetadataFormat::Partial);
        assert!(layout.is_metadata(LineAddr::new(0)));
        let first_data_line = layout.first_data_page() * LINES_PER_WLG as u64;
        assert!(!layout.is_metadata(LineAddr::new(first_data_line)));
    }

    #[test]
    #[should_panic(expected = "reserved region")]
    fn metadata_of_metadata_panics() {
        let layout = MetadataLayout::new(&geo(), MetadataFormat::Partial);
        let _ = layout.metadata_for(WlgId(0));
    }
}
