//! Partial-counter estimation of `C^w_lrs` (LADDER-Est, paper Section 4.1)
//! and the 1-bit low-precision variant (LADDER-Hybrid, Section 4.2).
//!
//! For the wordline with the most LRS cells, each line's contribution is at
//! most the popcount of that line's *worst byte*. Splitting the mat group
//! into `N = 4` subgroups of 16 mats tightens the bound: per subgroup `j`,
//! `C^{w_j}_lrs ≤ Σ_i S^{M_j}_i` and `C^w_lrs ≤ max_j C^{w_j}_lrs`.
//! Each `S^{M_j}_i` is quantized to 2 bits (levels 1/3/5/8), so one byte of
//! metadata covers one line and one 64 B metadata line covers a whole 4 KB
//! page — no stale-block read is ever needed.

use ladder_reram::{bits, LineData, LINE_BYTES};

/// Subgroups per mat group in the 2-bit encoding (paper sets `N = 4`).
pub const SUBGROUPS: usize = 4;
/// Bytes of a line mapped to one subgroup.
pub const BYTES_PER_SUBGROUP: usize = LINE_BYTES / SUBGROUPS;

/// Upper-bound levels represented by each 2-bit code: code `c` covers byte
/// popcounts `RANGE_2BIT[c].0 ..= RANGE_2BIT[c].1` and decodes to the range
/// top.
const LEVELS_2BIT: [u16; 4] = [1, 3, 5, 8];

/// Decoded value of a 1-bit code (`0` → ≤ 5, `1` → ≤ 8).
const LEVELS_1BIT: [u16; 2] = [5, 8];

/// The four 2-bit partial counters of one line, packed in one byte
/// (subgroup 0 in the low bits).
///
/// # Examples
///
/// ```
/// use ladder_core::PartialCounters;
///
/// let mut line = [0u8; 64];
/// line[0] = 0xF0; // subgroup 0 worst byte has 4 ones → level 5 (code 2)
/// line[40] = 0xFF; // subgroup 2 worst byte has 8 ones → level 8 (code 3)
/// let pc = PartialCounters::from_line(&line);
/// assert_eq!(pc.decode(0), 5);
/// assert_eq!(pc.decode(1), 1);
/// assert_eq!(pc.decode(2), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialCounters(pub u8);

impl PartialCounters {
    /// Computes the partial counters of a line as it will be stored in
    /// memory (after shifting/Flip-N-Write, if enabled).
    pub fn from_line(data: &LineData) -> Self {
        let mut packed = 0u8;
        for j in 0..SUBGROUPS {
            let worst =
                bits::worst_byte_ones(&data[j * BYTES_PER_SUBGROUP..(j + 1) * BYTES_PER_SUBGROUP])
                    as u16;
            packed |= (encode_2bit(worst) as u8) << (2 * j);
        }
        Self(packed)
    }

    /// Decoded upper bound of subgroup `j`'s worst byte.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 4`.
    pub fn decode(self, j: usize) -> u16 {
        assert!(j < SUBGROUPS, "subgroup index out of range");
        LEVELS_2BIT[((self.0 >> (2 * j)) & 0b11) as usize]
    }

    /// Collapses to the 1-bit low-precision form used for bottom rows.
    pub fn to_low_precision(self) -> LowPrecisionCounters {
        LowPrecisionCounters::from_partial(self)
    }
}

/// The two 1-bit partial counters of one line (bottom-row encoding); bit 0
/// covers the first half of the line's bytes, bit 1 the second half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LowPrecisionCounters(pub u8);

impl LowPrecisionCounters {
    /// Computes the 1-bit counters directly from line contents.
    pub fn from_line(data: &LineData) -> Self {
        let mut packed = 0u8;
        for half in 0..2 {
            let worst = bits::worst_byte_ones(
                &data[half * (LINE_BYTES / 2)..(half + 1) * (LINE_BYTES / 2)],
            ) as u16;
            if worst > LEVELS_1BIT[0] {
                packed |= 1 << half;
            }
        }
        Self(packed)
    }

    /// Derives the 1-bit counters from 2-bit partial counters (paper
    /// Fig. 10b): each half covers two subgroups; the half's bit is set when
    /// either subgroup's level exceeds 5.
    pub fn from_partial(pc: PartialCounters) -> Self {
        let mut packed = 0u8;
        for half in 0..2 {
            let worst = pc.decode(2 * half).max(pc.decode(2 * half + 1));
            if worst > LEVELS_1BIT[0] {
                packed |= 1 << half;
            }
        }
        Self(packed)
    }

    /// Decoded upper bound of half `h`'s worst byte.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 2`.
    pub fn decode(self, h: usize) -> u16 {
        assert!(h < 2, "half index out of range");
        LEVELS_1BIT[((self.0 >> h) & 1) as usize]
    }
}

fn encode_2bit(worst_byte_ones: u16) -> u16 {
    debug_assert!(worst_byte_ones <= 8);
    match worst_byte_ones {
        0..=1 => 0,
        2..=3 => 1,
        4..=5 => 2,
        _ => 3,
    }
}

/// Estimates `C^w_lrs` for a wordline group from the per-line 2-bit partial
/// counters: `max_j Σ_i decode(S_{i,j})`.
///
/// The iterator yields the partial-counter byte of every *resident* line of
/// the group (absent lines are all-zero and may be skipped — zero lines
/// contribute level 1 per subgroup, which `zero_lines` accounts for).
pub fn estimate_cw_lrs(partials: impl Iterator<Item = PartialCounters>, zero_lines: usize) -> u16 {
    let mut sums = [0u16; SUBGROUPS];
    for pc in partials {
        for (j, sum) in sums.iter_mut().enumerate() {
            *sum += pc.decode(j);
        }
    }
    let zero_contrib = zero_lines as u16 * LEVELS_2BIT[0];
    sums.iter()
        .map(|&s| s + zero_contrib)
        .max()
        // lint: allow(panic-policy) — invariant: sums is a fixed-size nonempty array, max() cannot be None
        .expect("nonempty")
}

/// Estimates `C^w_lrs` from 1-bit low-precision counters.
pub fn estimate_cw_lrs_low(
    counters: impl Iterator<Item = LowPrecisionCounters>,
    zero_lines: usize,
) -> u16 {
    let mut sums = [0u16; 2];
    for c in counters {
        for (h, sum) in sums.iter_mut().enumerate() {
            *sum += c.decode(h);
        }
    }
    let zero_contrib = zero_lines as u16 * LEVELS_1BIT[0];
    sums.iter()
        .map(|&s| s + zero_contrib)
        .max()
        // lint: allow(panic-policy) — invariant: sums is a fixed-size nonempty array, max() cannot be None
        .expect("nonempty")
}

/// Exact `C^w_lrs` of a set of lines, for comparing estimation accuracy
/// (paper Fig. 15).
pub fn exact_cw_lrs<'a>(lines: impl Iterator<Item = &'a LineData>) -> u16 {
    let mut per_mat = [0u16; LINE_BYTES];
    for data in lines {
        for base in (0..LINE_BYTES).step_by(8) {
            let lanes = bits::lane_ones(bits::le_word(data, base)).to_le_bytes();
            for (slot, lane) in per_mat[base..base + 8].iter_mut().zip(lanes) {
                *slot += lane as u16;
            }
        }
    }
    // lint: allow(panic-policy) — invariant: per_mat is a fixed-size nonempty array, max() cannot be None
    *per_mat.iter().max().expect("fixed-size array")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_levels_match_paper() {
        // '00','01','10','11' represent 1 (0–1), 3 (2–3), 5 (4–5), 8 (6–8).
        for (ones, expect) in [
            (0, 1),
            (1, 1),
            (2, 3),
            (3, 3),
            (4, 5),
            (5, 5),
            (6, 8),
            (8, 8),
        ] {
            let mut line = [0u8; LINE_BYTES];
            line[0] = (0xFFu16 >> (8 - ones)) as u8;
            assert_eq!(PartialCounters::from_line(&line).decode(0), expect);
        }
    }

    #[test]
    fn partial_counters_bound_exact_count() {
        // Deterministic pseudo-random lines: the estimation inequality
        // C^w ≤ max_j Σ S^{M_j} must always hold.
        let mut x = 12345u64;
        let mut lines = Vec::new();
        for _ in 0..64 {
            let mut l = [0u8; LINE_BYTES];
            for b in &mut l {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 33) as u8;
            }
            lines.push(l);
        }
        let exact = exact_cw_lrs(lines.iter());
        let est = estimate_cw_lrs(lines.iter().map(PartialCounters::from_line), 0);
        assert!(est >= exact, "estimate {est} below exact {exact}");
        let est_low = estimate_cw_lrs_low(lines.iter().map(LowPrecisionCounters::from_line), 0);
        assert!(est_low >= exact);
        // Low precision is never tighter than 2-bit precision.
        assert!(est_low >= est);
    }

    #[test]
    fn zero_lines_contribute_base_level() {
        let est = estimate_cw_lrs(std::iter::empty(), 64);
        assert_eq!(est, 64); // 64 lines × level 1
        let est_low = estimate_cw_lrs_low(std::iter::empty(), 64);
        assert_eq!(est_low, 64 * 5);
    }

    #[test]
    fn low_precision_from_partial_is_conservative() {
        for packed in 0..=u8::MAX {
            let pc = PartialCounters(packed);
            let low = LowPrecisionCounters::from_partial(pc);
            for half in 0..2 {
                let pc_worst = pc.decode(2 * half).max(pc.decode(2 * half + 1));
                assert!(low.decode(half) >= pc_worst);
            }
        }
    }

    #[test]
    fn subgroup_isolation() {
        let mut line = [0u8; LINE_BYTES];
        line[17] = 0xFF; // subgroup 1
        let pc = PartialCounters::from_line(&line);
        assert_eq!(pc.decode(0), 1);
        assert_eq!(pc.decode(1), 8);
        assert_eq!(pc.decode(2), 1);
        assert_eq!(pc.decode(3), 1);
    }

    #[test]
    fn paper_figure7_example_shape() {
        // A line whose subgroup worst bytes have 4, 0, 5, 0 ones → partial
        // counters ⟨5, 1, 5, 1⟩ after encoding.
        let mut line = [0u8; LINE_BYTES];
        line[2] = 0x0F; // 4 ones in subgroup 0
        line[33] = 0x1F; // 5 ones in subgroup 2
        let pc = PartialCounters::from_line(&line);
        assert_eq!(
            [pc.decode(0), pc.decode(1), pc.decode(2), pc.decode(3)],
            [5, 1, 5, 1]
        );
    }
}
