//! Intra-line bit-level shifting (paper Section 4.1, "Improving estimation
//! performance with shifting").
//!
//! Applications often cluster `1` bits in a few bytes of a line, and the
//! pattern repeats across consecutive lines of a page. Left alone, those
//! dense bytes land on the same mats and blow up the worst-byte partial
//! counters. Shifting redistributes bits among the 8 bytes a chip stores
//! (i.e. among 8 mats): bit `j` of byte `k` moves to byte
//! `(k + j + offset) mod 8`, keeping its bit position. A dense byte thus
//! spreads one bit onto each of the 8 mats. The per-line `offset` is derived
//! from the line's block slot so consecutive lines of a page use different
//! rotations, and the transform is exactly reversed on reads.

use ladder_reram::{bits, LineData, LINE_BYTES};

/// Bytes handled by one chip (= mats per chip per line).
const GROUP: usize = 8;

/// Applies the shift to a line, producing the bit layout stored in memory.
///
/// `block_slot` (0–63) selects the per-line rotation offset.
///
/// # Examples
///
/// ```
/// use ladder_core::{shift_line, unshift_line};
///
/// let mut line = [0u8; 64];
/// line[3] = 0xFF; // one dense byte
/// let stored = shift_line(&line, 5);
/// // The dense byte's bits now spread across all 8 bytes of its chip group.
/// assert!(stored[0..8].iter().all(|&b| b.count_ones() == 1));
/// assert_eq!(unshift_line(&stored, 5), line);
/// ```
///
/// # Panics
///
/// Panics if `block_slot >= 64`.
pub fn shift_line(data: &LineData, block_slot: usize) -> LineData {
    assert!(block_slot < 64, "block slot out of range");
    let offset = block_slot % GROUP;
    let mut out = [0u8; LINE_BYTES];
    for g in 0..LINE_BYTES / GROUP {
        let base = g * GROUP;
        let group = bits::le_word(data, base);
        bits::write_le_word(&mut out, base, bits::shift_group(group, offset));
    }
    out
}

/// Reverses [`shift_line`], recovering the original byte order on a read.
///
/// # Panics
///
/// Panics if `block_slot >= 64`.
pub fn unshift_line(stored: &LineData, block_slot: usize) -> LineData {
    assert!(block_slot < 64, "block slot out of range");
    let offset = block_slot % GROUP;
    let mut out = [0u8; LINE_BYTES];
    for g in 0..LINE_BYTES / GROUP {
        let base = g * GROUP;
        let group = bits::le_word(stored, base);
        bits::write_le_word(&mut out, base, bits::unshift_group(group, offset));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_line(seed: u64) -> LineData {
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut l = [0u8; LINE_BYTES];
        for b in &mut l {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 40) as u8;
        }
        l
    }

    #[test]
    fn shift_is_reversible_for_all_slots() {
        for slot in 0..64 {
            let line = pseudo_random_line(slot as u64 + 1);
            assert_eq!(unshift_line(&shift_line(&line, slot), slot), line);
        }
    }

    #[test]
    fn shift_preserves_popcount() {
        for slot in [0, 7, 13, 63] {
            let line = pseudo_random_line(slot as u64 + 99);
            let shifted = shift_line(&line, slot);
            let ones = |l: &LineData| l.iter().map(|b| b.count_ones()).sum::<u32>();
            assert_eq!(ones(&line), ones(&shifted));
        }
    }

    #[test]
    fn dense_byte_spreads_over_the_chip_group() {
        let mut line = [0u8; LINE_BYTES];
        line[8] = 0xFF; // dense byte in the second chip group
        for slot in 0..8 {
            let shifted = shift_line(&line, slot);
            for (k, byte) in shifted.iter().enumerate().take(16).skip(8) {
                assert_eq!(
                    byte.count_ones(),
                    1,
                    "slot {slot}: byte {k} should hold exactly one bit"
                );
            }
            // Other chip groups untouched.
            assert!(shifted[0..8].iter().all(|&b| b == 0));
            assert!(shifted[16..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn different_slots_misalign_identical_lines() {
        let mut line = [0u8; LINE_BYTES];
        line[0] = 0b0000_0110;
        let a = shift_line(&line, 0);
        let b = shift_line(&line, 1);
        assert_ne!(a, b, "consecutive slots must use distinct rotations");
    }

    #[test]
    fn zero_line_is_fixed_point() {
        let zero = [0u8; LINE_BYTES];
        assert_eq!(shift_line(&zero, 11), zero);
        assert_eq!(unshift_line(&zero, 11), zero);
    }

    #[test]
    fn shift_reduces_worst_byte_of_clustered_data() {
        // Clustered pattern: first two bytes of every chip group dense.
        let mut line = [0u8; LINE_BYTES];
        for g in 0..8 {
            line[g * 8] = 0xFF;
            line[g * 8 + 1] = 0xFF;
        }
        let worst = |l: &LineData| l.iter().map(|b| b.count_ones()).max().unwrap_or(0);
        assert_eq!(worst(&line), 8);
        let shifted = shift_line(&line, 3);
        assert!(worst(&shifted) <= 2, "shifting must break up dense bytes");
    }
}
