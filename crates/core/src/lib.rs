//! LADDER: content- and location-aware writes for crossbar ReRAM — the
//! paper's primary contribution.
//!
//! The memory controller cannot see what a crossbar stores, yet RESET
//! latency depends on it. LADDER closes that gap *from the processor side*:
//! it maintains **LRS-metadata** — per-wordline-group counts of `1` bits —
//! in a reserved slice of main memory, caches the hot lines on-chip, and
//! feeds `⟨WL, BL, C^w_lrs⟩` into a precomputed timing table on every
//! write. Three variants trade accuracy for maintenance traffic:
//!
//! * [`LadderVariant::Basic`] — exact 10-bit counters, needs a stale-block
//!   read per write;
//! * [`LadderVariant::Est`] — 2-bit partial counters bounding the worst
//!   byte per sub-group (no stale reads) plus intra-line bit shifting;
//! * [`LadderVariant::Hybrid`] — Est with 1-bit counters for bottom rows,
//!   whose latency barely depends on content.
//!
//! The crate is pure control logic: queueing and timing live in
//! `ladder-memctrl`, the latency physics in `ladder-xbar`.
//!
//! # Examples
//!
//! ```
//! use ladder_core::{LadderConfig, LadderEngine, LadderVariant};
//! use ladder_reram::{AddressMap, Geometry, LineAddr, LineStore};
//!
//! let map = AddressMap::new(Geometry::default());
//! let mut engine = LadderEngine::new(LadderConfig::for_variant(LadderVariant::Hybrid), map);
//! let mut store = LineStore::new();
//!
//! // A write: prepare when queued (metadata fill), service at dispatch.
//! let addr = LineAddr::new(engine.layout().first_data_page() * 64);
//! let prep = engine.prepare_write(addr);
//! assert!(!prep.spilled);
//! let out = engine.service_write(addr, [0b1111_0000; 64], &mut store);
//! assert!(out.cw_lrs <= 512);
//! ```

pub use ladder_reram::bits;

mod cache;
mod counters;
mod engine;
mod fnw;
mod metadata;
mod partial;
mod shift;

pub use cache::{CacheStats, InsertOutcome, MetadataCache, MetadataCacheConfig, SpillBuffer};
pub use counters::{LrsCounterGroup, COUNTER_MAX, LINES_PER_GROUP, PACKED_BYTES};
pub use engine::{
    DependencyRead, EngineStats, LadderConfig, LadderEngine, LadderVariant, PrepareOutcome,
    ReadKind, ServiceOutcome,
};
pub use fnw::{apply_fnw, undo_fnw, FnwOutcome, FnwPolicy, WORDS_PER_LINE, WORD_BYTES};
pub use metadata::{MetadataFormat, MetadataLayout, MetadataRef};
pub use partial::{
    estimate_cw_lrs, estimate_cw_lrs_low, exact_cw_lrs, LowPrecisionCounters, PartialCounters,
    BYTES_PER_SUBGROUP, SUBGROUPS,
};
pub use shift::{shift_line, unshift_line};
