//! The LADDER control logic (paper Fig. 6 and Fig. 9): metadata lookup and
//! update on the write path, and latency-query inputs at dispatch time.
//!
//! The engine is deliberately free of queueing/timing concerns — the memory
//! controller calls [`LadderEngine::prepare_write`] when a write enters the
//! write queue (emitting the dependency reads the paper overlaps with
//! queueing time) and [`LadderEngine::service_write`] when the write is
//! dispatched (returning the `⟨WL, BL, C^w_lrs⟩` tuple for the timing-table
//! lookup plus the cell-switching statistics for energy/endurance models).

use crate::cache::{InsertOutcome, MetadataCache, MetadataCacheConfig};
use crate::counters::LrsCounterGroup;
use crate::fnw::{apply_fnw, undo_fnw, FnwPolicy};
use crate::metadata::{MetadataFormat, MetadataLayout, MetadataRef};
use crate::partial::{
    estimate_cw_lrs, estimate_cw_lrs_low, exact_cw_lrs, LowPrecisionCounters, PartialCounters,
};
use crate::shift::{shift_line, unshift_line};
use ladder_reram::{AddressMap, LineAddr, LineData, LineStore, LINES_PER_WLG};
use std::collections::HashMap;

/// Which LADDER variant the engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LadderVariant {
    /// Exact counters + stale-memory-block reads (Section 3.3).
    Basic,
    /// Partial-counter estimation + intra-line bit shifting (Section 4.1).
    Est,
    /// Est plus multi-granularity counters for bottom rows (Section 4.2).
    Hybrid,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Scheme variant.
    pub variant: LadderVariant,
    /// Flip-N-Write policy (LADDER uses the constrained variant).
    pub fnw: FnwPolicy,
    /// Intra-line bit shifting (an Est/Hybrid optimization).
    pub shifting: bool,
    /// Bottom rows using 1-bit counters (Hybrid only).
    pub low_precision_rows: usize,
    /// Metadata cache geometry.
    pub cache: MetadataCacheConfig,
    /// Also compute the exact `C^w_lrs` per write (costly; used by the
    /// Fig. 15 estimation-accuracy experiment).
    pub track_exact: bool,
}

impl LadderConfig {
    /// Default configuration for a variant, per the paper's evaluation
    /// setup (constrained FNW; shifting on for Est/Hybrid; 128 bottom rows
    /// at low precision for Hybrid).
    pub fn for_variant(variant: LadderVariant) -> Self {
        Self {
            variant,
            fnw: FnwPolicy::Constrained,
            shifting: variant != LadderVariant::Basic,
            low_precision_rows: 128,
            cache: MetadataCacheConfig::default(),
            track_exact: false,
        }
    }

    fn metadata_format(&self) -> MetadataFormat {
        match self.variant {
            LadderVariant::Basic => MetadataFormat::Exact,
            LadderVariant::Est => MetadataFormat::Partial,
            LadderVariant::Hybrid => MetadataFormat::MultiGranularity {
                low_precision_rows: self.low_precision_rows,
            },
        }
    }
}

/// Category of a dependency read the controller must issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// Stale-memory-block read (LADDER-Basic only).
    Smb,
    /// LRS-metadata line fill.
    Metadata,
}

/// A read the memory controller must issue before the write is ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DependencyRead {
    /// Line to read.
    pub addr: LineAddr,
    /// Why it is being read.
    pub kind: ReadKind,
}

/// Result of preparing a write when it enters the write queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareOutcome {
    /// Reads to issue; the write is dispatch-ready once they complete.
    pub reads: Vec<DependencyRead>,
    /// Dirty metadata lines evicted by the fill; each needs a memory write.
    pub writebacks: Vec<LineAddr>,
    /// The metadata could not be installed (conflict set fully shared);
    /// the request must park in the spill buffer and retry.
    pub spilled: bool,
}

/// Result of servicing (dispatching) a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Wordline index for the timing-table lookup.
    pub wordline: usize,
    /// Worst bit column for the timing-table lookup.
    pub worst_col: usize,
    /// The `C^w_lrs` value (exact for Basic, estimated for Est/Hybrid).
    pub cw_lrs: u16,
    /// Exact `C^w_lrs` when [`LadderConfig::track_exact`] is set.
    pub cw_exact: Option<u16>,
    /// Cells switched 0→1 by this write (stored image).
    pub bits_set: u32,
    /// Cells switched 1→0.
    pub bits_reset: u32,
    /// Flips the FNW constraint cancelled on this line.
    pub flips_cancelled: u32,
}

/// Cumulative engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Writes serviced.
    pub writes: u64,
    /// Stale-memory-block reads issued.
    pub smb_reads: u64,
    /// Metadata line fills issued.
    pub metadata_reads: u64,
    /// Dirty metadata lines written back to memory.
    pub metadata_writebacks: u64,
    /// Prepare attempts that had to spill.
    pub spills: u64,
    /// FNW flips cancelled by the counting constraint.
    pub flips_cancelled: u64,
    /// Total FNW flip opportunities (words where flipping won).
    pub flip_opportunities: u64,
}

/// The LADDER control logic.
///
/// # Examples
///
/// ```
/// use ladder_core::{LadderConfig, LadderEngine, LadderVariant};
/// use ladder_reram::{AddressMap, Geometry, LineAddr, LineStore};
///
/// let map = AddressMap::new(Geometry::default());
/// let mut engine = LadderEngine::new(LadderConfig::for_variant(LadderVariant::Est), map);
/// let mut store = LineStore::new();
/// let addr = LineAddr::new(engine.layout().first_data_page() * 64);
///
/// let prep = engine.prepare_write(addr);
/// assert!(!prep.spilled);
/// let out = engine.service_write(addr, [0xFF; 64], &mut store);
/// assert!(out.cw_lrs >= 64); // estimation is an upper bound
/// assert_eq!(engine.read_line(addr, &store), [0xFF; 64]);
/// ```
#[derive(Debug)]
pub struct LadderEngine {
    config: LadderConfig,
    map: AddressMap,
    layout: MetadataLayout,
    cache: MetadataCache,
    flip_masks: HashMap<u64, u8>,
    stats: EngineStats,
}

impl LadderEngine {
    /// Creates an engine for the given configuration and address map.
    pub fn new(config: LadderConfig, map: AddressMap) -> Self {
        let layout = MetadataLayout::new(map.geometry(), config.metadata_format());
        let cache = MetadataCache::new(config.cache);
        Self {
            config,
            map,
            layout,
            cache,
            flip_masks: HashMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LadderConfig {
        &self.config
    }

    /// The metadata layout (for placement of data pages and overhead
    /// reporting).
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// The metadata cache (for hit-ratio statistics).
    pub fn cache(&self) -> &MetadataCache {
        &self.cache
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Handles a write request entering the write queue: looks up the
    /// metadata line(s), pins them with a Sharer, and reports the
    /// dependency reads to issue.
    ///
    /// When the outcome is `spilled`, nothing was pinned or issued; the
    /// controller parks the request and calls this again later.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies inside the reserved metadata region (metadata
    /// writebacks do not pass through `prepare_write`).
    pub fn prepare_write(&mut self, addr: LineAddr) -> PrepareOutcome {
        let meta = self.layout.metadata_for(self.map.wlg_of(addr));
        let mut reads = Vec::new();
        let mut writebacks = Vec::new();
        for line in meta.lines() {
            if self.cache.lookup(line) {
                continue;
            }
            match self.cache.insert(line) {
                InsertOutcome::Installed { writeback } => {
                    self.stats.metadata_reads += 1;
                    reads.push(DependencyRead {
                        addr: line,
                        kind: ReadKind::Metadata,
                    });
                    if let Some(wb) = writeback {
                        self.stats.metadata_writebacks += 1;
                        writebacks.push(wb);
                    }
                }
                InsertOutcome::Blocked => {
                    self.stats.spills += 1;
                    // Note: a multi-line group may have installed its first
                    // line already; that line stays resident (unpinned) and
                    // the retry will hit it.
                    return PrepareOutcome {
                        reads,
                        writebacks,
                        spilled: true,
                    };
                }
            }
        }
        for line in meta.lines() {
            self.cache.add_sharer(line);
        }
        if self.config.variant == LadderVariant::Basic {
            self.stats.smb_reads += 1;
            reads.push(DependencyRead {
                addr,
                kind: ReadKind::Smb,
            });
        }
        PrepareOutcome {
            reads,
            writebacks,
            spilled: false,
        }
    }

    /// Services a dispatched write: transforms the data (shift + FNW),
    /// derives the `⟨WL, BL, C^w_lrs⟩` latency inputs from the *current*
    /// metadata, updates metadata and memory contents, and releases the
    /// Sharer pins.
    ///
    /// # Panics
    ///
    /// Panics if the metadata was not resident (i.e. `prepare_write` did
    /// not complete for this address — the Sharer protocol guarantees
    /// residency between prepare and service).
    pub fn service_write(
        &mut self,
        addr: LineAddr,
        data: LineData,
        store: &mut LineStore,
    ) -> ServiceOutcome {
        let wlg = self.map.wlg_of(addr);
        let meta = self.layout.metadata_for(wlg);
        let (wordline, worst_col) = self.map.write_location(addr);
        let slot = addr.block_slot();

        // Latency inputs from the metadata *before* this write updates it.
        let cw_lrs = self.current_cw(&meta, store);

        // Transform the data into its stored image.
        let shifted = if self.config.shifting {
            shift_line(&data, slot)
        } else {
            data
        };
        let old_stored = store.read(addr);
        let fnw = apply_fnw(&shifted, &old_stored, self.config.fnw);
        self.stats.flips_cancelled += fnw.flips_cancelled as u64;
        self.stats.flip_opportunities += (fnw.flip_mask.count_ones() + fnw.flips_cancelled) as u64;

        // Update metadata contents.
        match meta {
            MetadataRef::Exact { lo, hi } => {
                let lines = [store.read(lo), store.read(hi)];
                let mut counters = LrsCounterGroup::from_metadata_lines(&lines);
                counters.apply_delta(&old_stored, &fnw.stored);
                let updated = counters.to_metadata_lines();
                store.write(lo, updated[0]);
                store.write(hi, updated[1]);
            }
            MetadataRef::Partial { line } => {
                let mut content = store.read(line);
                content[slot] = PartialCounters::from_line(&fnw.stored).0;
                store.write(line, content);
            }
            MetadataRef::LowPrecision { line, quarter } => {
                let mut content = store.read(line);
                let low = LowPrecisionCounters::from_line(&fnw.stored).0;
                let byte = quarter * 16 + slot / 4;
                let shift = (slot % 4) * 2;
                content[byte] = (content[byte] & !(0b11 << shift)) | (low << shift);
                store.write(line, content);
            }
        }
        for line in meta.lines() {
            self.cache.mark_dirty(line);
            self.cache.release_sharer(line);
        }

        store.write(addr, fnw.stored);
        if fnw.flip_mask != 0 {
            self.flip_masks.insert(addr.raw(), fnw.flip_mask);
        } else {
            self.flip_masks.remove(&addr.raw());
        }
        self.stats.writes += 1;

        // Exact counter (optional, for the Fig. 15 estimation-accuracy
        // experiment): the counter an accurate-counting scheme without
        // transforms (LADDER-Basic) would see for the same logical content
        // — i.e. over the *recovered* lines, post-write. Comparing the
        // estimate against this exposes both estimation slack (positive
        // differences) and the flattening effect of bit shifting (negative
        // differences).
        let cw_exact = if self.config.track_exact {
            let datas: Vec<LineData> = self
                .map
                .lines_of_wlg(wlg)
                .map(|l| {
                    if l == addr {
                        data
                    } else {
                        self.read_line(l, store)
                    }
                })
                .collect();
            Some(exact_cw_lrs(datas.iter()))
        } else {
            None
        };

        ServiceOutcome {
            wordline,
            worst_col,
            cw_lrs,
            cw_exact,
            bits_set: fnw.bits_set,
            bits_reset: fnw.bits_reset,
            flips_cancelled: fnw.flips_cancelled,
        }
    }

    /// Reads a line back through the reverse transforms (un-flip, then
    /// un-shift), recovering the original data.
    pub fn read_line(&self, addr: LineAddr, store: &LineStore) -> LineData {
        let stored = store.read(addr);
        let unflipped = match self.flip_masks.get(&addr.raw()) {
            Some(&mask) => undo_fnw(&stored, mask),
            None => stored,
        };
        if self.config.shifting {
            unshift_line(&unflipped, addr.block_slot())
        } else {
            unflipped
        }
    }

    /// The current `C^w_lrs` the latency-query module would derive for a
    /// write to `addr`, without side effects.
    pub fn peek_cw(&self, addr: LineAddr, store: &LineStore) -> u16 {
        let meta = self.layout.metadata_for(self.map.wlg_of(addr));
        self.current_cw(&meta, store)
    }

    /// Flushes every dirty metadata line, returning the addresses whose
    /// memory writes the controller must schedule (end of simulation, or an
    /// eADR-style persist-on-power-fail flush).
    pub fn flush_metadata(&mut self) -> Vec<LineAddr> {
        let flushed = self.cache.flush_dirty();
        self.stats.metadata_writebacks += flushed.len() as u64;
        flushed
    }

    /// Lazy LRS-metadata correction after a crash (paper Section 7):
    /// conservatively overwrites the whole reserved region with worst-case
    /// counter values so later writes use safe timings; per-line estimates
    /// re-tighten as lines are rewritten.
    pub fn lazy_crash_correction(&mut self, store: &mut LineStore) {
        self.cache = MetadataCache::new(self.config.cache);
        let worst: LineData = match self.config.variant {
            // Packed 10-bit counters of 512 each ⇒ saturate every field;
            // 0xFF bytes decode to the 10-bit max after clamping (1023 →
            // still ≥ 512, and `current_cw` clamps at the line width).
            LadderVariant::Basic => [0xFF; 64],
            // Partial bytes 0xFF decode to level 8 everywhere.
            LadderVariant::Est | LadderVariant::Hybrid => [0xFF; 64],
        };
        for page in 0..self.layout.first_data_page() {
            for i in 0..LINES_PER_WLG as u64 {
                store.write(LineAddr::new(page * LINES_PER_WLG as u64 + i), worst);
            }
        }
    }

    fn current_cw(&self, meta: &MetadataRef, store: &LineStore) -> u16 {
        match *meta {
            MetadataRef::Exact { lo, hi } => {
                let lines = [store.read(lo), store.read(hi)];
                LrsCounterGroup::from_metadata_lines(&lines)
                    .max()
                    .min(self.map.geometry().mat_cols as u16)
            }
            MetadataRef::Partial { line } => {
                let content = store.read(line);
                estimate_cw_lrs(content.iter().map(|&b| PartialCounters(b)), 0)
                    .min(self.map.geometry().mat_cols as u16)
            }
            MetadataRef::LowPrecision { line, quarter } => {
                let content = store.read(line);
                let region = &content[quarter * 16..(quarter + 1) * 16];
                let counters = (0..LINES_PER_WLG).map(|slot| {
                    let bits = (region[slot / 4] >> ((slot % 4) * 2)) & 0b11;
                    LowPrecisionCounters(bits)
                });
                estimate_cw_lrs_low(counters, 0).min(self.map.geometry().mat_cols as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::Geometry;

    fn engine(variant: LadderVariant) -> (LadderEngine, LineStore) {
        engine_with(variant, |_| {})
    }

    fn engine_with(
        variant: LadderVariant,
        tweak: impl FnOnce(&mut LadderConfig),
    ) -> (LadderEngine, LineStore) {
        let map = AddressMap::new(Geometry::default());
        let mut cfg = LadderConfig::for_variant(variant);
        cfg.track_exact = true;
        tweak(&mut cfg);
        (LadderEngine::new(cfg, map), LineStore::new())
    }

    fn data_addr(e: &LadderEngine, page_off: u64, slot: u64) -> LineAddr {
        LineAddr::new((e.layout().first_data_page() + page_off) * 64 + slot)
    }

    #[test]
    fn basic_emits_smb_and_metadata_reads() {
        let (mut e, _) = engine(LadderVariant::Basic);
        let addr = data_addr(&e, 0, 0);
        let prep = e.prepare_write(addr);
        assert!(!prep.spilled);
        let kinds: Vec<ReadKind> = prep.reads.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![ReadKind::Metadata, ReadKind::Metadata, ReadKind::Smb]
        );
    }

    #[test]
    fn est_avoids_smb_reads() {
        let (mut e, _) = engine(LadderVariant::Est);
        let addr = data_addr(&e, 0, 0);
        let prep = e.prepare_write(addr);
        assert_eq!(prep.reads.len(), 1);
        assert_eq!(prep.reads[0].kind, ReadKind::Metadata);
        // Second write to the same page hits the cache: no reads at all.
        let addr2 = data_addr(&e, 0, 1);
        let prep2 = e.prepare_write(addr2);
        assert!(prep2.reads.is_empty());
        assert_eq!(e.stats().smb_reads, 0);
    }

    #[test]
    fn estimates_bound_exact_counters() {
        // FNW and shifting are disabled so `cw_exact` (computed over the
        // logical content) coincides with what the counters track; the
        // transform interactions are exercised by the shift/fnw tests and
        // the Fig. 15 experiment.
        for variant in [
            LadderVariant::Basic,
            LadderVariant::Est,
            LadderVariant::Hybrid,
        ] {
            let (mut e, mut store) = engine_with(variant, |cfg| {
                cfg.fnw = FnwPolicy::Disabled;
                cfg.shifting = false;
            });
            let mut x = 55u64;
            for w in 0..40u64 {
                let addr = data_addr(&e, w % 3, (w * 7) % 64);
                let mut data = [0u8; 64];
                for b in &mut data {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *b = (x >> 37) as u8;
                }
                let prep = e.prepare_write(addr);
                assert!(!prep.spilled);
                let out = e.service_write(addr, data, &mut store);
                let exact = out.cw_exact.expect("tracking enabled");
                // One write later, the metadata reflects this write; peek
                // must bound the exact value.
                let est_after = e.peek_cw(addr, &store);
                assert!(
                    est_after >= exact || variant == LadderVariant::Basic,
                    "{variant:?}: estimate {est_after} below exact {exact}"
                );
                if variant == LadderVariant::Basic {
                    // Exact counters: equal, not just bounding.
                    assert_eq!(est_after, exact, "basic counters must be exact");
                }
            }
        }
    }

    #[test]
    fn read_line_roundtrips_through_transforms() {
        for variant in [
            LadderVariant::Basic,
            LadderVariant::Est,
            LadderVariant::Hybrid,
        ] {
            let (mut e, mut store) = engine(variant);
            let addr = data_addr(&e, 1, 13);
            let mut data = [0u8; 64];
            for (i, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(37) ^ 0xA5;
            }
            e.prepare_write(addr);
            e.service_write(addr, data, &mut store);
            assert_eq!(e.read_line(addr, &store), data, "{variant:?}");
        }
    }

    #[test]
    fn service_releases_sharers_for_eviction() {
        let (mut e, mut store) = engine(LadderVariant::Est);
        let addr = data_addr(&e, 0, 0);
        e.prepare_write(addr);
        e.service_write(addr, [1; 64], &mut store);
        // After service, flushing returns the dirty metadata line.
        let dirty = e.flush_metadata();
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn hybrid_low_rows_use_coarse_counters() {
        let (mut e, mut store) = engine(LadderVariant::Hybrid);
        // Pick a data page in the bottom rows (low precision).
        let low_page = e
            .layout()
            .first_low_precision_data_page()
            .expect("hybrid has a low region");
        let addr = LineAddr::new(low_page * 64);
        assert!(e
            .layout()
            .is_low_precision(ladder_reram::WlgId(addr.page())));
        e.prepare_write(addr);
        let out = e.service_write(addr, [0u8; 64], &mut store);
        // 1-bit counters floor at 5 per line even for all-zero data.
        let est = e.peek_cw(addr, &store);
        assert_eq!(est, 64 * 5);
        assert_eq!(out.bits_set, 0);
    }

    #[test]
    fn lazy_crash_correction_is_conservative_then_tightens() {
        let (mut e, mut store) = engine(LadderVariant::Est);
        let addr = data_addr(&e, 0, 0);
        e.prepare_write(addr);
        e.service_write(addr, [0u8; 64], &mut store);
        let before = e.peek_cw(addr, &store);
        e.lazy_crash_correction(&mut store);
        let after_crash = e.peek_cw(addr, &store);
        assert!(after_crash >= before);
        assert_eq!(after_crash, 512, "worst-case assumption after crash");
        // Rewriting the page's lines tightens the estimate again.
        for slot in 0..64 {
            let a = data_addr(&e, 0, slot);
            e.prepare_write(a);
            e.service_write(a, [0u8; 64], &mut store);
        }
        assert_eq!(e.peek_cw(addr, &store), 64);
    }

    #[test]
    fn flip_cancellation_is_counted() {
        let (mut e, mut store) = engine(LadderVariant::Est);
        let addr = data_addr(&e, 0, 0);
        // 0x35 bytes (24 ones/word) store verbatim: flipping would change
        // more cells (320) than writing directly (192).
        e.prepare_write(addr);
        e.service_write(addr, [0x35; 64], &mut store);
        // 0x08 bytes: 40 changed cells/word direct vs 24 flipped, so
        // classical FNW would flip — but the flipped word holds 56 ones vs
        // 8, so the constraint cancels every flip.
        e.prepare_write(addr);
        let out = e.service_write(addr, [0x08; 64], &mut store);
        assert!(out.flips_cancelled > 0);
        assert!(e.stats().flips_cancelled > 0);
    }
}
