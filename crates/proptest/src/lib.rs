//! Offline drop-in subset of the `proptest` API.
//!
//! The container this workspace builds in has no registry access, so the
//! real `proptest` crate cannot be downloaded. This shim implements the
//! slice of its API the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! range/tuple/`vec` strategies, `prop_map`/`prop_flat_map`, and
//! `ProptestConfig::with_cases` — over a deterministic per-test
//! SplitMix64 generator. There is no shrinking: a failing case panics
//! with the case index, and the generator is seeded from the test's
//! module path, so every failure reproduces exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator seeding each property test.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test's name (FNV-1a), so runs are
    /// reproducible without any global state.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration (the subset the tests set).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values (the object-safe core of proptest's
/// `Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinator methods on every [`Strategy`] (kept separate so the core
/// trait stays object-safe for [`prop_oneof!`]).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

impl<T: Strategy> StrategyExt for T {}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`StrategyExt::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks one of several boxed strategies uniformly (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Builds a [`Union`]; the coercion point for [`prop_oneof!`]'s arms.
pub fn union<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.f64_unit()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one uniformly distributed value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// The strategy [`any`] returns.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// How many elements a collection strategy generates.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, StrategyExt, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (module-path access to the
    /// sub-strategy namespaces).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `ProptestConfig::cases` random cases over its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bindings!(__rng; $($args)*);
                $body
            }
        }
    )*};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks one strategy arm uniformly at random per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 1..6).generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            let exact = prop::collection::vec(any::<bool>(), 64).generate(&mut rng);
            assert_eq!(exact.len(), 64);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combo");
        let s = (0u8..4).prop_flat_map(|n| (Just(n), 0u8..(n + 1)));
        for _ in 0..500 {
            let (n, m) = s.generate(&mut rng);
            assert!(m <= n);
        }
        let one = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        for _ in 0..100 {
            let v = one.generate(&mut rng);
            assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_binds_patterns((a, b) in (0u32..10, 0u32..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            if flag {
                prop_assert_eq!(a + b, b + a);
            }
        }
    }
}
