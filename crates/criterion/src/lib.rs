#![warn(missing_docs)]

//! Offline drop-in subset of the `criterion` API.
//!
//! The container this workspace builds in has no registry access, so the
//! real `criterion` crate cannot be downloaded. This shim implements the
//! slice its benches use — [`Criterion::bench_function`], `Bencher::iter`,
//! [`criterion_group!`] and [`criterion_main!`] — as a plain wall-clock
//! harness: calibrate an iteration count against a target measurement
//! time, run it, and print mean time per iteration. Invoked with `--test`
//! (as `cargo test --benches` does), each routine runs exactly once as a
//! smoke check instead of being measured.

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every group function.
pub struct Criterion {
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            measurement_time: Duration::from_millis(300),
            test_mode,
        }
    }
}

impl Criterion {
    /// Measures `f`'s routine and prints `name: <mean> per iter`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut b);
            println!("{name}: ok (test mode, 1 iteration)");
            return self;
        }
        // Calibrate: grow the iteration count until one batch costs at
        // least a tenth of the measurement budget.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= self.measurement_time / 10 || b.iters >= 1 << 24 {
                break;
            }
            b.iters *= 8;
        }
        // Measure: scale to fill the budget.
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let target = (self.measurement_time.as_secs_f64() / per_iter.max(1e-12)) as u64;
        b.iters = target.clamp(1, 1 << 28);
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let mean_ns = b.elapsed.as_secs_f64() * 1e9 / b.iters as f64;
        println!(
            "{name}: {} /iter ({} iterations)",
            format_ns(mean_ns),
            b.iters
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times the routine a benchmark hands to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the calibrated iteration count and records the
    /// elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
    }
}
