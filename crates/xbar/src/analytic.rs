//! Fast first-order analytic IR-drop estimator.
//!
//! The full MNA solve is exact but costs milliseconds per operating point.
//! Timing tables only need a *conservative* voltage estimate at worst-case
//! operating points, so this module computes the IR drop along the selected
//! wordline and bitlines by superposition of nominal sneak currents:
//!
//! * each fully-selected cell injects `I_f = Vd / R_lrs` into the grounded
//!   wordline and draws the same from its bitline;
//! * each half-selected cell conducts `V_bias / (R_cell · κ)` where `κ` is
//!   the selector non-linearity at half bias.
//!
//! Line sag is ignored when evaluating the half-select currents, which
//! *overestimates* them and therefore underestimates the target voltage —
//! the resulting latency is an upper bound on the true requirement, exactly
//! the safety direction a write-timing table needs. The fully-selected
//! current is resolved self-consistently by fixed-point iteration.

use crate::params::CrossbarParams;

/// Number of fixed-point iterations resolving `I_f = Vd / R_lrs`.
const FIXED_POINT_ITERS: usize = 24;

/// Operating point for an analytic voltage estimate.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Wordline being RESET (0 = nearest the bitline drivers).
    pub target_wl: usize,
    /// Columns of the fully-selected cells.
    pub target_bls: Vec<usize>,
    /// Number of LRS cells on the selected wordline (worst-case placed at
    /// the far end of the line).
    pub wl_ones: usize,
    /// Number of LRS cells on each selected bitline (worst-case placed at
    /// the far end of the line).
    pub bl_ones: usize,
}

/// Estimates the voltage drop across each fully-selected cell.
///
/// Returns one `(column, volts)` pair per target bitline, in ascending
/// column order. The estimate is conservative: it never exceeds the exact
/// MNA voltage (up to solver tolerance).
///
/// # Panics
///
/// Panics if any coordinate or population is out of range for the mat.
///
/// # Examples
///
/// ```
/// use ladder_xbar::{analytic, CrossbarParams};
///
/// let params = CrossbarParams::default();
/// let op = analytic::OperatingPoint {
///     target_wl: 511,
///     target_bls: vec![63, 127, 191, 255, 319, 383, 447, 511],
///     wl_ones: 512,
///     bl_ones: 512,
/// };
/// let vd = analytic::estimate_vd(&params, &op);
/// assert_eq!(vd.len(), 8);
/// assert!(vd.iter().all(|&(_, v)| v > 0.0 && v < 3.0));
/// ```
pub fn estimate_vd(params: &CrossbarParams, op: &OperatingPoint) -> Vec<(usize, f64)> {
    let (rows, cols) = (params.rows, params.cols);
    assert!(op.target_wl < rows, "target wordline out of range");
    assert!(
        op.wl_ones <= cols && op.bl_ones <= rows,
        "LRS population exceeds line length"
    );
    let mut bls = op.target_bls.clone();
    bls.sort_unstable();
    bls.dedup();
    assert!(!bls.is_empty(), "at least one target bitline required");
    assert!(
        // lint: allow(panic-policy) — invariant: the assert above guarantees bls is nonempty
        *bls.last().expect("nonempty") < cols,
        "target bitline out of range"
    );

    let kappa = params.selector_multiplier(params.bias_voltage);
    // Half-selected sneak currents at nominal bias, per cell. Cells on the
    // selected wordline carry the calibrated gain (see
    // `CrossbarParams::wl_sneak_gain`).
    let i_half_lrs = params.bias_voltage / (params.r_lrs * kappa);
    let i_half_hrs = params.bias_voltage / (params.r_hrs * kappa);
    let i_wl_lrs = i_half_lrs * params.wl_sneak_gain;
    let i_wl_hrs = i_half_hrs * params.wl_sneak_gain;
    let r_w = params.r_wire;

    // Worst-case far-end placement of the wordline LRS population
    // (excluding the target columns themselves, which are fully selected).
    let wl_lrs_cols: Vec<usize> = (0..cols)
        .rev()
        .filter(|c| !bls.contains(c))
        .take(op.wl_ones.min(cols.saturating_sub(bls.len())))
        .collect();
    let wl_hrs_count = cols - bls.len() - wl_lrs_cols.len();
    // Far-end placement of the bitline LRS population (excluding target row).
    let bl_lrs_rows: Vec<usize> = (0..rows)
        .rev()
        .filter(|&r| r != op.target_wl)
        .take(op.bl_ones.min(rows - 1))
        .collect();
    let bl_hrs_count = rows - 1 - bl_lrs_rows.len();

    // Aggregate wordline sneak: total current and per-target-position moment.
    let wl_sneak_total = i_wl_lrs * wl_lrs_cols.len() as f64 + i_wl_hrs * wl_hrs_count as f64;
    let wl_lrs_moment =
        |b: usize| -> f64 { wl_lrs_cols.iter().map(|&c| c.min(b) as f64).sum::<f64>() };
    // HRS cells contribute uniformly; approximate their positions as spread
    // over the whole line (they are everywhere the LRS cells are not).
    let wl_hrs_moment = |b: usize| -> f64 { wl_hrs_count as f64 * (b as f64) * 0.5 };

    // Bitline sneak per selected bitline.
    let bl_sneak_total = i_half_lrs * bl_lrs_rows.len() as f64 + i_half_hrs * bl_hrs_count as f64;
    let w = op.target_wl;
    let bl_lrs_moment: f64 = bl_lrs_rows.iter().map(|&r| r.min(w) as f64).sum();
    let bl_hrs_moment: f64 = bl_hrs_count as f64 * (w as f64) * 0.5;
    let bl_drop_static = params.r_output * bl_sneak_total
        + r_w * (i_half_lrs * bl_lrs_moment + i_half_hrs * bl_hrs_moment);

    // Fixed point on the fully-selected currents (cells under active RESET
    // present the transition resistance, not the initial LRS value).
    let mut i_f = vec![params.write_voltage / params.r_reset_transition; bls.len()];
    let mut vd = vec![params.write_voltage; bls.len()];
    for _ in 0..FIXED_POINT_ITERS {
        let i_f_total: f64 = i_f.iter().sum();
        for (k, &b) in bls.iter().enumerate() {
            // Wordline drop at column b: driver drop plus wire drop from all
            // currents sharing segments 0..b with the target.
            let full_moment: f64 = bls
                .iter()
                .zip(&i_f)
                .map(|(&bk, &ik)| ik * bk.min(b) as f64)
                .sum();
            let drop_wl = params.r_input * (i_f_total + wl_sneak_total)
                + r_w * (full_moment + i_wl_lrs * wl_lrs_moment(b) + wl_hrs_moment(b) * i_wl_hrs);
            // Bitline drop at row w for this bitline's own current.
            let drop_bl = params.r_output * i_f[k] + r_w * i_f[k] * w as f64 + bl_drop_static;
            let new_vd = (params.write_voltage - drop_wl - drop_bl).max(0.05);
            vd[k] = new_vd;
            i_f[k] = new_vd / params.r_reset_transition;
        }
    }
    bls.into_iter().zip(vd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::{solve_reset, ResetOp, SolverKind};
    use crate::pattern::PatternSpec;

    fn point(
        n: usize,
        w: usize,
        bls: Vec<usize>,
        wl_ones: usize,
        bl_ones: usize,
    ) -> OperatingPoint {
        let _ = n;
        OperatingPoint {
            target_wl: w,
            target_bls: bls,
            wl_ones,
            bl_ones,
        }
    }

    #[test]
    fn estimate_is_monotone_in_content() {
        let params = CrossbarParams::default();
        let mut prev = f64::INFINITY;
        for ones in [0usize, 64, 128, 256, 512] {
            let op = point(512, 511, vec![511], ones, 512);
            let vd = estimate_vd(&params, &op)[0].1;
            assert!(vd <= prev + 1e-12, "vd must fall as content grows");
            prev = vd;
        }
    }

    #[test]
    fn estimate_is_monotone_in_location() {
        let params = CrossbarParams::default();
        let near = estimate_vd(&params, &point(512, 0, vec![0], 256, 256))[0].1;
        let far = estimate_vd(&params, &point(512, 511, vec![511], 256, 256))[0].1;
        assert!(far < near);
    }

    #[test]
    fn estimate_is_conservative_vs_mna() {
        // On a mat small enough for exact solves, the analytic voltage must
        // never exceed the MNA voltage by more than solver noise.
        let n = 48;
        let params = CrossbarParams::with_size(n, n);
        for (w, b, ones) in [
            (n - 1, n - 1, n),
            (n - 1, n - 1, 0),
            (0, 0, n),
            (n / 2, n / 2, n / 2),
        ] {
            let ones = ones.min(n);
            let grid = PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(n, n, w, &[b]);
            let exact = solve_reset(
                &params,
                &grid,
                &ResetOp::new(w, vec![b]),
                SolverKind::LineRelaxation,
            )
            .expect("mna solve")
            .min_target_vd();
            let approx = estimate_vd(&params, &point(n, w, vec![b], ones, n))[0].1;
            assert!(
                approx <= exact + 0.02,
                "analytic {approx:.4} V must not exceed MNA {exact:.4} V (w={w}, b={b}, ones={ones})"
            );
            // And it should not be wildly pessimistic either.
            assert!(
                approx > exact - 0.45,
                "analytic {approx:.4} V too far below MNA {exact:.4} V"
            );
        }
    }

    #[test]
    fn eight_cell_reset_orders_by_distance() {
        let params = CrossbarParams::default();
        let bls: Vec<usize> = (0..8).map(|i| i * 64 + 63).collect();
        let op = point(512, 255, bls, 384, 384);
        let vd = estimate_vd(&params, &op);
        for w in vd.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "farther columns cannot be faster");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_wordline_panics() {
        let params = CrossbarParams::with_size(8, 8);
        let op = point(8, 8, vec![0], 0, 0);
        let _ = estimate_vd(&params, &op);
    }
}
