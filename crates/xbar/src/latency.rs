//! The RESET latency law `t = C · e^(−k·|Vd|)`.
//!
//! RESET time is exponentially sensitive to the voltage drop across the
//! target cell (Yu & Wong, IEEE EDL 2010); measured HfOx devices slow down
//! roughly 10× when the drop falls by 0.4 V (Govoreanu et al., IEDM 2011).
//! The law here is calibrated from two anchor points — typically the
//! best-case and worst-case operating voltages of a full-size crossbar
//! mapped to the paper's `tWR` range of 29–658 ns.

/// Exponential RESET latency law.
///
/// # Examples
///
/// ```
/// use ladder_xbar::LatencyLaw;
///
/// // 29 ns at 2.8 V and 658 ns at 1.8 V.
/// let law = LatencyLaw::calibrate(2.8, 29.0, 1.8, 658.0);
/// assert!((law.latency_ns(2.8) - 29.0).abs() < 1e-6);
/// assert!((law.latency_ns(1.8) - 658.0).abs() < 1e-6);
/// assert!(law.latency_ns(2.3) > 29.0 && law.latency_ns(2.3) < 658.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyLaw {
    /// Pre-exponential constant, in nanoseconds.
    pub c_ns: f64,
    /// Voltage sensitivity, in 1/volt.
    pub k_per_volt: f64,
}

impl LatencyLaw {
    /// Builds a law passing through two `(voltage, latency)` anchor points.
    ///
    /// # Panics
    ///
    /// Panics if the anchors are degenerate (`v_fast <= v_slow`,
    /// non-positive latencies, or `t_fast >= t_slow`).
    pub fn calibrate(v_fast: f64, t_fast_ns: f64, v_slow: f64, t_slow_ns: f64) -> Self {
        assert!(
            v_fast > v_slow,
            "fast anchor must have the higher voltage ({v_fast} vs {v_slow})"
        );
        assert!(
            t_fast_ns > 0.0 && t_slow_ns > t_fast_ns,
            "latencies must be positive with t_fast < t_slow"
        );
        let k = (t_slow_ns / t_fast_ns).ln() / (v_fast - v_slow);
        let c = t_fast_ns * (k * v_fast).exp();
        Self {
            c_ns: c,
            k_per_volt: k,
        }
    }

    /// Latency in nanoseconds for a given voltage drop.
    pub fn latency_ns(&self, vd: f64) -> f64 {
        self.c_ns * (-self.k_per_volt * vd.abs()).exp()
    }

    /// Latency in integer picoseconds, rounded up (conservative).
    pub fn latency_ps(&self, vd: f64) -> u64 {
        (self.latency_ns(vd) * 1000.0).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_anchors() {
        let law = LatencyLaw::calibrate(2.9, 29.0, 1.6, 658.0);
        assert!((law.latency_ns(2.9) - 29.0).abs() < 1e-9);
        assert!((law.latency_ns(1.6) - 658.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_monotone_decreasing_in_voltage() {
        let law = LatencyLaw::calibrate(2.9, 29.0, 1.6, 658.0);
        let mut prev = f64::INFINITY;
        for i in 0..=29 {
            let v = 0.1 * i as f64;
            let t = law.latency_ns(v);
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn ten_x_per_0_4_volt_reference() {
        // Calibrating with the Govoreanu slope: 10× slow-down per 0.4 V.
        let k = 10.0f64.ln() / 0.4;
        let law = LatencyLaw {
            c_ns: 29.0,
            k_per_volt: k,
        };
        let ratio = law.latency_ns(1.0) / law.latency_ns(1.4);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn picosecond_rounding_is_conservative() {
        let law = LatencyLaw {
            c_ns: 1.0,
            k_per_volt: 0.0,
        };
        assert_eq!(law.latency_ps(1.0), 1000);
        let law2 = LatencyLaw {
            c_ns: 1.0001,
            k_per_volt: 0.0,
        };
        assert_eq!(law2.latency_ps(1.0), 1001); // 1.0001 ns rounds up to 1001 ps
    }

    #[test]
    #[should_panic(expected = "higher voltage")]
    fn degenerate_calibration_panics() {
        let _ = LatencyLaw::calibrate(1.0, 29.0, 2.0, 658.0);
    }
}
