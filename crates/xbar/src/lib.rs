//! Circuit-level model of crossbar ReRAM RESET timing.
//!
//! This crate is the physics substrate of the LADDER reproduction: it
//! answers the question *"how long does a RESET take, given where the
//! target cells sit and what the crossbar currently stores?"*
//!
//! The answer is assembled in three layers:
//!
//! 1. [`solve_reset`] — exact modified nodal analysis of the crossbar's
//!    resistive network (wire segments, drivers, cells with non-linear
//!    selectors), with three interchangeable linear solvers for
//!    cross-validation.
//! 2. [`analytic`] — a fast, conservative first-order IR-drop estimator
//!    used for bulk table generation.
//! 3. [`TimingTable`] — the quantized 8×8×8 lookup structure the memory
//!    controller consults at run time, plus the latency-law calibration
//!    shared across every scheme in a comparison.
//!
//! # Examples
//!
//! ```
//! use ladder_xbar::{TableConfig, TimingTable};
//!
//! let table = TimingTable::generate(&TableConfig::ladder_default())?;
//! // A write landing near the drivers into a sparse wordline is fast …
//! let fast = table.lookup_ps(10, 10, 0);
//! // … while the far corner of a dense wordline needs the full latency.
//! let slow = table.lookup_ps(511, 511, 512);
//! assert!(slow > 4 * fast);
//! # Ok::<(), ladder_xbar::MnaError>(())
//! ```

pub mod analytic;
mod latency;
mod mna;
mod params;
mod pattern;
mod solve;
mod table;

pub use latency::LatencyLaw;
pub use mna::{kirchhoff_residual, solve_reset, MnaError, ResetOp, Solution, SolverKind};
pub use params::CrossbarParams;
pub use pattern::{BitGrid, PatternSpec};
pub use solve::{csr, dense, tridiag};
pub use table::{
    calibrate_device_law, latency_vs_wl_content, worst_latency_for_selected, ContentAxis,
    TableConfig, TableSource, TimingTable,
};
