//! Modified nodal analysis (MNA) of the crossbar during a RESET operation.
//!
//! The crossbar is modelled as a resistive network with two node layers:
//! *top* nodes on the wordlines and *bottom* nodes on the bitlines, one pair
//! per cell. Wordline drivers connect at column 0 through `r_input`; bitline
//! drivers connect at row 0 through `r_output`. During a RESET the selected
//! wordline is grounded, the selected bitlines are driven at the write
//! voltage, and all other lines are held at the bias voltage (V/2 scheme).
//!
//! The selector non-linearity makes cell conductance voltage-dependent; the
//! solver wraps any of three interchangeable linear solvers in a fixed-point
//! loop that re-evaluates conductances until node voltages settle.

use crate::params::CrossbarParams;
use crate::pattern::BitGrid;
use crate::solve::{csr, dense, tridiag};
use std::error::Error;
use std::fmt;

/// Convergence tolerance (volts) for the nonlinear fixed-point loop.
const OUTER_TOL_V: f64 = 1e-4;
/// Maximum nonlinear iterations before giving up.
const OUTER_MAX_ITER: usize = 25;
/// Convergence tolerance (volts) for the inner line-relaxation sweeps.
const LINE_TOL_V: f64 = 1e-7;
/// Maximum line-relaxation sweeps per linear solve.
const LINE_MAX_SWEEPS: usize = 4000;
/// Relative tolerance for the conjugate-gradient solver.
const CG_REL_TOL: f64 = 1e-10;

/// One RESET operation: which wordline is grounded and which bitlines are
/// driven at the write voltage.
///
/// # Examples
///
/// ```
/// use ladder_xbar::ResetOp;
/// let op = ResetOp::new(3, vec![0, 8, 16]);
/// assert_eq!(op.target_wl, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetOp {
    /// Index of the wordline being written (0 = nearest the bitline driver).
    pub target_wl: usize,
    /// Columns of the fully-selected cells (0 = nearest the wordline driver).
    pub target_bls: Vec<usize>,
}

impl ResetOp {
    /// Creates a RESET op; duplicate bitlines are removed.
    pub fn new(target_wl: usize, mut target_bls: Vec<usize>) -> Self {
        target_bls.sort_unstable();
        target_bls.dedup();
        Self {
            target_wl,
            target_bls,
        }
    }
}

/// Linear solver used inside the nonlinear loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Dense LU with partial pivoting — `O(n³)`, for small mats and tests.
    DenseLu,
    /// Jacobi-preconditioned conjugate gradient on a CSR matrix.
    ConjugateGradient,
    /// Block Gauss–Seidel with exact tridiagonal line solves (fastest).
    LineRelaxation,
}

/// Error raised when the MNA solve cannot be completed.
#[derive(Debug, Clone, PartialEq)]
pub enum MnaError {
    /// A target coordinate was outside the mat.
    TargetOutOfBounds {
        /// Offending wordline or bitline index.
        index: usize,
        /// Matching bound that was exceeded.
        bound: usize,
    },
    /// Pattern dimensions disagree with the parameters.
    DimensionMismatch,
    /// The linear or nonlinear iteration failed to converge.
    NoConvergence {
        /// Last observed change in node voltage (volts).
        residual: f64,
    },
    /// The dense factorization hit a singular pivot.
    Singular,
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::TargetOutOfBounds { index, bound } => {
                write!(f, "target index {index} outside crossbar bound {bound}")
            }
            MnaError::DimensionMismatch => write!(f, "pattern does not match crossbar dimensions"),
            MnaError::NoConvergence { residual } => {
                write!(f, "solver did not converge (residual {residual:.3e} V)")
            }
            MnaError::Singular => write!(f, "singular conductance matrix"),
        }
    }
}

impl Error for MnaError {}

/// Voltages of every node after the nonlinear solve.
#[derive(Debug, Clone)]
pub struct Solution {
    rows: usize,
    cols: usize,
    /// Wordline-layer node voltages, row-major.
    pub v_top: Vec<f64>,
    /// Bitline-layer node voltages, row-major.
    pub v_bottom: Vec<f64>,
    /// Nonlinear iterations performed.
    pub nonlinear_iterations: usize,
    /// Voltage drop across each fully-selected cell, in RESET op order
    /// (bitline column, drop in volts).
    pub target_vd: Vec<(usize, f64)>,
}

impl Solution {
    /// Voltage of the wordline-layer node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn top(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "node out of bounds");
        self.v_top[row * self.cols + col]
    }

    /// Voltage of the bitline-layer node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn bottom(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "node out of bounds");
        self.v_bottom[row * self.cols + col]
    }

    /// Smallest voltage drop among the fully-selected cells — the drop that
    /// dictates the RESET latency of the whole operation.
    pub fn min_target_vd(&self) -> f64 {
        self.target_vd
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Line voltage sources applied during the RESET.
struct Drive {
    v_wl: Vec<f64>,
    v_bl: Vec<f64>,
}

fn drive_for(params: &CrossbarParams, op: &ResetOp) -> Drive {
    let mut v_wl = vec![params.bias_voltage; params.rows];
    let mut v_bl = vec![params.bias_voltage; params.cols];
    v_wl[op.target_wl] = 0.0;
    for &b in &op.target_bls {
        v_bl[b] = params.write_voltage;
    }
    Drive { v_wl, v_bl }
}

/// Solves the crossbar network for one RESET operation.
///
/// `grid` gives the resistive state of every cell. Returns the node voltages
/// and the voltage drop across each fully-selected cell.
///
/// # Errors
///
/// Returns [`MnaError::DimensionMismatch`] if `grid` does not match
/// `params`, [`MnaError::TargetOutOfBounds`] for bad target coordinates and
/// [`MnaError::NoConvergence`]/[`MnaError::Singular`] on numerical failure.
///
/// # Examples
///
/// ```
/// use ladder_xbar::{solve_reset, CrossbarParams, PatternSpec, ResetOp, SolverKind};
///
/// let params = CrossbarParams::with_size(16, 16);
/// let grid = PatternSpec::AllHrs.materialize(16, 16, 0, &[0]);
/// let op = ResetOp::new(0, vec![0]);
/// let sol = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation)?;
/// assert!(sol.min_target_vd() > 2.0); // near cell, no sneak: small IR drop
/// # Ok::<(), ladder_xbar::MnaError>(())
/// ```
pub fn solve_reset(
    params: &CrossbarParams,
    grid: &BitGrid,
    op: &ResetOp,
    solver: SolverKind,
) -> Result<Solution, MnaError> {
    let (rows, cols) = (params.rows, params.cols);
    if grid.rows() != rows || grid.cols() != cols {
        return Err(MnaError::DimensionMismatch);
    }
    if op.target_wl >= rows {
        return Err(MnaError::TargetOutOfBounds {
            index: op.target_wl,
            bound: rows,
        });
    }
    for &b in &op.target_bls {
        if b >= cols {
            return Err(MnaError::TargetOutOfBounds {
                index: b,
                bound: cols,
            });
        }
    }
    let drive = drive_for(params, op);

    // Initial guess: ideal line voltages without IR drop.
    let mut v_top = vec![0.0; rows * cols];
    let mut v_bottom = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            v_top[r * cols + c] = drive.v_wl[r];
            v_bottom[r * cols + c] = drive.v_bl[c];
        }
    }

    let mut gc = vec![0.0; rows * cols];
    let mut iterations = 0;
    let mut last_delta = f64::INFINITY;
    for it in 0..OUTER_MAX_ITER {
        iterations = it + 1;
        // Evaluate cell conductances at the current voltages; cells under
        // active RESET present the transition resistance.
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let v = (v_bottom[idx] - v_top[idx]).abs();
                gc[idx] = if r == op.target_wl && op.target_bls.contains(&c) {
                    1.0 / params.r_reset_transition
                } else {
                    1.0 / params.effective_resistance(grid.get(r, c), v)
                };
            }
        }
        let (new_top, new_bottom) = match solver {
            SolverKind::LineRelaxation => {
                solve_linear_relax(params, &drive, &gc, &v_top, &v_bottom)?
            }
            SolverKind::DenseLu => solve_linear_dense(params, &drive, &gc)?,
            SolverKind::ConjugateGradient => {
                solve_linear_cg(params, &drive, &gc, &v_top, &v_bottom)?
            }
        };
        last_delta = max_abs_delta(&v_top, &new_top).max(max_abs_delta(&v_bottom, &new_bottom));
        v_top = new_top;
        v_bottom = new_bottom;
        if last_delta < OUTER_TOL_V {
            break;
        }
    }
    if last_delta >= OUTER_TOL_V {
        return Err(MnaError::NoConvergence {
            residual: last_delta,
        });
    }

    let target_vd = op
        .target_bls
        .iter()
        .map(|&b| {
            let idx = op.target_wl * cols + b;
            (b, v_bottom[idx] - v_top[idx])
        })
        .collect();
    Ok(Solution {
        rows,
        cols,
        v_top,
        v_bottom,
        nonlinear_iterations: iterations,
        target_vd,
    })
}

fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Block Gauss–Seidel: exact tridiagonal solves per wordline, then per
/// bitline, sweeping until node voltages settle.
#[allow(clippy::needless_range_loop)] // index math mirrors the grid layout
fn solve_linear_relax(
    params: &CrossbarParams,
    drive: &Drive,
    gc: &[f64],
    v_top0: &[f64],
    v_bottom0: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), MnaError> {
    let (rows, cols) = (params.rows, params.cols);
    let gw = 1.0 / params.r_wire;
    let gin = 1.0 / params.r_input;
    let gout = 1.0 / params.r_output;
    let mut v_top = v_top0.to_vec();
    let mut v_bottom = v_bottom0.to_vec();
    let n_line = rows.max(cols);
    let mut lower = vec![0.0; n_line];
    let mut diag = vec![0.0; n_line];
    let mut upper = vec![0.0; n_line];
    let mut rhs = vec![0.0; n_line];
    let mut scratch = vec![0.0; n_line];
    let mut x = vec![0.0; n_line];

    for _sweep in 0..LINE_MAX_SWEEPS {
        let mut delta: f64 = 0.0;
        // Wordline solves: unknowns are top nodes of one row.
        for r in 0..rows {
            for c in 0..cols {
                let g_cell = gc[r * cols + c];
                let mut d = g_cell;
                let mut rh = g_cell * v_bottom[r * cols + c];
                if c == 0 {
                    d += gin;
                    rh += gin * drive.v_wl[r];
                    lower[c] = 0.0;
                } else {
                    d += gw;
                    lower[c] = -gw;
                }
                if c + 1 < cols {
                    d += gw;
                    upper[c] = -gw;
                } else {
                    upper[c] = 0.0;
                }
                diag[c] = d;
                rhs[c] = rh;
            }
            tridiag::solve_into(
                &lower[..cols],
                &diag[..cols],
                &upper[..cols],
                &mut rhs[..cols],
                &mut scratch[..cols],
                &mut x[..cols],
            );
            for c in 0..cols {
                let idx = r * cols + c;
                delta = delta.max((v_top[idx] - x[c]).abs());
                v_top[idx] = x[c];
            }
        }
        // Bitline solves: unknowns are bottom nodes of one column.
        for c in 0..cols {
            for r in 0..rows {
                let g_cell = gc[r * cols + c];
                let mut d = g_cell;
                let mut rh = g_cell * v_top[r * cols + c];
                if r == 0 {
                    d += gout;
                    rh += gout * drive.v_bl[c];
                    lower[r] = 0.0;
                } else {
                    d += gw;
                    lower[r] = -gw;
                }
                if r + 1 < rows {
                    d += gw;
                    upper[r] = -gw;
                } else {
                    upper[r] = 0.0;
                }
                diag[r] = d;
                rhs[r] = rh;
            }
            tridiag::solve_into(
                &lower[..rows],
                &diag[..rows],
                &upper[..rows],
                &mut rhs[..rows],
                &mut scratch[..rows],
                &mut x[..rows],
            );
            for r in 0..rows {
                let idx = r * cols + c;
                delta = delta.max((v_bottom[idx] - x[r]).abs());
                v_bottom[idx] = x[r];
            }
        }
        if delta < LINE_TOL_V {
            return Ok((v_top, v_bottom));
        }
    }
    Err(MnaError::NoConvergence {
        residual: LINE_TOL_V,
    })
}

/// Node numbering for the monolithic (dense/CSR) formulations: top nodes
/// first (`r·cols + c`), then bottom nodes offset by `rows·cols`.
fn assemble_csr(params: &CrossbarParams, drive: &Drive, gc: &[f64]) -> (csr::Csr, Vec<f64>) {
    let (rows, cols) = (params.rows, params.cols);
    let n = 2 * rows * cols;
    let off = rows * cols;
    let gw = 1.0 / params.r_wire;
    let gin = 1.0 / params.r_input;
    let gout = 1.0 / params.r_output;
    let mut b = csr::CsrBuilder::new(n);
    let mut rhs = vec![0.0; n];
    for r in 0..rows {
        for c in 0..cols {
            let t = r * cols + c;
            let bot = off + t;
            // Cell between the two layers.
            let g = gc[t];
            b.add(t, t, g);
            b.add(bot, bot, g);
            b.add(t, bot, -g);
            b.add(bot, t, -g);
            // Wordline wire / driver.
            if c == 0 {
                b.add(t, t, gin);
                rhs[t] += gin * drive.v_wl[r];
            } else {
                let left = r * cols + (c - 1);
                b.add(t, t, gw);
                b.add(left, left, gw);
                b.add(t, left, -gw);
                b.add(left, t, -gw);
            }
            // Bitline wire / driver.
            if r == 0 {
                b.add(bot, bot, gout);
                rhs[bot] += gout * drive.v_bl[c];
            } else {
                let up = off + (r - 1) * cols + c;
                b.add(bot, bot, gw);
                b.add(up, up, gw);
                b.add(bot, up, -gw);
                b.add(up, bot, -gw);
            }
        }
    }
    (b.build(), rhs)
}

fn split_solution(params: &CrossbarParams, x: Vec<f64>) -> (Vec<f64>, Vec<f64>) {
    let off = params.rows * params.cols;
    let v_bottom = x[off..].to_vec();
    let mut v_top = x;
    v_top.truncate(off);
    (v_top, v_bottom)
}

fn solve_linear_dense(
    params: &CrossbarParams,
    drive: &Drive,
    gc: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), MnaError> {
    let (a, rhs) = assemble_csr(params, drive, gc);
    let n = a.n();
    let mut dense_a = vec![0.0; n * n];
    // Expand CSR to dense via matvecs against unit vectors would be O(n²·nnz);
    // instead rebuild densely from the same stamps.
    let (rows, cols) = (params.rows, params.cols);
    let off = rows * cols;
    let gw = 1.0 / params.r_wire;
    let gin = 1.0 / params.r_input;
    let gout = 1.0 / params.r_output;
    let mut add = |r: usize, c: usize, v: f64| dense_a[r * n + c] += v;
    for r in 0..rows {
        for c in 0..cols {
            let t = r * cols + c;
            let bot = off + t;
            let g = gc[t];
            add(t, t, g);
            add(bot, bot, g);
            add(t, bot, -g);
            add(bot, t, -g);
            if c == 0 {
                add(t, t, gin);
            } else {
                let left = r * cols + (c - 1);
                add(t, t, gw);
                add(left, left, gw);
                add(t, left, -gw);
                add(left, t, -gw);
            }
            if r == 0 {
                add(bot, bot, gout);
            } else {
                let up = off + (r - 1) * cols + c;
                add(bot, bot, gw);
                add(up, up, gw);
                add(bot, up, -gw);
                add(up, bot, -gw);
            }
        }
    }
    let x = dense::lu_solve(dense_a, rhs).map_err(|_| MnaError::Singular)?;
    Ok(split_solution(params, x))
}

fn solve_linear_cg(
    params: &CrossbarParams,
    drive: &Drive,
    gc: &[f64],
    v_top0: &[f64],
    v_bottom0: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), MnaError> {
    let (a, rhs) = assemble_csr(params, drive, gc);
    let mut x: Vec<f64> = v_top0.iter().chain(v_bottom0.iter()).copied().collect();
    let stats = csr::cg_solve(&a, &rhs, &mut x, CG_REL_TOL, 50_000);
    if !stats.converged {
        return Err(MnaError::NoConvergence {
            residual: stats.relative_residual,
        });
    }
    Ok(split_solution(params, x))
}

/// Largest Kirchhoff current-law violation (amps) over all nodes, for a
/// given solution and the conductances implied by its node voltages.
///
/// Used by tests to check solver self-consistency.
///
/// # Panics
///
/// Panics if the solution dimensions disagree with `params`/`grid`.
pub fn kirchhoff_residual(
    params: &CrossbarParams,
    grid: &BitGrid,
    op: &ResetOp,
    sol: &Solution,
) -> f64 {
    let (rows, cols) = (params.rows, params.cols);
    assert!(
        sol.v_top.len() == rows * cols,
        "solution dimension mismatch"
    );
    let drive = drive_for(params, op);
    let gw = 1.0 / params.r_wire;
    let gin = 1.0 / params.r_input;
    let gout = 1.0 / params.r_output;
    let mut worst: f64 = 0.0;
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let vt = sol.v_top[idx];
            let vb = sol.v_bottom[idx];
            let v_cell = (vb - vt).abs();
            let g = if r == op.target_wl && op.target_bls.contains(&c) {
                1.0 / params.r_reset_transition
            } else {
                1.0 / params.effective_resistance(grid.get(r, c), v_cell)
            };
            // Top node balance.
            let mut i_top = g * (vb - vt);
            i_top += if c == 0 {
                gin * (drive.v_wl[r] - vt)
            } else {
                gw * (sol.v_top[idx - 1] - vt)
            };
            if c + 1 < cols {
                i_top += gw * (sol.v_top[idx + 1] - vt);
            }
            worst = worst.max(i_top.abs());
            // Bottom node balance.
            let mut i_bot = g * (vt - vb);
            i_bot += if r == 0 {
                gout * (drive.v_bl[c] - vb)
            } else {
                gw * (sol.v_bottom[idx - cols] - vb)
            };
            if r + 1 < rows {
                i_bot += gw * (sol.v_bottom[idx + cols] - vb);
            }
            worst = worst.max(i_bot.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSpec;

    fn small_params(n: usize) -> CrossbarParams {
        CrossbarParams::with_size(n, n)
    }

    #[test]
    fn solvers_agree_on_small_crossbar() {
        let n = 8;
        let params = small_params(n);
        let grid = PatternSpec::WorstCaseWl { wl_ones: 5 }.materialize(n, n, 3, &[2, 6]);
        let op = ResetOp::new(3, vec![2, 6]);
        let a = solve_reset(&params, &grid, &op, SolverKind::DenseLu).expect("dense");
        let b = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation).expect("relax");
        let c = solve_reset(&params, &grid, &op, SolverKind::ConjugateGradient).expect("cg");
        for ((&(ca, va), &(cb, vb)), &(cc, vc)) in
            a.target_vd.iter().zip(&b.target_vd).zip(&c.target_vd)
        {
            assert_eq!(ca, cb);
            assert_eq!(ca, cc);
            assert!((va - vb).abs() < 1e-3, "dense {va} vs relax {vb}");
            assert!((va - vc).abs() < 1e-3, "dense {va} vs cg {vc}");
        }
    }

    #[test]
    fn target_vd_below_write_voltage_and_positive() {
        let n = 16;
        let params = small_params(n);
        let grid = PatternSpec::AllLrs.materialize(n, n, n - 1, &[n - 1]);
        let op = ResetOp::new(n - 1, vec![n - 1]);
        let sol = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation).expect("solve");
        let vd = sol.min_target_vd();
        assert!(vd > 0.0 && vd < params.write_voltage);
    }

    #[test]
    fn more_lrs_content_lowers_target_voltage() {
        let n = 32;
        let params = small_params(n);
        let op = ResetOp::new(n - 1, vec![n - 1]);
        let mut prev = f64::INFINITY;
        for ones in [0usize, 8, 16, 24, 31] {
            let grid =
                PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(n, n, n - 1, &[n - 1]);
            let sol = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation).expect("solve");
            let vd = sol.min_target_vd();
            assert!(
                vd <= prev + 1e-9,
                "voltage must not rise with more LRS cells ({ones} ones: {vd} vs {prev})"
            );
            prev = vd;
        }
    }

    #[test]
    fn farther_cells_see_lower_voltage() {
        let n = 32;
        let params = small_params(n);
        let near_grid = PatternSpec::AllHrs.materialize(n, n, 0, &[0]);
        let near = solve_reset(
            &params,
            &near_grid,
            &ResetOp::new(0, vec![0]),
            SolverKind::LineRelaxation,
        )
        .expect("near");
        let far_grid = PatternSpec::AllHrs.materialize(n, n, n - 1, &[n - 1]);
        let far = solve_reset(
            &params,
            &far_grid,
            &ResetOp::new(n - 1, vec![n - 1]),
            SolverKind::LineRelaxation,
        )
        .expect("far");
        assert!(far.min_target_vd() < near.min_target_vd());
    }

    #[test]
    fn kirchhoff_residual_is_small() {
        let n = 12;
        let params = small_params(n);
        let grid = PatternSpec::WorstCaseBl { bl_ones: 7 }.materialize(n, n, 5, &[1, 9]);
        let op = ResetOp::new(5, vec![1, 9]);
        let sol = solve_reset(&params, &grid, &op, SolverKind::DenseLu).expect("solve");
        // Residual currents should be tiny relative to the ~0.3 mA cell
        // currents flowing in the network.
        assert!(kirchhoff_residual(&params, &grid, &op, &sol) < 1e-6);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let params = small_params(8);
        let grid = BitGrid::new(4, 4);
        let op = ResetOp::new(0, vec![0]);
        assert!(matches!(
            solve_reset(&params, &grid, &op, SolverKind::DenseLu),
            Err(MnaError::DimensionMismatch)
        ));
    }

    #[test]
    fn out_of_bounds_target_is_reported() {
        let params = small_params(4);
        let grid = BitGrid::new(4, 4);
        let op = ResetOp::new(9, vec![0]);
        assert!(matches!(
            solve_reset(&params, &grid, &op, SolverKind::DenseLu),
            Err(MnaError::TargetOutOfBounds { index: 9, bound: 4 })
        ));
    }

    #[test]
    fn reset_op_dedups_bitlines() {
        let op = ResetOp::new(0, vec![3, 1, 3, 1]);
        assert_eq!(op.target_bls, vec![1, 3]);
    }

    #[test]
    fn multi_bit_reset_reports_all_targets() {
        let n = 16;
        let params = small_params(n);
        let bls: Vec<usize> = (0..8).map(|i| i * 2).collect();
        let grid = PatternSpec::AllHrs.materialize(n, n, 2, &bls);
        let op = ResetOp::new(2, bls.clone());
        let sol = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation).expect("solve");
        assert_eq!(sol.target_vd.len(), 8);
        // Farther bitline columns see (weakly) lower voltage.
        for w in sol.target_vd.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
    }
}
