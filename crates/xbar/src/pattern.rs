//! Cell-state patterns stored in a crossbar mat.
//!
//! A [`BitGrid`] holds one bit per cell (`true` = LRS = logical `1`,
//! `false` = HRS = logical `0`). Pattern constructors produce the synthetic
//! worst-case layouts used to generate conservative timing tables.

/// Dense bit matrix describing the resistive state of every cell in a mat.
///
/// Bit `true` means the cell is in the low-resistance state (LRS, logical
/// `1`); `false` means high-resistance state (HRS, logical `0`).
///
/// # Examples
///
/// ```
/// use ladder_xbar::BitGrid;
///
/// let mut g = BitGrid::new(4, 4);
/// g.set(1, 2, true);
/// assert!(g.get(1, 2));
/// assert_eq!(g.row_ones(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitGrid {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitGrid {
    /// Creates an all-HRS (all-zero) grid of `rows × cols` cells.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the state of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.check(row, col);
        let w = self.bits[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    /// Sets the state of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, lrs: bool) {
        self.check(row, col);
        let w = &mut self.bits[row * self.words_per_row + col / 64];
        if lrs {
            *w |= 1 << (col % 64);
        } else {
            *w &= !(1 << (col % 64));
        }
    }

    /// Number of LRS cells along wordline `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_ones(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        let base = row * self.words_per_row;
        self.bits[base..base + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of LRS cells along bitline `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn col_ones(&self, col: usize) -> usize {
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        (0..self.rows).filter(|&r| self.get(r, col)).count()
    }

    /// Total number of LRS cells in the grid.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn check(&self, row: usize, col: usize) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) out of bounds for {}x{} grid",
            self.rows,
            self.cols
        );
    }
}

/// Synthetic mat patterns used when generating conservative timing tables.
///
/// The worst-case constructors place LRS cells where they maximize the IR
/// drop seen by a RESET target: half-selected LRS cells whose sneak current
/// shares the longest wire path with the target draw down the target's
/// voltage the most.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// Every cell in HRS (no content-induced sneak current).
    AllHrs,
    /// Every cell in LRS (maximum sneak current everywhere).
    AllLrs,
    /// The selected wordline holds `wl_ones` LRS cells placed at the far end
    /// of the wordline (worst case for the target), and every cell on the
    /// selected bitlines is LRS (the worst-case bitline assumption LADDER
    /// makes when only wordline counters are maintained).
    WorstCaseWl {
        /// LRS population of the selected wordline.
        wl_ones: usize,
    },
    /// Every selected bitline holds `bl_ones` LRS cells placed at the far
    /// end, and the selected wordline is entirely LRS (the worst-case
    /// wordline assumption the BLP baseline makes).
    WorstCaseBl {
        /// LRS population of each selected bitline.
        bl_ones: usize,
    },
}

impl PatternSpec {
    /// Materializes the pattern for a mat of the given dimensions with a
    /// RESET targeting wordline `target_wl` and the bitlines in `target_bls`.
    ///
    /// Wordline index 0 is the row **nearest** the bitline drivers; column
    /// index 0 is the cell **nearest** the wordline driver. "Far end" in the
    /// variant docs means high indices.
    ///
    /// # Panics
    ///
    /// Panics if the target coordinates are out of bounds or if a requested
    /// LRS population exceeds the line length.
    pub fn materialize(
        self,
        rows: usize,
        cols: usize,
        target_wl: usize,
        target_bls: &[usize],
    ) -> BitGrid {
        assert!(target_wl < rows, "target wordline out of bounds");
        for &b in target_bls {
            assert!(b < cols, "target bitline {b} out of bounds");
        }
        let mut g = BitGrid::new(rows, cols);
        match self {
            PatternSpec::AllHrs => {}
            PatternSpec::AllLrs => {
                for r in 0..rows {
                    for c in 0..cols {
                        g.set(r, c, true);
                    }
                }
            }
            PatternSpec::WorstCaseWl { wl_ones } => {
                assert!(wl_ones <= cols, "wordline LRS count exceeds width");
                // LRS cells at the far (high-index) end of the selected
                // wordline: their sneak current traverses every wordline
                // segment between the driver and any target column.
                for c in (cols - wl_ones)..cols {
                    g.set(target_wl, c, true);
                }
                for &b in target_bls {
                    for r in 0..rows {
                        g.set(r, b, true);
                    }
                }
            }
            PatternSpec::WorstCaseBl { bl_ones } => {
                assert!(bl_ones <= rows, "bitline LRS count exceeds height");
                for c in 0..cols {
                    g.set(target_wl, c, true);
                }
                for &b in target_bls {
                    for r in (rows - bl_ones)..rows {
                        g.set(r, b, true);
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut g = BitGrid::new(10, 130);
        assert!(!g.get(9, 129));
        g.set(9, 129, true);
        assert!(g.get(9, 129));
        g.set(9, 129, false);
        assert!(!g.get(9, 129));
    }

    #[test]
    fn row_and_col_counts() {
        let mut g = BitGrid::new(8, 8);
        for c in 0..5 {
            g.set(3, c, true);
        }
        for r in 0..4 {
            g.set(r, 7, true);
        }
        // Row 3 holds columns 0..5 plus the (3, 7) cell from the column run.
        assert_eq!(g.row_ones(3), 6);
        assert_eq!(g.col_ones(7), 4);
        assert_eq!(g.ones(), 9);
        assert_eq!(g.row_ones(0), 1);
    }

    #[test]
    fn worst_case_wl_places_far_end() {
        let g = PatternSpec::WorstCaseWl { wl_ones: 3 }.materialize(8, 8, 2, &[1]);
        // 3 far-end cells on wordline 2 plus the selected bitline overlap.
        assert!(g.get(2, 7) && g.get(2, 6) && g.get(2, 5));
        assert!(!g.get(2, 4));
        // Selected bitline fully LRS.
        for r in 0..8 {
            assert!(g.get(r, 1));
        }
    }

    #[test]
    fn worst_case_bl_fills_selected_wordline() {
        let g = PatternSpec::WorstCaseBl { bl_ones: 4 }.materialize(8, 8, 0, &[3]);
        for c in 0..8 {
            assert!(g.get(0, c));
        }
        assert!(g.get(7, 3) && g.get(4, 3));
        assert!(!g.get(1, 3) || 1 >= 8 - 4);
    }

    #[test]
    fn all_patterns_have_expected_population() {
        assert_eq!(PatternSpec::AllHrs.materialize(4, 4, 0, &[0]).ones(), 0);
        assert_eq!(PatternSpec::AllLrs.materialize(4, 4, 0, &[0]).ones(), 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_target_panics() {
        let _ = PatternSpec::AllHrs.materialize(4, 4, 4, &[0]);
    }
}
