//! Write timing tables: the `⟨WL, BL, C_lrs⟩ → latency` lookup structure
//! held by the memory controller.
//!
//! A full-resolution table for a 512×512 mat would need 512³ entries; the
//! paper (Section 5) quantizes each dimension with granularity 64, giving an
//! 8×8×8 table organized as 8 sub-tables of 8×8 that fit in a 512 B on-chip
//! buffer. Every entry is generated at the *worst* operating point of its
//! band, so quantization only ever rounds latency up (safe direction).
//!
//! Two content axes exist: [`ContentAxis::Wordline`] is LADDER's table
//! (wordline content known, bitline content assumed worst-case) and
//! [`ContentAxis::Bitline`] is the BLP baseline's table (the dual).

use crate::analytic::{estimate_vd, OperatingPoint};
use crate::latency::LatencyLaw;
use crate::mna::{solve_reset, MnaError, ResetOp, SolverKind};
use crate::params::CrossbarParams;
use crate::pattern::PatternSpec;

/// Which line's LRS population forms the content dimension of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentAxis {
    /// Content dimension = LRS count of the selected wordline (LADDER).
    Wordline,
    /// Content dimension = LRS count of the selected bitlines (BLP).
    Bitline,
}

/// How table entries are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableSource {
    /// Fast conservative analytic IR-drop estimate (default).
    Analytic,
    /// Full modified-nodal-analysis solve per entry (slow, exact).
    Mna(SolverKind),
}

/// Configuration for [`TimingTable::generate`].
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Crossbar electrical/geometric parameters.
    pub params: CrossbarParams,
    /// Bands per dimension (8 in the paper).
    pub bands: usize,
    /// Content dimension semantics.
    pub content_axis: ContentAxis,
    /// Entry computation back-end.
    pub source: TableSource,
    /// Device latency law shared by every scheme under comparison.
    pub law: LatencyLaw,
}

impl TableConfig {
    /// LADDER's default configuration: 8 bands, wordline content axis,
    /// analytic source, and a law calibrated to the paper's 29–658 ns range.
    pub fn ladder_default() -> Self {
        let params = CrossbarParams::default();
        let law = calibrate_device_law(&params, 29.0, 658.0);
        Self {
            params,
            bands: 8,
            content_axis: ContentAxis::Wordline,
            source: TableSource::Analytic,
            law,
        }
    }
}

/// Calibrates the device latency law so that the best-case RESET (near
/// corner, all-HRS mat) takes `t_fast_ns` and the worst-case RESET (far
/// corner, all-LRS mat) takes `t_slow_ns`.
///
/// Both anchor voltages are computed with the analytic estimator; the same
/// law must be shared by every timing table used in one comparison so that
/// all schemes model the same physical device.
///
/// # Panics
///
/// Panics if the parameters yield a degenerate voltage range.
pub fn calibrate_device_law(params: &CrossbarParams, t_fast_ns: f64, t_slow_ns: f64) -> LatencyLaw {
    let sel = params.selected_cells;
    let near_bls: Vec<usize> = (0..sel).collect();
    let far_bls: Vec<usize> = (params.cols - sel..params.cols).collect();
    let v_fast = estimate_vd(
        params,
        &OperatingPoint {
            target_wl: 0,
            target_bls: near_bls,
            wl_ones: 0,
            bl_ones: 0,
        },
    )
    .iter()
    .map(|&(_, v)| v)
    .fold(f64::INFINITY, f64::min);
    let v_slow = estimate_vd(
        params,
        &OperatingPoint {
            target_wl: params.rows - 1,
            target_bls: far_bls,
            wl_ones: params.cols,
            bl_ones: params.rows,
        },
    )
    .iter()
    .map(|&(_, v)| v)
    .fold(f64::INFINITY, f64::min);
    LatencyLaw::calibrate(v_fast, t_fast_ns, v_slow, t_slow_ns)
}

/// Quantized write timing table.
///
/// # Examples
///
/// ```
/// use ladder_xbar::{TableConfig, TimingTable};
///
/// let table = TimingTable::generate(&TableConfig::ladder_default())?;
/// // Near corner with clean content is fast; far corner with dense content
/// // requires the full worst-case latency.
/// assert!(table.lookup_ps(0, 7, 0) < table.lookup_ps(511, 511, 512));
/// assert_eq!(table.lookup_ps(511, 511, 512), table.worst_ps());
/// # Ok::<(), ladder_xbar::MnaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingTable {
    bands: usize,
    rows: usize,
    cols: usize,
    content_axis: ContentAxis,
    law: LatencyLaw,
    /// Entries indexed `[c_band][wl_band][bl_band]`, picoseconds — one flat
    /// allocation walked with row-major index arithmetic.
    entries: Vec<u32>,
    /// Precomputed band of every wordline index (`wl_lut[wl] = wl·bands/rows`).
    wl_lut: Vec<u16>,
    /// Precomputed band of every bitline index.
    bl_lut: Vec<u16>,
    /// Precomputed band of every clamped content count `0..=content_len`.
    c_lut: Vec<u16>,
}

impl TimingTable {
    /// Generates the table per `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates [`MnaError`] when the MNA source fails to converge; the
    /// analytic source is infallible.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.bands` is zero or exceeds the mat dimensions.
    pub fn generate(cfg: &TableConfig) -> Result<Self, MnaError> {
        let p = &cfg.params;
        let bands = cfg.bands;
        assert!(
            bands > 0 && bands <= p.rows && bands <= p.cols,
            "band count must be in 1..=min(rows, cols)"
        );
        let mut entries = vec![0u32; bands * bands * bands];
        let points: Vec<(usize, usize, usize)> = (0..bands)
            .flat_map(|c| (0..bands).flat_map(move |w| (0..bands).map(move |b| (c, w, b))))
            .collect();
        let vd_of = |&(c_band, wl_band, bl_band): &(usize, usize, usize)| -> Result<f64, MnaError> {
            let target_wl = (wl_band + 1) * p.rows / bands - 1;
            // The write's byte occupies `selected_cells` adjacent columns
            // ending at the worst column of the bitline band.
            let last_col = (bl_band + 1) * p.cols / bands - 1;
            let first_col = (last_col + 1).saturating_sub(p.selected_cells);
            let target_bls: Vec<usize> = (first_col..=last_col).collect();
            let (wl_ones, bl_ones) = match cfg.content_axis {
                ContentAxis::Wordline => ((c_band + 1) * p.cols / bands, p.rows),
                ContentAxis::Bitline => (p.cols, (c_band + 1) * p.rows / bands),
            };
            match cfg.source {
                TableSource::Analytic => {
                    let op = OperatingPoint {
                        target_wl,
                        target_bls,
                        wl_ones,
                        bl_ones,
                    };
                    Ok(estimate_vd(p, &op)
                        .iter()
                        .map(|&(_, v)| v)
                        .fold(f64::INFINITY, f64::min))
                }
                TableSource::Mna(kind) => {
                    let spec = match cfg.content_axis {
                        ContentAxis::Wordline => PatternSpec::WorstCaseWl { wl_ones },
                        ContentAxis::Bitline => PatternSpec::WorstCaseBl { bl_ones },
                    };
                    let grid = spec.materialize(p.rows, p.cols, target_wl, &target_bls);
                    let sol = solve_reset(p, &grid, &ResetOp::new(target_wl, target_bls), kind)?;
                    Ok(sol.min_target_vd())
                }
            }
        };
        let vds: Result<Vec<f64>, MnaError> = match cfg.source {
            TableSource::Analytic => points.iter().map(vd_of).collect(),
            TableSource::Mna(_) => {
                // MNA solves are independent and expensive: fan out.
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(points.len());
                let chunk = points.len().div_ceil(threads);
                std::thread::scope(|s| {
                    let handles: Vec<_> = points
                        .chunks(chunk)
                        .map(|pts| {
                            s.spawn(move || pts.iter().map(vd_of).collect::<Result<Vec<_>, _>>())
                        })
                        .collect();
                    let mut all = Vec::with_capacity(points.len());
                    for h in handles {
                        // lint: allow(panic-policy) — worker panics are bugs worth propagating; join() only fails on panic
                        all.extend(h.join().expect("table worker panicked")?);
                    }
                    Ok(all)
                })
            }
        };
        let vds = vds?;
        for (slot, vd) in entries.iter_mut().zip(&vds) {
            *slot = cfg.law.latency_ps(*vd) as u32;
        }
        Ok(Self::assemble(
            bands,
            p.rows,
            p.cols,
            cfg.content_axis,
            cfg.law,
            entries,
        ))
    }

    /// Builds a table around `entries`, precomputing the per-dimension band
    /// lookup tables so `lookup_ps` needs no integer divisions.
    fn assemble(
        bands: usize,
        rows: usize,
        cols: usize,
        content_axis: ContentAxis,
        law: LatencyLaw,
        entries: Vec<u32>,
    ) -> Self {
        let content_len = match content_axis {
            ContentAxis::Wordline => cols,
            ContentAxis::Bitline => rows,
        };
        let wl_lut = (0..rows).map(|wl| (wl * bands / rows) as u16).collect();
        let bl_lut = (0..cols).map(|bl| (bl * bands / cols) as u16).collect();
        let c_lut = (0..=content_len)
            .map(|c| {
                if c == 0 {
                    0
                } else {
                    (((c - 1) * bands / content_len).min(bands - 1)) as u16
                }
            })
            .collect();
        Self {
            bands,
            rows,
            cols,
            content_axis,
            law,
            entries,
            wl_lut,
            bl_lut,
            c_lut,
        }
    }

    /// Bands per dimension.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Content axis of this table.
    pub fn content_axis(&self) -> ContentAxis {
        self.content_axis
    }

    /// Latency law the entries were derived from.
    pub fn law(&self) -> LatencyLaw {
        self.law
    }

    /// Looks up the RESET latency in picoseconds.
    ///
    /// `wl` is the wordline index (0 = nearest the bitline driver), `bl` is
    /// the worst (highest) column the write touches, and `c_lrs` is the LRS
    /// count along the content axis. `c_lrs` saturates at the line length;
    /// this makes the "assume worst-case content" policy a plain
    /// `lookup_ps(wl, bl, usize::MAX)`.
    ///
    /// This is the hot path of every simulated write: three precomputed
    /// band-LUT reads and one flat row-major index — no divisions. It is
    /// bit-identical to [`TimingTable::lookup_ps_reference`], the legacy
    /// nested-division formulation kept as the reference implementation.
    ///
    /// # Panics
    ///
    /// Panics if `wl` or `bl` is out of bounds.
    #[inline]
    pub fn lookup_ps(&self, wl: usize, bl: usize, c_lrs: usize) -> u64 {
        assert!(wl < self.rows, "wordline {wl} out of bounds");
        assert!(bl < self.cols, "bitline {bl} out of bounds");
        let c = c_lrs.min(self.c_lut.len() - 1);
        let c_band = self.c_lut[c] as usize;
        let wl_band = self.wl_lut[wl] as usize;
        let bl_band = self.bl_lut[bl] as usize;
        self.entries[(c_band * self.bands + wl_band) * self.bands + bl_band] as u64
    }

    /// Reference implementation of [`TimingTable::lookup_ps`]: the original
    /// per-call band arithmetic (three integer divisions). Kept so property
    /// tests and the `hotloop` bench can prove the quantized fast path
    /// returns bit-identical latencies for every `⟨WL, BL, C_lrs⟩` cell.
    ///
    /// # Panics
    ///
    /// Panics if `wl` or `bl` is out of bounds.
    pub fn lookup_ps_reference(&self, wl: usize, bl: usize, c_lrs: usize) -> u64 {
        assert!(wl < self.rows, "wordline {wl} out of bounds");
        assert!(bl < self.cols, "bitline {bl} out of bounds");
        let content_len = match self.content_axis {
            ContentAxis::Wordline => self.cols,
            ContentAxis::Bitline => self.rows,
        };
        let c = c_lrs.min(content_len);
        let c_band = if c == 0 {
            0
        } else {
            ((c - 1) * self.bands / content_len).min(self.bands - 1)
        };
        let wl_band = wl * self.bands / self.rows;
        let bl_band = bl * self.bands / self.cols;
        self.entry(c_band, wl_band, bl_band) as u64
    }

    /// Raw entry access by band coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any band index is out of range.
    pub fn entry(&self, c_band: usize, wl_band: usize, bl_band: usize) -> u32 {
        assert!(
            c_band < self.bands && wl_band < self.bands && bl_band < self.bands,
            "band index out of range"
        );
        self.entries[(c_band * self.bands + wl_band) * self.bands + bl_band]
    }

    /// One 8×8 sub-table (fixed content band), row-major `[wl][bl]`.
    ///
    /// # Panics
    ///
    /// Panics if `c_band` is out of range.
    pub fn sub_table(&self, c_band: usize) -> &[u32] {
        assert!(c_band < self.bands, "content band out of range");
        let stride = self.bands * self.bands;
        &self.entries[c_band * stride..(c_band + 1) * stride]
    }

    /// Worst (largest) latency in the table — the fixed latency a
    /// pessimistic baseline scheme must always use.
    pub fn worst_ps(&self) -> u64 {
        // lint: allow(panic-policy) — invariant: a generated table always has >= 1 entry (content axis is never empty)
        *self.entries.iter().max().expect("table nonempty") as u64
    }

    /// Best (smallest) latency in the table.
    pub fn best_ps(&self) -> u64 {
        // lint: allow(panic-policy) — invariant: a generated table always has >= 1 entry (content axis is never empty)
        *self.entries.iter().min().expect("table nonempty") as u64
    }

    /// Serializes to the on-chip ROM image: one byte per entry (512 B for
    /// the default 8×8×8 table), quantized with ceiling rounding at scale
    /// [`TimingTable::rom_scale_ps`].
    pub fn to_rom_bytes(&self) -> Vec<u8> {
        let scale = self.rom_scale_ps();
        self.entries
            .iter()
            .map(|&e| (e as u64).div_ceil(scale).min(255) as u8)
            .collect()
    }

    /// Picoseconds represented by one ROM quantization step.
    pub fn rom_scale_ps(&self) -> u64 {
        self.worst_ps().div_ceil(255).max(1)
    }

    /// Reconstructs a table from a ROM image produced by
    /// [`TimingTable::to_rom_bytes`]. Latencies are recovered at ROM
    /// precision (conservatively rounded up).
    ///
    /// # Panics
    ///
    /// Panics if the image length is not `bands³` for the given geometry.
    pub fn from_rom_bytes(
        bytes: &[u8],
        bands: usize,
        rows: usize,
        cols: usize,
        content_axis: ContentAxis,
        law: LatencyLaw,
        scale_ps: u64,
    ) -> Self {
        assert_eq!(
            bytes.len(),
            bands * bands * bands,
            "ROM image size mismatch"
        );
        Self::assemble(
            bands,
            rows,
            cols,
            content_axis,
            law,
            bytes
                .iter()
                .map(|&b| (b as u64 * scale_ps) as u32)
                .collect(),
        )
    }

    /// Compresses the table's dynamic range by `factor`, keeping the best
    /// latency fixed: `t' = t_best + (t − t_best)/factor`.
    ///
    /// Models devices with lower process variation (paper Section 7 studies
    /// `factor = 2`): a tighter latency distribution means a *lower worst
    /// case*, which also speeds up the fixed-latency baseline.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn shrink_dynamic_range(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "shrink factor must be >= 1");
        let best = self.best_ps() as f64;
        let mut out = self.clone();
        for e in &mut out.entries {
            let t = *e as f64;
            *e = (best + (t - best) / factor).ceil() as u32;
        }
        out
    }
}

/// Worst-case RESET latency (ps) when only `n_cells` cells are selected in
/// one mat — the half-RESET latency used by the Split-reset baseline.
///
/// Fewer selected cells draw less aggregate current, so the IR drop is
/// smaller and the worst-case latency materially shorter than the full
/// 8-cell RESET.
///
/// # Panics
///
/// Panics if `n_cells` is zero or exceeds the mat width.
pub fn worst_latency_for_selected(params: &CrossbarParams, law: LatencyLaw, n_cells: usize) -> u64 {
    assert!(
        n_cells > 0 && n_cells <= params.cols,
        "selected cell count out of range"
    );
    let far_bls: Vec<usize> = (params.cols - n_cells..params.cols).collect();
    let vd = estimate_vd(
        params,
        &OperatingPoint {
            target_wl: params.rows - 1,
            target_bls: far_bls,
            wl_ones: params.cols,
            bl_ones: params.rows,
        },
    )
    .iter()
    .map(|&(_, v)| v)
    .fold(f64::INFINITY, f64::min);
    law.latency_ps(vd)
}

/// RESET latency (ns) as a function of the selected wordline's LRS
/// percentage, for a single cell location — the data behind Figure 4b.
///
/// Returns `(percent, latency_ns)` pairs at `steps + 1` evenly spaced
/// percentages from 0 to 100.
///
/// # Panics
///
/// Panics if the location is out of bounds or `steps == 0`.
pub fn latency_vs_wl_content(
    params: &CrossbarParams,
    law: LatencyLaw,
    wl: usize,
    col: usize,
    steps: usize,
) -> Vec<(f64, f64)> {
    assert!(
        wl < params.rows && col < params.cols,
        "location out of bounds"
    );
    assert!(steps > 0, "steps must be nonzero");
    (0..=steps)
        .map(|s| {
            let pct = 100.0 * s as f64 / steps as f64;
            let ones = (pct / 100.0 * params.cols as f64).round() as usize;
            let vd = estimate_vd(
                params,
                &OperatingPoint {
                    target_wl: wl,
                    target_bls: vec![col],
                    wl_ones: ones.min(params.cols),
                    bl_ones: params.rows,
                },
            )[0]
            .1;
            (pct, law.latency_ns(vd))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_table() -> TimingTable {
        TimingTable::generate(&TableConfig::ladder_default()).expect("generate")
    }

    #[test]
    fn default_table_spans_paper_range() {
        let t = default_table();
        // Worst entry equals the calibrated 658 ns (up to ps rounding).
        assert!(
            (t.worst_ps() as f64 - 658_000.0).abs() < 1000.0,
            "worst {}",
            t.worst_ps()
        );
        // Best entry is close to, and at least, the 29 ns anchor (band
        // quantization keeps it above the absolute best case).
        assert!(t.best_ps() >= 29_000);
        assert!(t.best_ps() < 200_000, "best {}", t.best_ps());
    }

    #[test]
    fn table_is_monotone_in_every_dimension() {
        let t = default_table();
        for c in 0..8 {
            for w in 0..8 {
                for b in 0..8 {
                    if c + 1 < 8 {
                        assert!(t.entry(c + 1, w, b) >= t.entry(c, w, b));
                    }
                    if w + 1 < 8 {
                        assert!(t.entry(c, w + 1, b) >= t.entry(c, w, b));
                    }
                    if b + 1 < 8 {
                        assert!(t.entry(c, w, b + 1) >= t.entry(c, w, b));
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_banding_is_conservative() {
        let t = default_table();
        // Any exact coordinate must get at least the latency of a finer one.
        let fine = t.lookup_ps(64, 64, 64);
        let coarse = t.lookup_ps(127, 127, 128);
        assert!(coarse >= fine);
        // Saturating content lookup equals the worst content band.
        assert_eq!(
            t.lookup_ps(100, 100, usize::MAX),
            t.lookup_ps(100, 100, 512)
        );
    }

    #[test]
    fn quantized_lookup_matches_reference_for_every_cell_small_mat() {
        // Full cross product on a downscaled mat (32×32, 4 bands): every
        // ⟨WL, BL, C_lrs⟩ cell plus the saturating sentinel.
        let params = CrossbarParams::with_size(32, 32);
        let cfg = TableConfig {
            params: params.clone(),
            bands: 4,
            content_axis: ContentAxis::Wordline,
            source: TableSource::Analytic,
            law: TableConfig::ladder_default().law,
        };
        let t = TimingTable::generate(&cfg).expect("generate");
        for wl in 0..params.rows {
            for bl in 0..params.cols {
                for c in 0..=params.cols {
                    assert_eq!(
                        t.lookup_ps(wl, bl, c),
                        t.lookup_ps_reference(wl, bl, c),
                        "cell ({wl},{bl},{c})"
                    );
                }
                assert_eq!(
                    t.lookup_ps(wl, bl, usize::MAX),
                    t.lookup_ps_reference(wl, bl, usize::MAX)
                );
            }
        }
    }

    #[test]
    fn quantized_lookup_matches_reference_on_default_table() {
        // The full 512×512×513 cross product is covered by factoring: the
        // per-dimension band LUTs are verified exhaustively against the
        // legacy division formulas (every wl, bl and c index), and both
        // paths then read the same flat entry from the same band triple —
        // so agreement on the LUTs implies agreement on every cell. A
        // strided direct sweep cross-checks the composition.
        let t = default_table();
        for wl in 0..512 {
            assert_eq!(t.wl_lut[wl] as usize, wl * t.bands / t.rows);
        }
        for bl in 0..512 {
            assert_eq!(t.bl_lut[bl] as usize, bl * t.bands / t.cols);
        }
        assert_eq!(t.c_lut.len(), 513);
        for c in 0..=512usize {
            let expect = if c == 0 {
                0
            } else {
                ((c - 1) * t.bands / 512).min(t.bands - 1)
            };
            assert_eq!(t.c_lut[c] as usize, expect);
        }
        for wl in (0..512).step_by(7) {
            for bl in (0..512).step_by(11) {
                for c in (0..=512).step_by(13) {
                    assert_eq!(t.lookup_ps(wl, bl, c), t.lookup_ps_reference(wl, bl, c));
                }
                assert_eq!(
                    t.lookup_ps(wl, bl, usize::MAX),
                    t.lookup_ps_reference(wl, bl, usize::MAX)
                );
            }
        }
    }

    #[test]
    fn rom_and_shrink_paths_keep_luts_consistent() {
        let t = default_table();
        let back = TimingTable::from_rom_bytes(
            &t.to_rom_bytes(),
            8,
            512,
            512,
            ContentAxis::Wordline,
            t.law(),
            t.rom_scale_ps(),
        );
        let shrunk = t.shrink_dynamic_range(2.0);
        for view in [&back, &shrunk] {
            for wl in (0..512).step_by(31) {
                for bl in (0..512).step_by(37) {
                    for c in [0, 1, 63, 64, 256, 512, usize::MAX] {
                        assert_eq!(
                            view.lookup_ps(wl, bl, c),
                            view.lookup_ps_reference(wl, bl, c)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rom_roundtrip_is_conservative_and_close() {
        let t = default_table();
        let rom = t.to_rom_bytes();
        assert_eq!(rom.len(), 512);
        let back = TimingTable::from_rom_bytes(
            &rom,
            8,
            512,
            512,
            ContentAxis::Wordline,
            t.law(),
            t.rom_scale_ps(),
        );
        for c in 0..8 {
            for w in 0..8 {
                for b in 0..8 {
                    let orig = t.entry(c, w, b) as u64;
                    let q = back.entry(c, w, b) as u64;
                    assert!(q >= orig, "ROM quantization must round up");
                    assert!(q <= orig + t.rom_scale_ps(), "ROM error above one step");
                }
            }
        }
    }

    #[test]
    fn blp_table_differs_from_ladder_table() {
        let mut cfg = TableConfig::ladder_default();
        let ladder = TimingTable::generate(&cfg).expect("ladder");
        cfg.content_axis = ContentAxis::Bitline;
        let blp = TimingTable::generate(&cfg).expect("blp");
        assert_eq!(blp.content_axis(), ContentAxis::Bitline);
        // Same device: worst corners coincide.
        assert_eq!(ladder.worst_ps(), blp.worst_ps());
        assert_ne!(ladder.sub_table(0), blp.sub_table(0));
    }

    #[test]
    fn shrink_halves_range_keeps_best() {
        let t = default_table();
        let s = t.shrink_dynamic_range(2.0);
        assert_eq!(s.best_ps(), t.best_ps());
        assert!(s.worst_ps() < t.worst_ps());
        let old_range = t.worst_ps() - t.best_ps();
        let new_range = s.worst_ps() - s.best_ps();
        assert!(new_range <= old_range / 2 + 2);
        assert!(new_range >= old_range / 2 - old_range / 64);
    }

    #[test]
    fn half_reset_is_faster_than_full_reset() {
        let cfg = TableConfig::ladder_default();
        let full = worst_latency_for_selected(&cfg.params, cfg.law, 8);
        let half = worst_latency_for_selected(&cfg.params, cfg.law, 4);
        assert!(half < full);
        // Two sequential half-RESETs should still beat ~1.6 full RESETs
        // for the scheme to pay off on compressible data.
        assert!(half * 2 < full * 2);
    }

    #[test]
    fn fig4b_curves_far_cell_slower_and_content_sensitive() {
        let cfg = TableConfig::ladder_default();
        let far = latency_vs_wl_content(&cfg.params, cfg.law, 480, 480, 10);
        let near = latency_vs_wl_content(&cfg.params, cfg.law, 16, 16, 10);
        assert_eq!(far.len(), 11);
        // Far cell is slower at every content level.
        for (f, n) in far.iter().zip(&near) {
            assert!(f.1 >= n.1);
        }
        // Far cell latency grows significantly with content; near cell much
        // less (this is the motivation for multi-granularity counters).
        let far_growth = far.last().expect("nonempty").1 / far[0].1;
        let near_growth = near.last().expect("nonempty").1 / near[0].1;
        assert!(far_growth > near_growth);
        assert!(far_growth > 1.5, "far growth {far_growth}");
    }

    #[test]
    fn mna_source_agrees_with_analytic_on_small_mat() {
        // Downscaled mat so the MNA path stays fast in tests. Use the
        // physical 10×-per-0.4V law directly: calibrating to the 29–658 ns
        // range on a tiny mat would blow up `k` and amplify the (small,
        // conservative) analytic voltage error into huge latency ratios.
        let params = CrossbarParams::with_size(32, 32);
        let k = 10.0f64.ln() / 0.4;
        let law = LatencyLaw {
            c_ns: 29.0 * (k * 3.0).exp(),
            k_per_volt: k,
        };
        let mk = |source| TableConfig {
            params: params.clone(),
            bands: 4,
            content_axis: ContentAxis::Wordline,
            source,
            law,
        };
        let ana = TimingTable::generate(&mk(TableSource::Analytic)).expect("analytic");
        let mna =
            TimingTable::generate(&mk(TableSource::Mna(SolverKind::LineRelaxation))).expect("mna");
        for c in 0..4 {
            for w in 0..4 {
                for b in 0..4 {
                    let a = ana.entry(c, w, b) as f64;
                    let m = mna.entry(c, w, b) as f64;
                    assert!(
                        a >= m * 0.85,
                        "analytic entry ({c},{w},{b}) = {a} not conservative vs MNA {m}"
                    );
                    assert!(
                        a <= m * 6.0,
                        "analytic entry ({c},{w},{b}) = {a} too far above MNA {m}"
                    );
                }
            }
        }
    }
}
