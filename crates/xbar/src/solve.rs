//! Linear-algebra kernels used by the crossbar MNA solver.
//!
//! Three independent solvers are provided so results can be cross-validated:
//!
//! * [`dense`] — LU factorization with partial pivoting, `O(n³)`; used for
//!   small arrays and as the reference in tests.
//! * [`tridiag`] — Thomas algorithm for the per-line subproblems of the
//!   block Gauss–Seidel ("line relaxation") solver.
//! * [`csr`] — compressed-sparse-row matrices with Jacobi-preconditioned
//!   conjugate gradient, usable on medium and large networks.

/// Dense direct solver.
pub mod dense {
    /// Solves `a · x = b` in place via LU with partial pivoting.
    ///
    /// `a` is a row-major `n × n` matrix; both `a` and `b` are consumed and
    /// overwritten. Returns the solution vector.
    ///
    /// # Errors
    ///
    /// Returns `Err(col)` if a zero (or numerically negligible) pivot is
    /// encountered at column `col`, i.e. the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != b.len() * b.len()`.
    pub fn lu_solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Result<Vec<f64>, usize> {
        let n = b.len();
        assert_eq!(a.len(), n * n, "matrix/vector dimension mismatch");
        for k in 0..n {
            // Partial pivoting.
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for r in (k + 1)..n {
                let v = a[r * n + k].abs();
                if v > max {
                    max = v;
                    piv = r;
                }
            }
            if max < 1e-300 {
                return Err(k);
            }
            if piv != k {
                for c in 0..n {
                    a.swap(k * n + c, piv * n + c);
                }
                b.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let f = a[r * n + k] / pivot;
                if f == 0.0 {
                    continue;
                }
                a[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    a[r * n + c] -= f * a[k * n + c];
                }
                b[r] -= f * b[k];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = b[k];
            for c in (k + 1)..n {
                s -= a[k * n + c] * x[c];
            }
            x[k] = s / a[k * n + k];
        }
        Ok(x)
    }
}

/// Thomas-algorithm tridiagonal solver.
pub mod tridiag {
    /// Solves a tridiagonal system in `O(n)`.
    ///
    /// `lower[i]` couples unknown `i` to `i-1` (with `lower[0]` unused),
    /// `diag[i]` is the main diagonal and `upper[i]` couples `i` to `i+1`
    /// (with `upper[n-1]` unused). `rhs` is overwritten with intermediate
    /// values; scratch buffers are provided by the caller so hot loops do
    /// not allocate.
    ///
    /// # Panics
    ///
    /// Panics if the slices have mismatched lengths, or (debug builds only)
    /// if a pivot underflows, which cannot happen for the diagonally
    /// dominant systems produced by resistive networks.
    pub fn solve_into(
        lower: &[f64],
        diag: &[f64],
        upper: &[f64],
        rhs: &mut [f64],
        scratch: &mut [f64],
        x: &mut [f64],
    ) {
        let n = diag.len();
        assert!(
            lower.len() == n && upper.len() == n && rhs.len() == n && x.len() == n,
            "tridiagonal system slice length mismatch"
        );
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        // Forward elimination: scratch holds the modified upper diagonal.
        let mut beta = diag[0];
        debug_assert!(beta.abs() > 1e-300, "zero pivot in tridiagonal solve");
        scratch[0] = upper[0] / beta;
        rhs[0] /= beta;
        for i in 1..n {
            beta = diag[i] - lower[i] * scratch[i - 1];
            debug_assert!(beta.abs() > 1e-300, "zero pivot in tridiagonal solve");
            scratch[i] = upper[i] / beta;
            rhs[i] = (rhs[i] - lower[i] * rhs[i - 1]) / beta;
        }
        // Back substitution.
        x[n - 1] = rhs[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = rhs[i] - scratch[i] * x[i + 1];
        }
    }
}

/// Sparse matrices and the conjugate-gradient solver.
pub mod csr {
    /// Compressed-sparse-row symmetric matrix.
    ///
    /// Built through [`CsrBuilder`]; the conjugate-gradient solver assumes
    /// the matrix is symmetric positive definite, which holds for the
    /// conductance matrix of a resistive network that is grounded through
    /// at least one driver.
    #[derive(Debug, Clone)]
    pub struct Csr {
        n: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    }

    impl Csr {
        /// Dimension of the (square) matrix.
        pub fn n(&self) -> usize {
            self.n
        }

        /// Computes `y = A·x`.
        ///
        /// # Panics
        ///
        /// Panics if `x` or `y` have length different from `n`.
        #[allow(clippy::needless_range_loop)] // row index drives the CSR walk
        pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
            assert!(x.len() == self.n && y.len() == self.n, "dimension mismatch");
            for r in 0..self.n {
                let mut s = 0.0;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    s += self.values[k] * x[self.col_idx[k]];
                }
                y[r] = s;
            }
        }

        /// Returns the main diagonal (used for Jacobi preconditioning).
        #[allow(clippy::needless_range_loop)] // row index drives the CSR walk
        pub fn diagonal(&self) -> Vec<f64> {
            let mut d = vec![0.0; self.n];
            for r in 0..self.n {
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    if self.col_idx[k] == r {
                        d[r] = self.values[k];
                    }
                }
            }
            d
        }

        /// Infinity norm of the residual `A·x − b`.
        pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> f64 {
            let mut y = vec![0.0; self.n];
            self.mul_vec(x, &mut y);
            y.iter()
                .zip(b)
                .map(|(yi, bi)| (yi - bi).abs())
                .fold(0.0, f64::max)
        }
    }

    /// Incremental builder accumulating duplicate entries.
    #[derive(Debug)]
    pub struct CsrBuilder {
        n: usize,
        entries: Vec<Vec<(usize, f64)>>,
    }

    impl CsrBuilder {
        /// Creates a builder for an `n × n` matrix.
        pub fn new(n: usize) -> Self {
            Self {
                n,
                entries: vec![Vec::new(); n],
            }
        }

        /// Adds `v` to entry `(r, c)`.
        ///
        /// # Panics
        ///
        /// Panics if `r` or `c` is out of bounds.
        pub fn add(&mut self, r: usize, c: usize, v: f64) {
            assert!(r < self.n && c < self.n, "entry ({r},{c}) out of bounds");
            self.entries[r].push((c, v));
        }

        /// Finalizes into a [`Csr`], merging duplicates.
        pub fn build(mut self) -> Csr {
            let mut row_ptr = Vec::with_capacity(self.n + 1);
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            row_ptr.push(0);
            for row in &mut self.entries {
                row.sort_unstable_by_key(|&(c, _)| c);
                let mut last: Option<usize> = None;
                for &(c, v) in row.iter() {
                    if last == Some(c) {
                        // lint: allow(panic-policy) — invariant: last == Some(c) implies values got an entry on a previous iteration
                        *values.last_mut().expect("entry exists") += v;
                    } else {
                        col_idx.push(c);
                        values.push(v);
                        last = Some(c);
                    }
                }
                row_ptr.push(col_idx.len());
            }
            Csr {
                n: self.n,
                row_ptr,
                col_idx,
                values,
            }
        }
    }

    /// Outcome of a conjugate-gradient run.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct CgStats {
        /// Iterations performed.
        pub iterations: usize,
        /// Final preconditioned-residual norm relative to the initial one.
        pub relative_residual: f64,
        /// Whether the tolerance was reached before the iteration cap.
        pub converged: bool,
    }

    /// Jacobi-preconditioned conjugate gradient for SPD systems.
    ///
    /// Solves `A·x = b` starting from the provided `x` (warm starts are
    /// supported), stopping when the 2-norm of the residual has shrunk by
    /// `rel_tol` or after `max_iter` iterations.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn cg_solve(a: &Csr, b: &[f64], x: &mut [f64], rel_tol: f64, max_iter: usize) -> CgStats {
        let n = a.n();
        assert!(b.len() == n && x.len() == n, "dimension mismatch");
        let inv_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let mut r = vec![0.0; n];
        a.mul_vec(x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let r0: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if r0 == 0.0 {
            return CgStats {
                iterations: 0,
                relative_residual: 0.0,
                converged: true,
            };
        }
        let mut ap = vec![0.0; n];
        for it in 0..max_iter {
            a.mul_vec(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                // Loss of positive definiteness in floating point; bail out.
                return CgStats {
                    iterations: it,
                    relative_residual: f64::NAN,
                    converged: false,
                };
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rn / r0 < rel_tol {
                return CgStats {
                    iterations: it + 1,
                    relative_residual: rn / r0,
                    converged: true,
                };
            }
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        CgStats {
            iterations: max_iter,
            relative_residual: rn / r0,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -4.0];
        let x = dense::lu_solve(a, b).expect("solvable");
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 4.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solves_with_pivoting() {
        // Requires a row swap: zero leading pivot.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 5.0];
        let x = dense::lu_solve(a, b).expect("solvable");
        assert!((x[0] - 5.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(dense::lu_solve(a, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn tridiag_matches_dense() {
        let n = 7;
        let lower = vec![-1.0; n];
        let diag = vec![4.0; n];
        let upper = vec![-1.5; n];
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
        // Dense reference.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = diag[i];
            if i > 0 {
                a[i * n + i - 1] = lower[i];
            }
            if i + 1 < n {
                a[i * n + i + 1] = upper[i];
            }
        }
        let x_ref = dense::lu_solve(a, rhs.clone()).expect("solvable");
        let mut rhs_mut = rhs;
        let mut scratch = vec![0.0; n];
        let mut x = vec![0.0; n];
        tridiag::solve_into(&lower, &diag, &upper, &mut rhs_mut, &mut scratch, &mut x);
        for (xa, xb) in x.iter().zip(&x_ref) {
            assert!((xa - xb).abs() < 1e-10);
        }
    }

    #[test]
    fn cg_solves_spd_system() {
        // Small SPD matrix: discrete Laplacian + identity.
        let n = 20;
        let mut b = csr::CsrBuilder::new(n);
        for i in 0..n {
            b.add(i, i, 3.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        let a = b.build();
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x = vec![0.0; n];
        let stats = csr::cg_solve(&a, &rhs, &mut x, 1e-12, 200);
        assert!(stats.converged);
        assert!(a.residual_inf(&x, &rhs) < 1e-9);
    }

    #[test]
    fn csr_builder_merges_duplicates() {
        let mut b = csr::CsrBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.0);
        b.add(0, 1, -1.0);
        b.add(1, 1, 5.0);
        let a = b.build();
        let mut y = vec![0.0; 2];
        a.mul_vec(&[1.0, 1.0], &mut y);
        assert!((y[0] - 2.0).abs() < 1e-12);
        assert!((y[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cg_warm_start_converges_immediately_at_solution() {
        let mut b = csr::CsrBuilder::new(3);
        for i in 0..3 {
            b.add(i, i, 2.0);
        }
        let a = b.build();
        let rhs = vec![2.0, 4.0, 6.0];
        let mut x = vec![1.0, 2.0, 3.0];
        let stats = csr::cg_solve(&a, &rhs, &mut x, 1e-12, 10);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }
}
