//! Circuit-level parameters of the ReRAM crossbar (paper Table 1).

/// Electrical and geometric parameters of one crossbar mat.
///
/// Defaults reproduce Table 1 of the paper: a 512×512 mat with 8 selected
/// cells per RESET, 10 kΩ LRS / 2 MΩ HRS cells, 2.5 Ω wire segments,
/// 100 Ω drivers, a selector with non-linearity 200, a 3 V write voltage and
/// a 1.5 V (V/2) bias on half-selected lines.
///
/// # Examples
///
/// ```
/// use ladder_xbar::CrossbarParams;
///
/// let p = CrossbarParams::default();
/// assert_eq!(p.rows, 512);
/// assert_eq!(p.selected_cells, 8);
/// assert!((p.write_voltage - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarParams {
    /// Number of wordlines (rows) in the mat.
    pub rows: usize,
    /// Number of bitlines (columns) in the mat.
    pub cols: usize,
    /// Number of cells RESET simultaneously in one mat (one byte = 8).
    pub selected_cells: usize,
    /// Low-resistance-state (logical `1`) cell resistance in ohms.
    pub r_lrs: f64,
    /// High-resistance-state (logical `0`) cell resistance in ohms.
    pub r_hrs: f64,
    /// Wordline driver (input) resistance in ohms.
    pub r_input: f64,
    /// Bitline driver (output) resistance in ohms.
    pub r_output: f64,
    /// Resistance of one wire segment between adjacent cells, in ohms.
    pub r_wire: f64,
    /// Selector non-linearity: the factor by which the effective cell
    /// resistance grows when the cell is biased at half the write voltage.
    pub selector_nonlinearity: f64,
    /// Full write (RESET) voltage in volts, applied to selected bitlines.
    pub write_voltage: f64,
    /// Bias voltage in volts applied to half-selected lines (V/2 scheme).
    pub bias_voltage: f64,
    /// Effective resistance of a cell while it is actively being RESET.
    ///
    /// The cell starts in LRS and ends in HRS; the pulse-averaged
    /// resistance is modelled as the geometric mean of the two states
    /// (≈ 141 kΩ for the default 10 kΩ/2 MΩ pair), which also reflects the
    /// current compliance practical write drivers enforce.
    pub r_reset_transition: f64,
    /// Gain applied to the sneak current of half-selected cells on the
    /// *selected wordline* in the fast analytic model.
    ///
    /// Calibrated so the content sensitivity of generated timing tables
    /// reproduces the paper's published Figure 4b curves (≈ 7× latency
    /// swing over the wordline LRS percentage at a far cell): the paper's
    /// circuit-level setup exhibits stronger wordline-content dependence
    /// than a first-order superposition predicts from Table 1 alone.
    pub wl_sneak_gain: f64,
}

impl Default for CrossbarParams {
    fn default() -> Self {
        Self {
            rows: 512,
            cols: 512,
            selected_cells: 8,
            r_lrs: 10e3,
            r_hrs: 2e6,
            r_input: 100.0,
            r_output: 100.0,
            r_wire: 2.5,
            selector_nonlinearity: 200.0,
            write_voltage: 3.0,
            bias_voltage: 1.5,
            r_reset_transition: (10e3f64 * 2e6).sqrt(),
            wl_sneak_gain: 3.0,
        }
    }
}

impl CrossbarParams {
    /// Returns parameters for a mat of `rows × cols` cells, keeping the
    /// default electrical values.
    ///
    /// Useful for tests and for validating solvers on small arrays.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ladder_xbar::CrossbarParams;
    /// let p = CrossbarParams::with_size(64, 64);
    /// assert_eq!((p.rows, p.cols), (64, 64));
    /// ```
    pub fn with_size(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be nonzero");
        Self {
            rows,
            cols,
            ..Self::default()
        }
    }

    /// Effective resistance of a cell under a given voltage magnitude.
    ///
    /// The selector model interpolates exponentially between a multiplier of
    /// 1 at the full write voltage and `selector_nonlinearity` at the bias
    /// voltage; at lower voltages the multiplier keeps growing up to the
    /// square of the non-linearity (cells near 0 V are essentially cut off).
    pub fn effective_resistance(&self, lrs: bool, v_abs: f64) -> f64 {
        let base = if lrs { self.r_lrs } else { self.r_hrs };
        base * self.selector_multiplier(v_abs)
    }

    /// Selector resistance multiplier at a given voltage magnitude.
    ///
    /// Equals 1.0 at (or above) the full write voltage and
    /// `selector_nonlinearity` at the bias voltage, growing exponentially as
    /// the bias drops further (clamped at `selector_nonlinearity²`).
    pub fn selector_multiplier(&self, v_abs: f64) -> f64 {
        let span = self.write_voltage - self.bias_voltage;
        debug_assert!(span > 0.0, "write voltage must exceed bias voltage");
        // Exponent 0 at full voltage, 1 at half voltage, clamped at 2 below.
        let x = ((self.write_voltage - v_abs) / span).clamp(0.0, 2.0);
        self.selector_nonlinearity.powf(x)
    }

    /// Cell count of the mat (`rows × cols`).
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = CrossbarParams::default();
        assert_eq!(p.rows, 512);
        assert_eq!(p.cols, 512);
        assert_eq!(p.selected_cells, 8);
        assert_eq!(p.r_lrs, 10e3);
        assert_eq!(p.r_hrs, 2e6);
        assert_eq!(p.r_input, 100.0);
        assert_eq!(p.r_output, 100.0);
        assert_eq!(p.r_wire, 2.5);
        assert_eq!(p.selector_nonlinearity, 200.0);
        assert_eq!(p.write_voltage, 3.0);
        assert_eq!(p.bias_voltage, 1.5);
    }

    #[test]
    fn selector_multiplier_boundaries() {
        let p = CrossbarParams::default();
        assert!((p.selector_multiplier(3.0) - 1.0).abs() < 1e-12);
        assert!((p.selector_multiplier(1.5) - 200.0).abs() < 1e-9);
        // Below half bias the multiplier keeps rising but stays clamped.
        assert!(p.selector_multiplier(0.0) <= 200.0f64.powi(2) + 1.0);
        assert!(p.selector_multiplier(0.4) > 200.0);
    }

    #[test]
    fn selector_multiplier_is_monotone_decreasing_in_voltage() {
        let p = CrossbarParams::default();
        let mut prev = f64::INFINITY;
        for i in 0..=30 {
            let v = 3.0 * i as f64 / 30.0;
            let m = p.selector_multiplier(v);
            assert!(m <= prev + 1e-9, "multiplier must not grow with voltage");
            prev = m;
        }
    }

    #[test]
    fn effective_resistance_scales_base() {
        let p = CrossbarParams::default();
        let r_full = p.effective_resistance(true, 3.0);
        assert!((r_full - 10e3).abs() < 1e-6);
        let r_half = p.effective_resistance(true, 1.5);
        assert!((r_half - 2e6).abs() < 1e-3);
        assert!(p.effective_resistance(false, 1.5) > p.effective_resistance(true, 1.5));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_panics() {
        let _ = CrossbarParams::with_size(0, 4);
    }
}
