//! Property tests on the crossbar solvers: cross-solver agreement,
//! Kirchhoff consistency and monotonicity over random operating points.

use ladder_xbar::{
    analytic, kirchhoff_residual, solve_reset, CrossbarParams, PatternSpec, ResetOp, SolverKind,
};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    // (size, target_wl, target_bl, wl_ones) over solver-friendly mats.
    (6usize..14)
        .prop_flat_map(|n| (Just(n), 0..n, 0..n, 0..=n).prop_map(|(n, w, b, ones)| (n, w, b, ones)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_and_line_relaxation_agree((n, w, b, ones) in arb_case()) {
        let params = CrossbarParams::with_size(n, n);
        let grid = PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(n, n, w, &[b]);
        let op = ResetOp::new(w, vec![b]);
        let dense = solve_reset(&params, &grid, &op, SolverKind::DenseLu)
            .expect("dense solve")
            .min_target_vd();
        let relax = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation)
            .expect("relaxation solve")
            .min_target_vd();
        prop_assert!((dense - relax).abs() < 2e-3, "dense {dense} vs relax {relax}");
    }

    #[test]
    fn solutions_satisfy_kirchhoff((n, w, b, ones) in arb_case()) {
        let params = CrossbarParams::with_size(n, n);
        let grid = PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(n, n, w, &[b]);
        let op = ResetOp::new(w, vec![b]);
        let sol = solve_reset(&params, &grid, &op, SolverKind::DenseLu).expect("solve");
        prop_assert!(kirchhoff_residual(&params, &grid, &op, &sol) < 1e-5);
    }

    #[test]
    fn analytic_is_conservative_and_monotone((n, w, b, ones) in arb_case()) {
        let params = CrossbarParams::with_size(n, n);
        let grid = PatternSpec::WorstCaseWl { wl_ones: ones }.materialize(n, n, w, &[b]);
        let op = ResetOp::new(w, vec![b]);
        let exact = solve_reset(&params, &grid, &op, SolverKind::LineRelaxation)
            .expect("solve")
            .min_target_vd();
        let point = |o: usize| {
            analytic::estimate_vd(
                &params,
                &analytic::OperatingPoint {
                    target_wl: w,
                    target_bls: vec![b],
                    wl_ones: o,
                    bl_ones: n,
                },
            )[0]
            .1
        };
        let approx = point(ones);
        prop_assert!(approx <= exact + 0.03, "analytic {approx} vs exact {exact}");
        if ones < n {
            prop_assert!(point(ones + 1) <= approx + 1e-12, "more content cannot raise Vd");
        }
    }
}
