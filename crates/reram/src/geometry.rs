//! Physical organization of the ReRAM main memory (paper Table 2 / Fig. 3).
//!
//! A 64 B memory line is striped over one *mat group*: 8 bytes per ×8 chip,
//! each byte into its own mat, landing on one wordline. The 64 wordlines
//! (one per mat of the group) that jointly store the 64 lines of a 4 KB
//! page form a *wordline group* (WLG): LADDER's metadata unit.

/// Size of one memory line (cache block) in bytes.
pub const LINE_BYTES: usize = 64;
/// Lines per wordline group (= lines per 4 KB page).
pub const LINES_PER_WLG: usize = 64;
/// Bytes per page (one WLG stores exactly one page).
pub const PAGE_BYTES: usize = LINE_BYTES * LINES_PER_WLG;

/// Geometry of the ReRAM module.
///
/// Defaults follow Table 2: dual channel, 2 ranks/channel, 8 banks/rank,
/// 256 mats per bank per chip, ×8 chips, 512×512 mats.
///
/// # Examples
///
/// ```
/// use ladder_reram::Geometry;
///
/// let g = Geometry::default();
/// assert_eq!(g.chips, 8);
/// assert_eq!(g.pages(), g.total_wlgs());
/// assert!(g.capacity_bytes() >= 1 << 31);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Mats per bank *per chip*.
    pub mats_per_bank: usize,
    /// ×8 chips per rank; each chip contributes 8 bytes of a line.
    pub chips: usize,
    /// Wordlines per mat.
    pub mat_rows: usize,
    /// Bitlines per mat.
    pub mat_cols: usize,
}

impl Default for Geometry {
    fn default() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            mats_per_bank: 256,
            chips: 8,
            mat_rows: 512,
            mat_cols: 512,
        }
    }
}

impl Geometry {
    /// Checks the structural constraints the rest of the stack assumes.
    ///
    /// The line-to-mat striping (one byte per mat), the 8-byte chip groups
    /// used by intra-line shifting, and the 64-slot wordline groups all
    /// require:
    ///
    /// * `chips` divides [`LINE_BYTES`] (each chip stores whole bytes);
    /// * `mats_per_bank` divides evenly into mat groups;
    /// * `mat_cols` is a multiple of [`LINES_PER_WLG`] (each line gets the
    ///   same number of adjacent bit columns per mat);
    /// * all dimensions are nonzero.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0
            || self.ranks_per_channel == 0
            || self.banks_per_rank == 0
            || self.mats_per_bank == 0
            || self.chips == 0
            || self.mat_rows == 0
            || self.mat_cols == 0
        {
            return Err("all geometry dimensions must be nonzero".into());
        }
        if !LINE_BYTES.is_multiple_of(self.chips) {
            return Err(format!(
                "{} chips do not evenly split a 64 B line",
                self.chips
            ));
        }
        if !self
            .mats_per_bank
            .is_multiple_of(self.mats_per_line_per_chip())
        {
            return Err(format!(
                "{} mats/bank do not form whole mat groups of {}",
                self.mats_per_bank,
                self.mats_per_line_per_chip()
            ));
        }
        if !self.mat_cols.is_multiple_of(LINES_PER_WLG) {
            return Err(format!(
                "{} bit columns do not evenly split across {} wordline-group slots",
                self.mat_cols, LINES_PER_WLG
            ));
        }
        Ok(())
    }

    /// Mats each chip contributes to one line (one byte per mat).
    pub fn mats_per_line_per_chip(&self) -> usize {
        LINE_BYTES / self.chips
    }

    /// Mat groups per bank: disjoint sets of `chips ×
    /// mats_per_line_per_chip` mats that jointly store whole lines.
    pub fn mat_groups_per_bank(&self) -> usize {
        self.mats_per_bank / self.mats_per_line_per_chip()
    }

    /// Total banks across the module.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Wordline groups (= 4 KB pages) in the whole module.
    pub fn total_wlgs(&self) -> usize {
        self.total_banks() * self.mat_groups_per_bank() * self.mat_rows
    }

    /// Number of 4 KB pages the module stores.
    pub fn pages(&self) -> usize {
        self.total_wlgs()
    }

    /// Number of 64 B lines the module stores.
    pub fn lines(&self) -> u64 {
        self.pages() as u64 * LINES_PER_WLG as u64
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.lines() * LINE_BYTES as u64
    }

    /// Blocks a line's byte `i` (0–63) to its chip index.
    pub fn chip_of_byte(&self, byte: usize) -> usize {
        debug_assert!(byte < LINE_BYTES);
        byte / self.mats_per_line_per_chip()
    }

    /// Blocks a line's byte `i` (0–63) to its mat index within the chip's
    /// share of the mat group.
    pub fn mat_of_byte(&self, byte: usize) -> usize {
        debug_assert!(byte < LINE_BYTES);
        byte % self.mats_per_line_per_chip()
    }

    /// Bit columns a line occupies inside each mat's wordline, for the line
    /// stored at slot `block_slot` (0–63) of its WLG: 8 adjacent columns.
    ///
    /// # Panics
    ///
    /// Panics if `block_slot` is out of range for the mat width.
    pub fn bit_columns_of_slot(&self, block_slot: usize) -> std::ops::Range<usize> {
        let bits = self.mat_cols / LINES_PER_WLG;
        assert!(block_slot < LINES_PER_WLG, "block slot out of range");
        block_slot * bits..(block_slot + 1) * bits
    }

    /// The worst (farthest from the wordline driver) bit column a line at
    /// `block_slot` touches — the column used for timing-table lookups.
    pub fn worst_column_of_slot(&self, block_slot: usize) -> usize {
        self.bit_columns_of_slot(block_slot).end - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_consistent() {
        let g = Geometry::default();
        assert_eq!(g.mats_per_line_per_chip(), 8);
        assert_eq!(g.mat_groups_per_bank(), 32);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.total_wlgs(), 32 * 32 * 512);
        assert_eq!(g.capacity_bytes(), 32 * 32 * 512 * 4096);
    }

    #[test]
    fn byte_to_chip_and_mat_covers_all_mats() {
        let g = Geometry::default();
        let mut seen = std::collections::HashSet::new();
        for b in 0..LINE_BYTES {
            seen.insert((g.chip_of_byte(b), g.mat_of_byte(b)));
        }
        assert_eq!(seen.len(), LINE_BYTES, "each byte maps to a distinct mat");
        assert_eq!(g.chip_of_byte(0), 0);
        assert_eq!(g.chip_of_byte(63), 7);
    }

    #[test]
    fn slot_columns_partition_the_wordline() {
        let g = Geometry::default();
        let mut covered = vec![false; g.mat_cols];
        for slot in 0..LINES_PER_WLG {
            for c in g.bit_columns_of_slot(slot) {
                assert!(!covered[c], "column {c} covered twice");
                covered[c] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(g.worst_column_of_slot(0), 7);
        assert_eq!(g.worst_column_of_slot(63), 511);
    }

    #[test]
    fn default_geometry_validates() {
        assert!(Geometry::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_broken_geometries() {
        let broken = |f: fn(&mut Geometry)| {
            let mut g = Geometry::default();
            f(&mut g);
            g.validate().unwrap_err()
        };
        assert!(broken(|g| g.chips = 7).contains("chips"));
        assert!(broken(|g| g.mat_cols = 100).contains("bit columns"));
        assert!(broken(|g| g.mats_per_bank = 12).contains("mat groups"));
        assert!(broken(|g| g.channels = 0).contains("nonzero"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let g = Geometry::default();
        let _ = g.bit_columns_of_slot(64);
    }
}
