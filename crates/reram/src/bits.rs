//! SWAR bit-counting kernels shared by every hot path that inspects line
//! contents.
//!
//! LADDER's per-write work is dominated by popcounts over 64 B lines: LRS
//! deltas for the counters, Flip-N-Write flip decisions, worst-byte partial
//! counters and the intra-line shift. These kernels process lines in u64
//! chunks — eight bytes per operation instead of one — using SIMD-within-a-
//! register (SWAR) arithmetic, and accept arbitrary slices so callers with
//! unaligned tails (metadata fragments, sub-line regions) get the same
//! answers.
//!
//! Every kernel has a byte-wise twin in [`reference`] with the obvious
//! one-byte-at-a-time implementation. The fast path is only trusted because
//! property tests (`tests/hotloop_equivalence.rs`) prove the two agree on
//! arbitrary inputs; see `DESIGN.md` §15 for the discipline.

/// The least-significant bit of every byte lane of a u64.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Bytes per SWAR chunk.
const CHUNK: usize = 8;

/// Loads the 8-byte little-endian word starting at `base`.
///
/// # Panics
///
/// Panics if `bytes[base..base + 8]` is out of bounds.
#[inline]
pub fn le_word(bytes: &[u8], base: usize) -> u64 {
    let mut w = [0u8; CHUNK];
    w.copy_from_slice(&bytes[base..base + CHUNK]);
    u64::from_le_bytes(w)
}

/// Stores `word` as 8 little-endian bytes starting at `base`.
///
/// # Panics
///
/// Panics if `bytes[base..base + 8]` is out of bounds.
#[inline]
pub fn write_le_word(bytes: &mut [u8], base: usize, word: u64) {
    bytes[base..base + CHUNK].copy_from_slice(&word.to_le_bytes());
}

/// Per-byte popcounts of a u64, one count per byte lane (each lane ≤ 8).
///
/// The classic SWAR reduction: pairwise, then nibble-wise sums that never
/// overflow their lane.
#[inline]
pub fn lane_ones(x: u64) -> u64 {
    let x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    let x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    (x.wrapping_add(x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f
}

/// Number of `1` bits in a byte slice, eight bytes per step.
pub fn ones(bytes: &[u8]) -> u32 {
    let mut total = 0u32;
    let mut chunks = bytes.chunks_exact(CHUNK);
    for c in chunks.by_ref() {
        total += le_word(c, 0).count_ones();
    }
    for &b in chunks.remainder() {
        total += b.count_ones();
    }
    total
}

/// Hamming distance between two equal-length byte slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_ones(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "xor_ones length mismatch");
    let mut total = 0u32;
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        total += (le_word(ca, 0) ^ le_word(cb, 0)).count_ones();
    }
    for (&xa, &xb) in ac.remainder().iter().zip(bc.remainder()) {
        total += (xa ^ xb).count_ones();
    }
    total
}

/// `(sets, resets)` between an old and a new image: bits going `0 → 1` and
/// bits going `1 → 0`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn delta_ones(new: &[u8], old: &[u8]) -> (u32, u32) {
    assert_eq!(new.len(), old.len(), "delta_ones length mismatch");
    let mut set = 0u32;
    let mut reset = 0u32;
    let mut nc = new.chunks_exact(CHUNK);
    let mut oc = old.chunks_exact(CHUNK);
    for (cn, co) in nc.by_ref().zip(oc.by_ref()) {
        let n = le_word(cn, 0);
        let o = le_word(co, 0);
        set += (n & !o).count_ones();
        reset += (!n & o).count_ones();
    }
    for (&bn, &bo) in nc.remainder().iter().zip(oc.remainder()) {
        set += (bn & !bo).count_ones();
        reset += (!bn & bo).count_ones();
    }
    (set, reset)
}

/// Popcount of the densest byte in the slice (0 for an empty slice).
///
/// Accumulates a *lanewise* running maximum across whole words with
/// branchless SWAR selection (valid because every lane holds a popcount
/// ≤ 8, far below the 7-bit limit of the compare trick), deferring the
/// horizontal max to a single pass at the end.
pub fn worst_byte_ones(bytes: &[u8]) -> u32 {
    const LANE_MSB: u64 = 0x8080_8080_8080_8080;
    let mut worst_lanes = 0u64;
    let mut chunks = bytes.chunks_exact(CHUNK);
    for c in chunks.by_ref() {
        let lanes = lane_ones(le_word(c, 0));
        // Per-lane `lanes >= worst_lanes` mask: borrow-free 7-bit compare.
        let ge = (((lanes | LANE_MSB) - worst_lanes) & LANE_MSB) >> 7;
        let mask = ge * 0xff;
        worst_lanes = (lanes & mask) | (worst_lanes & !mask);
    }
    let mut worst = 0u32;
    for lane in worst_lanes.to_le_bytes() {
        worst = worst.max(lane as u32);
    }
    for &b in chunks.remainder() {
        worst = worst.max(b.count_ones());
    }
    worst
}

/// Applies the intra-line shift to one 8-byte chip group held as a
/// little-endian u64: bit `j` of byte `k` moves to byte
/// `(k + j + offset) mod 8`, keeping its bit position.
///
/// Each of the 8 bit planes is a `LANE_LSB << j` mask; moving a plane by
/// `s` bytes with wraparound is a rotate by `8·s` bits.
///
/// # Panics
///
/// Debug-asserts `offset < 8`.
#[inline]
pub fn shift_group(group: u64, offset: usize) -> u64 {
    debug_assert!(offset < 8, "shift offset out of range");
    let mut out = 0u64;
    for j in 0..8 {
        let plane = group & (LANE_LSB << j);
        out |= plane.rotate_left((((j + offset) % 8) * 8) as u32);
    }
    out
}

/// Reverses [`shift_group`].
///
/// # Panics
///
/// Debug-asserts `offset < 8`.
#[inline]
pub fn unshift_group(group: u64, offset: usize) -> u64 {
    debug_assert!(offset < 8, "shift offset out of range");
    let mut out = 0u64;
    for j in 0..8 {
        let plane = group & (LANE_LSB << j);
        out |= plane.rotate_right((((j + offset) % 8) * 8) as u32);
    }
    out
}

/// Byte-at-a-time reference implementations of every kernel above.
///
/// These are the *definitions* the SWAR paths must match; they stay in the
/// build (not just in tests) so property tests and the `hotloop` bench can
/// compare against them at any time.
pub mod reference {
    /// Popcount, one byte at a time.
    pub fn ones(bytes: &[u8]) -> u32 {
        bytes.iter().map(|b| b.count_ones()).sum()
    }

    /// Hamming distance, one byte at a time.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn xor_ones(a: &[u8], b: &[u8]) -> u32 {
        assert_eq!(a.len(), b.len(), "xor_ones length mismatch");
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    /// `(sets, resets)`, one byte at a time.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn delta_ones(new: &[u8], old: &[u8]) -> (u32, u32) {
        assert_eq!(new.len(), old.len(), "delta_ones length mismatch");
        let mut set = 0u32;
        let mut reset = 0u32;
        for (n, o) in new.iter().zip(old) {
            set += (n & !o).count_ones();
            reset += (!n & o).count_ones();
        }
        (set, reset)
    }

    /// Worst-byte popcount, one byte at a time.
    pub fn worst_byte_ones(bytes: &[u8]) -> u32 {
        bytes.iter().map(|b| b.count_ones()).max().unwrap_or(0)
    }

    /// Intra-line shift of one chip group, one bit at a time.
    pub fn shift_group(group: u64, offset: usize) -> u64 {
        let bytes = group.to_le_bytes();
        let mut out = [0u8; 8];
        for (k, &b) in bytes.iter().enumerate() {
            for j in 0..8 {
                if (b >> j) & 1 == 1 {
                    out[(k + j + offset) % 8] |= 1 << j;
                }
            }
        }
        u64::from_le_bytes(out)
    }

    /// Inverse intra-line shift of one chip group, one bit at a time.
    pub fn unshift_group(group: u64, offset: usize) -> u64 {
        let bytes = group.to_le_bytes();
        let mut out = [0u8; 8];
        for (k, &b) in bytes.iter().enumerate() {
            for j in 0..8 {
                if (b >> j) & 1 == 1 {
                    out[(k + 8 - (j + offset) % 8) % 8] |= 1 << j;
                }
            }
        }
        u64::from_le_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed;
        (0..len).map(|_| (splitmix(&mut s) >> 24) as u8).collect()
    }

    #[test]
    fn lane_ones_counts_every_byte_value() {
        for b in 0..=u8::MAX {
            let lanes = lane_ones(u64::from_le_bytes([b; 8])).to_le_bytes();
            for lane in lanes {
                assert_eq!(lane as u32, b.count_ones());
            }
        }
    }

    #[test]
    fn kernels_match_reference_on_all_lengths() {
        // Every length 0..=96 exercises both the chunked body and every
        // possible unaligned tail.
        for len in 0..=96 {
            let a = rand_bytes(len as u64 + 1, len);
            let b = rand_bytes(len as u64 + 1000, len);
            assert_eq!(ones(&a), reference::ones(&a), "ones len {len}");
            assert_eq!(xor_ones(&a, &b), reference::xor_ones(&a, &b));
            assert_eq!(delta_ones(&a, &b), reference::delta_ones(&a, &b));
            assert_eq!(worst_byte_ones(&a), reference::worst_byte_ones(&a));
        }
    }

    #[test]
    fn shift_group_matches_reference_and_inverts() {
        let mut s = 42u64;
        for _ in 0..200 {
            let g = splitmix(&mut s);
            for offset in 0..8 {
                let fast = shift_group(g, offset);
                assert_eq!(fast, reference::shift_group(g, offset));
                assert_eq!(unshift_group(fast, offset), g);
                assert_eq!(
                    unshift_group(g, offset),
                    reference::unshift_group(g, offset)
                );
            }
        }
    }

    #[test]
    fn word_round_trip() {
        let mut buf = [0u8; 16];
        write_le_word(&mut buf, 3, 0x0102_0304_0506_0708);
        assert_eq!(le_word(&buf, 3), 0x0102_0304_0506_0708);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(ones(&[]), 0);
        assert_eq!(worst_byte_ones(&[]), 0);
        assert_eq!(xor_ones(&[], &[]), 0);
        assert_eq!(delta_ones(&[], &[]), (0, 0));
    }
}
