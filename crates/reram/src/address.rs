//! Physical address mapping: line addresses → (channel, rank, bank,
//! wordline, mat group, block slot).
//!
//! Under the default [`Interleave::Channel`] policy, consecutive 4 KB pages
//! rotate across channels, then ranks, then banks, then wordlines, then mat
//! groups: sequential traffic spreads over all the parallelism the module
//! offers *and* over the whole wordline range (the location dimension of
//! the timing model), while each page stays whole inside one wordline group
//! (the invariant LADDER's metadata layout relies on). The other
//! [`Interleave`] policies permute the same mixed-radix digits in a
//! different order, trading bank parallelism against wordline spread.

use crate::geometry::{Geometry, LINES_PER_WLG};
use std::fmt;

/// Index of a 64 B memory line (line number, not a byte address).
///
/// # Examples
///
/// ```
/// use ladder_reram::LineAddr;
/// let a = LineAddr::new(1000);
/// assert_eq!(a.page(), 15);
/// assert_eq!(a.block_slot(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Wraps a raw line index.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The 4 KB page this line belongs to.
    pub const fn page(self) -> u64 {
        self.0 / LINES_PER_WLG as u64
    }

    /// The line's slot (0–63) within its wordline group.
    pub const fn block_slot(self) -> usize {
        (self.0 % LINES_PER_WLG as u64) as usize
    }

    /// Raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte address of the line's first byte.
    pub const fn byte_address(self) -> u64 {
        self.0 * crate::geometry::LINE_BYTES as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Globally unique wordline-group identifier (equal to the page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WlgId(pub u64);

impl fmt::Display for WlgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wlg {:#x}", self.0)
    }
}

/// How consecutive pages stripe across the module's physical dimensions.
///
/// Every policy is a permutation of the same mixed-radix page digits
/// (channel, rank, bank, wordline, mat group), so each is a bijection over
/// the address space — they differ only in which dimension rotates fastest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Interleave {
    /// Channels rotate fastest (the legacy/default order): maximum
    /// module-level parallelism for sequential traffic.
    #[default]
    Channel,
    /// Banks rotate fastest, then ranks, then channels: sequential traffic
    /// first exploits bank parallelism inside one channel.
    Bank,
    /// Wordlines rotate fastest: consecutive pages sweep the full wordline
    /// range of one bank (maximum location diversity, minimum
    /// parallelism).
    Page,
}

/// One mixed-radix digit of the page number.
#[derive(Debug, Clone, Copy)]
enum Dim {
    Channel,
    Rank,
    Bank,
    Wordline,
    MatGroup,
}

impl Interleave {
    /// Every policy, in sweep order.
    pub const ALL: [Interleave; 3] = [Interleave::Channel, Interleave::Bank, Interleave::Page];

    /// Display/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Interleave::Channel => "channel",
            Interleave::Bank => "bank",
            Interleave::Page => "page",
        }
    }

    /// Parses a CLI name (`channel`, `bank`, `page`).
    ///
    /// # Errors
    ///
    /// Returns a description listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "channel" => Ok(Interleave::Channel),
            "bank" => Ok(Interleave::Bank),
            "page" => Ok(Interleave::Page),
            _ => Err(format!(
                "unknown interleave {s:?} (expected channel, bank or page)"
            )),
        }
    }

    /// The digit order of this policy, fastest-rotating first, paired with
    /// each digit's radix under `g`.
    fn order(self, g: &Geometry) -> [(Dim, u64); 5] {
        let ch = (Dim::Channel, g.channels as u64);
        let rk = (Dim::Rank, g.ranks_per_channel as u64);
        let bk = (Dim::Bank, g.banks_per_rank as u64);
        let wl = (Dim::Wordline, g.mat_rows as u64);
        let mg = (Dim::MatGroup, g.mat_groups_per_bank() as u64);
        match self {
            Interleave::Channel => [ch, rk, bk, wl, mg],
            Interleave::Bank => [bk, rk, ch, wl, mg],
            Interleave::Page => [wl, mg, bk, rk, ch],
        }
    }
}

impl fmt::Display for Interleave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Interleave {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// A line address decoded into its physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Memory channel.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Mat group within the bank.
    pub mat_group: usize,
    /// Wordline index within the mats (0 = nearest the bitline driver).
    pub wordline: usize,
    /// The line's slot (0–63) within its wordline group.
    pub block_slot: usize,
}

impl Decoded {
    /// A flat bank identifier unique across the module, used to index bank
    /// state arrays in the memory controller.
    pub fn flat_bank(&self, g: &Geometry) -> usize {
        (self.channel * g.ranks_per_channel + self.rank) * g.banks_per_rank + self.bank
    }
}

/// The module's address map.
///
/// # Examples
///
/// ```
/// use ladder_reram::{AddressMap, Geometry, LineAddr};
///
/// let map = AddressMap::new(Geometry::default());
/// let d = map.decode(LineAddr::new(12345));
/// assert_eq!(map.encode(&d), LineAddr::new(12345));
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    geometry: Geometry,
    interleave: Interleave,
    /// The policy's digit order under this geometry, cached so the per-line
    /// hot path never re-derives radixes (which costs a division).
    order: [(Dim, u64); 5],
    /// Cached module capacity in lines (for the decode bounds check).
    lines: u64,
    /// Shift/mask decode plan, present when every radix is a power of two
    /// (true for the default geometry): digit `i` is
    /// `(page >> plan[i].1) & plan[i].2`, replacing the mixed-radix
    /// divide/modulo chain. `None` falls back to the general path.
    pow2: Option<[(Dim, u32, u64); 5]>,
}

impl AddressMap {
    /// Builds the map for a geometry with the default
    /// [`Interleave::Channel`] striping (the paper's order — goldens
    /// depend on it).
    ///
    /// # Panics
    ///
    /// Panics if the geometry violates the structural constraints of
    /// [`Geometry::validate`].
    pub fn new(geometry: Geometry) -> Self {
        Self::with_interleave(geometry, Interleave::Channel)
    }

    /// Builds the map for a geometry under an explicit striping policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry violates the structural constraints of
    /// [`Geometry::validate`].
    pub fn with_interleave(geometry: Geometry, interleave: Interleave) -> Self {
        if let Err(msg) = geometry.validate() {
            // lint: allow(panic-policy) — constructor contract: invalid geometry is a configuration bug, documented under # Panics
            panic!("unsupported geometry: {msg}");
        }
        let order = interleave.order(&geometry);
        let mut pow2 = None;
        if order.iter().all(|&(_, radix)| radix.is_power_of_two()) {
            let mut plan = [(Dim::Channel, 0u32, 0u64); 5];
            let mut shift = 0u32;
            for (slot, &(dim, radix)) in plan.iter_mut().zip(&order) {
                *slot = (dim, shift, radix - 1);
                shift += radix.trailing_zeros();
            }
            pow2 = Some(plan);
        }
        Self {
            lines: geometry.lines(),
            geometry,
            interleave,
            order,
            pow2,
        }
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The active striping policy.
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// Decodes a line address into physical coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the module capacity.
    pub fn decode(&self, line: LineAddr) -> Decoded {
        assert!(line.raw() < self.lines, "{line} beyond module capacity");
        let mut p = line.page();
        let (mut channel, mut rank, mut bank, mut wordline, mut mat_group) = (0, 0, 0, 0, 0);
        if let Some(plan) = &self.pow2 {
            for &(dim, shift, mask) in plan {
                let digit = ((p >> shift) & mask) as usize;
                match dim {
                    Dim::Channel => channel = digit,
                    Dim::Rank => rank = digit,
                    Dim::Bank => bank = digit,
                    Dim::Wordline => wordline = digit,
                    Dim::MatGroup => mat_group = digit,
                }
            }
        } else {
            for &(dim, radix) in &self.order {
                let digit = (p % radix) as usize;
                p /= radix;
                match dim {
                    Dim::Channel => channel = digit,
                    Dim::Rank => rank = digit,
                    Dim::Bank => bank = digit,
                    Dim::Wordline => wordline = digit,
                    Dim::MatGroup => mat_group = digit,
                }
            }
            debug_assert_eq!(p, 0);
        }
        Decoded {
            channel,
            rank,
            bank,
            mat_group,
            wordline,
            block_slot: line.block_slot(),
        }
    }

    /// Inverse of [`AddressMap::decode`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn encode(&self, d: &Decoded) -> LineAddr {
        let g = &self.geometry;
        assert!(
            d.channel < g.channels
                && d.rank < g.ranks_per_channel
                && d.bank < g.banks_per_rank
                && d.mat_group < g.mat_groups_per_bank()
                && d.wordline < g.mat_rows
                && d.block_slot < LINES_PER_WLG,
            "decoded coordinates out of range"
        );
        let mut p = 0u64;
        for (dim, radix) in self.order.iter().rev() {
            let digit = match dim {
                Dim::Channel => d.channel,
                Dim::Rank => d.rank,
                Dim::Bank => d.bank,
                Dim::Wordline => d.wordline,
                Dim::MatGroup => d.mat_group,
            };
            p = p * radix + digit as u64;
        }
        LineAddr::new(p * LINES_PER_WLG as u64 + d.block_slot as u64)
    }

    /// The wordline group a line belongs to (one WLG per page).
    pub fn wlg_of(&self, line: LineAddr) -> WlgId {
        WlgId(line.page())
    }

    /// All 64 lines sharing a wordline group.
    pub fn lines_of_wlg(&self, wlg: WlgId) -> impl Iterator<Item = LineAddr> {
        let base = wlg.0 * LINES_PER_WLG as u64;
        (0..LINES_PER_WLG as u64).map(move |i| LineAddr::new(base + i))
    }

    /// Location inputs for a timing-table lookup on a write to `line`:
    /// `(wordline index, worst bit column)`.
    pub fn write_location(&self, line: LineAddr) -> (usize, usize) {
        let d = self.decode(line);
        (d.wordline, self.geometry.worst_column_of_slot(d.block_slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy mixed-radix divide/modulo decode, kept as the reference
    /// for the shift/mask fast path (see `DESIGN.md` §15).
    fn decode_reference(map: &AddressMap, line: LineAddr) -> Decoded {
        let mut p = line.page();
        let (mut channel, mut rank, mut bank, mut wordline, mut mat_group) = (0, 0, 0, 0, 0);
        for (dim, radix) in map.interleave.order(map.geometry()) {
            let digit = (p % radix) as usize;
            p /= radix;
            match dim {
                Dim::Channel => channel = digit,
                Dim::Rank => rank = digit,
                Dim::Bank => bank = digit,
                Dim::Wordline => wordline = digit,
                Dim::MatGroup => mat_group = digit,
            }
        }
        Decoded {
            channel,
            rank,
            bank,
            mat_group,
            wordline,
            block_slot: line.block_slot(),
        }
    }

    #[test]
    fn pow2_decode_plan_matches_mixed_radix_reference() {
        for interleave in Interleave::ALL {
            let map = AddressMap::with_interleave(Geometry::default(), interleave);
            assert!(map.pow2.is_some(), "default geometry is all power-of-two");
            let lines = map.geometry().lines();
            let mut x = 0x243f_6a88_85a3_08d3u64;
            for _ in 0..2000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = LineAddr::new(x % lines);
                assert_eq!(map.decode(a), decode_reference(&map, a), "{a}");
            }
        }
    }

    #[test]
    fn non_pow2_geometry_takes_the_general_path() {
        let g = Geometry {
            channels: 3,
            ..Geometry::default()
        };
        let map = AddressMap::new(g);
        assert!(map.pow2.is_none(), "radix 3 cannot use shift/mask decode");
        let lines = map.geometry().lines();
        let mut x = 0x1357_9bdf_0246_8aceu64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = LineAddr::new(x % lines);
            assert_eq!(map.decode(a), decode_reference(&map, a), "{a}");
            assert_eq!(map.encode(&map.decode(a)), a);
        }
    }

    #[test]
    fn decode_encode_roundtrip_samples() {
        let map = AddressMap::new(Geometry::default());
        let lines = map.geometry().lines();
        // Deterministic pseudo-random sample across the whole range.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = LineAddr::new(x % lines);
            assert_eq!(map.encode(&map.decode(a)), a);
        }
    }

    #[test]
    fn consecutive_pages_rotate_channels() {
        let map = AddressMap::new(Geometry::default());
        let a = map.decode(LineAddr::new(0));
        let b = map.decode(LineAddr::new(64));
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn lines_of_a_page_share_wlg_and_wordline() {
        let map = AddressMap::new(Geometry::default());
        let wlg = map.wlg_of(LineAddr::new(64 * 777));
        let mut slots = std::collections::HashSet::new();
        let mut wordline = None;
        for line in map.lines_of_wlg(wlg) {
            let d = map.decode(line);
            slots.insert(d.block_slot);
            match wordline {
                None => wordline = Some((d.channel, d.rank, d.bank, d.mat_group, d.wordline)),
                Some(w) => {
                    assert_eq!(w, (d.channel, d.rank, d.bank, d.mat_group, d.wordline));
                }
            }
        }
        assert_eq!(slots.len(), LINES_PER_WLG);
    }

    #[test]
    fn write_location_tracks_slot() {
        let map = AddressMap::new(Geometry::default());
        let (wl0, col0) = map.write_location(LineAddr::new(0));
        let (wl1, col1) = map.write_location(LineAddr::new(63));
        assert_eq!(wl0, wl1, "same page, same wordline");
        assert_eq!(col0, 7);
        assert_eq!(col1, 511);
    }

    #[test]
    fn flat_bank_is_unique_per_bank() {
        let g = Geometry::default();
        let map = AddressMap::new(g.clone());
        let mut seen = std::collections::HashSet::new();
        for page in 0..g.total_banks() as u64 {
            let d = map.decode(LineAddr::new(page * 64));
            seen.insert(d.flat_bank(&g));
        }
        assert_eq!(seen.len(), g.total_banks());
    }

    #[test]
    #[should_panic(expected = "beyond module capacity")]
    fn oob_address_panics() {
        let g = Geometry::default();
        let lines = g.lines();
        let map = AddressMap::new(g);
        let _ = map.decode(LineAddr::new(lines));
    }

    /// A small but fully-featured geometry (every radix > 1) that is cheap
    /// to enumerate exhaustively.
    fn tiny_geometry() -> Geometry {
        Geometry {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 2,
            mats_per_bank: 16,
            chips: 8,
            mat_rows: 4,
            mat_cols: 64,
        }
    }

    #[test]
    fn default_interleave_matches_legacy_channel_order() {
        // `AddressMap::new` must keep the exact legacy digit order —
        // golden-trace digests depend on it.
        let map = AddressMap::new(Geometry::default());
        assert_eq!(map.interleave(), Interleave::Channel);
        let g = map.geometry().clone();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr::new(x % g.lines());
            let mut p = line.page();
            let channel = (p % g.channels as u64) as usize;
            p /= g.channels as u64;
            let rank = (p % g.ranks_per_channel as u64) as usize;
            p /= g.ranks_per_channel as u64;
            let bank = (p % g.banks_per_rank as u64) as usize;
            p /= g.banks_per_rank as u64;
            let wordline = (p % g.mat_rows as u64) as usize;
            p /= g.mat_rows as u64;
            let d = map.decode(line);
            assert_eq!(
                (d.channel, d.rank, d.bank, d.wordline, d.mat_group),
                (channel, rank, bank, wordline, p as usize)
            );
        }
    }

    #[test]
    fn every_interleave_is_a_bijection() {
        // Exhaustive over a tiny module: decode must be injective (hence,
        // with encode as verified inverse, a bijection over the space).
        let g = tiny_geometry();
        assert!(g.validate().is_ok());
        for policy in Interleave::ALL {
            let map = AddressMap::with_interleave(g.clone(), policy);
            let mut seen = std::collections::HashSet::new();
            for raw in 0..g.lines() {
                let a = LineAddr::new(raw);
                let d = map.decode(a);
                assert!(
                    seen.insert((
                        d.channel,
                        d.rank,
                        d.bank,
                        d.mat_group,
                        d.wordline,
                        d.block_slot
                    )),
                    "{policy}: {a} collides"
                );
                assert_eq!(map.encode(&d), a, "{policy}: encode is not the inverse");
            }
            assert_eq!(seen.len() as u64, g.lines());
        }
    }

    #[test]
    fn interleave_policies_rotate_their_fast_dimension() {
        let g = tiny_geometry();
        let page = |map: &AddressMap, p: u64| map.decode(LineAddr::new(p * LINES_PER_WLG as u64));
        let bank_map = AddressMap::with_interleave(g.clone(), Interleave::Bank);
        assert_ne!(page(&bank_map, 0).bank, page(&bank_map, 1).bank);
        assert_eq!(page(&bank_map, 0).channel, page(&bank_map, 1).channel);
        let page_map = AddressMap::with_interleave(g.clone(), Interleave::Page);
        assert_ne!(page(&page_map, 0).wordline, page(&page_map, 1).wordline);
        assert_eq!(page(&page_map, 0).bank, page(&page_map, 1).bank);
        let chan_map = AddressMap::with_interleave(g, Interleave::Channel);
        assert_ne!(page(&chan_map, 0).channel, page(&chan_map, 1).channel);
    }

    #[test]
    fn interleave_names_roundtrip() {
        for p in Interleave::ALL {
            assert_eq!(Interleave::parse(p.name()).unwrap(), p);
            assert_eq!(p.name().parse::<Interleave>().unwrap(), p);
        }
        assert!(Interleave::parse("diagonal").is_err());
        assert_eq!(Interleave::default(), Interleave::Channel);
    }
}
