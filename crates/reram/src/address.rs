//! Physical address mapping: line addresses → (channel, rank, bank,
//! wordline, mat group, block slot).
//!
//! Consecutive 4 KB pages rotate across channels, then ranks, then banks,
//! then wordlines, then mat groups: sequential traffic spreads over all the
//! parallelism the module offers *and* over the whole wordline range (the
//! location dimension of the timing model), while each page stays whole
//! inside one wordline group (the invariant LADDER's metadata layout relies
//! on).

use crate::geometry::{Geometry, LINES_PER_WLG};
use std::fmt;

/// Index of a 64 B memory line (line number, not a byte address).
///
/// # Examples
///
/// ```
/// use ladder_reram::LineAddr;
/// let a = LineAddr::new(1000);
/// assert_eq!(a.page(), 15);
/// assert_eq!(a.block_slot(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Wraps a raw line index.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The 4 KB page this line belongs to.
    pub const fn page(self) -> u64 {
        self.0 / LINES_PER_WLG as u64
    }

    /// The line's slot (0–63) within its wordline group.
    pub const fn block_slot(self) -> usize {
        (self.0 % LINES_PER_WLG as u64) as usize
    }

    /// Raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte address of the line's first byte.
    pub const fn byte_address(self) -> u64 {
        self.0 * crate::geometry::LINE_BYTES as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Globally unique wordline-group identifier (equal to the page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WlgId(pub u64);

impl fmt::Display for WlgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wlg {:#x}", self.0)
    }
}

/// A line address decoded into its physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Memory channel.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Mat group within the bank.
    pub mat_group: usize,
    /// Wordline index within the mats (0 = nearest the bitline driver).
    pub wordline: usize,
    /// The line's slot (0–63) within its wordline group.
    pub block_slot: usize,
}

impl Decoded {
    /// A flat bank identifier unique across the module, used to index bank
    /// state arrays in the memory controller.
    pub fn flat_bank(&self, g: &Geometry) -> usize {
        (self.channel * g.ranks_per_channel + self.rank) * g.banks_per_rank + self.bank
    }
}

/// The module's address map.
///
/// # Examples
///
/// ```
/// use ladder_reram::{AddressMap, Geometry, LineAddr};
///
/// let map = AddressMap::new(Geometry::default());
/// let d = map.decode(LineAddr::new(12345));
/// assert_eq!(map.encode(&d), LineAddr::new(12345));
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    geometry: Geometry,
}

impl AddressMap {
    /// Builds the map for a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry violates the structural constraints of
    /// [`Geometry::validate`].
    pub fn new(geometry: Geometry) -> Self {
        if let Err(msg) = geometry.validate() {
            // lint: allow(panic-policy) — constructor contract: invalid geometry is a configuration bug, documented under # Panics
            panic!("unsupported geometry: {msg}");
        }
        Self { geometry }
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Decodes a line address into physical coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the module capacity.
    pub fn decode(&self, line: LineAddr) -> Decoded {
        let g = &self.geometry;
        assert!(line.raw() < g.lines(), "{line} beyond module capacity");
        let mut p = line.page();
        let channel = (p % g.channels as u64) as usize;
        p /= g.channels as u64;
        let rank = (p % g.ranks_per_channel as u64) as usize;
        p /= g.ranks_per_channel as u64;
        let bank = (p % g.banks_per_rank as u64) as usize;
        p /= g.banks_per_rank as u64;
        let wordline = (p % g.mat_rows as u64) as usize;
        p /= g.mat_rows as u64;
        let mat_group = p as usize;
        debug_assert!(mat_group < g.mat_groups_per_bank());
        Decoded {
            channel,
            rank,
            bank,
            mat_group,
            wordline,
            block_slot: line.block_slot(),
        }
    }

    /// Inverse of [`AddressMap::decode`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn encode(&self, d: &Decoded) -> LineAddr {
        let g = &self.geometry;
        assert!(
            d.channel < g.channels
                && d.rank < g.ranks_per_channel
                && d.bank < g.banks_per_rank
                && d.mat_group < g.mat_groups_per_bank()
                && d.wordline < g.mat_rows
                && d.block_slot < LINES_PER_WLG,
            "decoded coordinates out of range"
        );
        let mut p = d.mat_group as u64;
        p = p * g.mat_rows as u64 + d.wordline as u64;
        p = p * g.banks_per_rank as u64 + d.bank as u64;
        p = p * g.ranks_per_channel as u64 + d.rank as u64;
        p = p * g.channels as u64 + d.channel as u64;
        LineAddr::new(p * LINES_PER_WLG as u64 + d.block_slot as u64)
    }

    /// The wordline group a line belongs to (one WLG per page).
    pub fn wlg_of(&self, line: LineAddr) -> WlgId {
        WlgId(line.page())
    }

    /// All 64 lines sharing a wordline group.
    pub fn lines_of_wlg(&self, wlg: WlgId) -> impl Iterator<Item = LineAddr> {
        let base = wlg.0 * LINES_PER_WLG as u64;
        (0..LINES_PER_WLG as u64).map(move |i| LineAddr::new(base + i))
    }

    /// Location inputs for a timing-table lookup on a write to `line`:
    /// `(wordline index, worst bit column)`.
    pub fn write_location(&self, line: LineAddr) -> (usize, usize) {
        let d = self.decode(line);
        (d.wordline, self.geometry.worst_column_of_slot(d.block_slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip_samples() {
        let map = AddressMap::new(Geometry::default());
        let lines = map.geometry().lines();
        // Deterministic pseudo-random sample across the whole range.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = LineAddr::new(x % lines);
            assert_eq!(map.encode(&map.decode(a)), a);
        }
    }

    #[test]
    fn consecutive_pages_rotate_channels() {
        let map = AddressMap::new(Geometry::default());
        let a = map.decode(LineAddr::new(0));
        let b = map.decode(LineAddr::new(64));
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn lines_of_a_page_share_wlg_and_wordline() {
        let map = AddressMap::new(Geometry::default());
        let wlg = map.wlg_of(LineAddr::new(64 * 777));
        let mut slots = std::collections::HashSet::new();
        let mut wordline = None;
        for line in map.lines_of_wlg(wlg) {
            let d = map.decode(line);
            slots.insert(d.block_slot);
            match wordline {
                None => wordline = Some((d.channel, d.rank, d.bank, d.mat_group, d.wordline)),
                Some(w) => {
                    assert_eq!(w, (d.channel, d.rank, d.bank, d.mat_group, d.wordline));
                }
            }
        }
        assert_eq!(slots.len(), LINES_PER_WLG);
    }

    #[test]
    fn write_location_tracks_slot() {
        let map = AddressMap::new(Geometry::default());
        let (wl0, col0) = map.write_location(LineAddr::new(0));
        let (wl1, col1) = map.write_location(LineAddr::new(63));
        assert_eq!(wl0, wl1, "same page, same wordline");
        assert_eq!(col0, 7);
        assert_eq!(col1, 511);
    }

    #[test]
    fn flat_bank_is_unique_per_bank() {
        let g = Geometry::default();
        let map = AddressMap::new(g.clone());
        let mut seen = std::collections::HashSet::new();
        for page in 0..g.total_banks() as u64 {
            let d = map.decode(LineAddr::new(page * 64));
            seen.insert(d.flat_bank(&g));
        }
        assert_eq!(seen.len(), g.total_banks());
    }

    #[test]
    #[should_panic(expected = "beyond module capacity")]
    fn oob_address_panics() {
        let g = Geometry::default();
        let lines = g.lines();
        let map = AddressMap::new(g);
        let _ = map.decode(LineAddr::new(lines));
    }
}
