//! Device-level timing parameters (paper Table 2).

use crate::time::Picos;

/// Fixed ReRAM access timings; the write-recovery time `tWR` is the one
/// variable component, supplied per write by the active scheme.
///
/// # Examples
///
/// ```
/// use ladder_reram::DeviceTiming;
///
/// let t = DeviceTiming::default();
/// assert_eq!(t.read_latency().as_ns(), 32.5); // tRCD + tCL + tBURST
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceTiming {
    /// Column access (CAS) latency.
    pub t_cl: Picos,
    /// Row-to-column delay.
    pub t_rcd: Picos,
    /// Data burst time for one 64 B line.
    pub t_burst: Picos,
}

impl Default for DeviceTiming {
    fn default() -> Self {
        Self {
            t_cl: Picos::from_ns(13.75),
            t_rcd: Picos::from_ns(13.75),
            t_burst: Picos::from_ns(5.0),
        }
    }
}

impl DeviceTiming {
    /// Bank occupancy of one read: `tRCD + tCL + tBURST`.
    pub fn read_latency(&self) -> Picos {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Bank occupancy of one write with write-recovery time `t_wr`:
    /// `tRCD + tWR + tBURST`.
    pub fn write_latency(&self, t_wr: Picos) -> Picos {
        self.t_rcd + t_wr + self.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let t = DeviceTiming::default();
        assert_eq!(t.t_cl, Picos::from_ns(13.75));
        assert_eq!(t.t_rcd, Picos::from_ns(13.75));
        assert_eq!(t.t_burst, Picos::from_ns(5.0));
    }

    #[test]
    fn write_latency_scales_with_twr() {
        let t = DeviceTiming::default();
        let fast = t.write_latency(Picos::from_ns(29.0));
        let slow = t.write_latency(Picos::from_ns(658.0));
        assert_eq!((slow - fast).as_ns(), 629.0);
        assert!(slow > t.read_latency());
    }
}
