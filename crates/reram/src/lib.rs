//! ReRAM main-memory organization: geometry, physical address mapping,
//! timing parameters, content store and the simulator's time base.
//!
//! This crate holds everything about the memory *module* that is
//! independent of any write-optimization scheme: how 64 B lines stripe over
//! mats and chips (paper Fig. 3), how pages group into wordline groups, and
//! the fixed access timings from Table 2. The scheme-dependent part — how
//! long the variable `tWR` is — lives in `ladder-xbar` (the physics) and
//! `ladder-core`/`ladder-baselines` (the policies).
//!
//! # Examples
//!
//! ```
//! use ladder_reram::{AddressMap, Geometry, LineAddr};
//!
//! let map = AddressMap::new(Geometry::default());
//! let (wordline, worst_col) = map.write_location(LineAddr::new(130));
//! // Line 130 is slot 2 of its page: bits 16..24 of each mat wordline.
//! assert_eq!(worst_col, 23);
//! assert!(wordline < 512);
//! ```

mod address;
pub mod bits;
mod geometry;
mod store;
mod time;
mod timing;
mod topology;

pub use address::{AddressMap, Decoded, Interleave, LineAddr, WlgId};
pub use geometry::{Geometry, LINES_PER_WLG, LINE_BYTES, PAGE_BYTES};
pub use store::{line_ones, FaultMask, LineData, LineStore};
pub use time::{EventQueue, Instant, Picos, QueueBackend};
pub use timing::DeviceTiming;
pub use topology::Topology;
