//! Integer picosecond time base shared by the whole simulator.
//!
//! All device timings (tCL = 13.75 ns, tBURST = 5 ns, tWR = 29–658 ns, …)
//! are exact multiples of 1 ps, so simulation arithmetic is exact — no
//! floating-point drift across billions of cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time in picoseconds.
///
/// # Examples
///
/// ```
/// use ladder_reram::Picos;
///
/// let t_cl = Picos::from_ns(13.75);
/// assert_eq!(t_cl.as_ps(), 13_750);
/// assert_eq!((t_cl + t_cl).as_ns(), 27.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(u64);

impl Picos {
    /// Zero-length span.
    pub const ZERO: Picos = Picos(0);

    /// Creates a span of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Creates a span from nanoseconds, rounding up to whole picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be non-negative");
        Picos((ns * 1000.0).ceil() as u64)
    }

    /// The span in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        Picos(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns())
    }
}

/// An absolute simulated timestamp in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use ladder_reram::{Instant, Picos};
///
/// let t0 = Instant::ZERO;
/// let t1 = t0 + Picos::from_ns(5.0);
/// assert_eq!(t1.duration_since(t0), Picos::from_ns(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// Simulation start.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant at `ps` picoseconds after start.
    pub const fn from_ps(ps: u64) -> Self {
        Instant(ps)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Elapsed span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Picos {
        debug_assert!(earlier.0 <= self.0, "duration_since of a later instant");
        Picos(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }
}

impl Add<Picos> for Instant {
    type Output = Instant;
    fn add(self, rhs: Picos) -> Instant {
        Instant(self.0 + rhs.as_ps())
    }
}

impl AddAssign<Picos> for Instant {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.as_ps();
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3} ns", self.0 as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_up() {
        assert_eq!(Picos::from_ns(13.75).as_ps(), 13_750);
        assert_eq!(Picos::from_ns(0.0001).as_ps(), 1);
        assert_eq!(Picos::from_ns(0.0).as_ps(), 0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Picos::from_ps(100);
        let b = Picos::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
    }

    #[test]
    fn instants_order_and_advance() {
        let mut t = Instant::ZERO;
        t += Picos::from_ps(10);
        let later = t + Picos::from_ps(5);
        assert!(later > t);
        assert_eq!(later.duration_since(t).as_ps(), 5);
        assert_eq!(t.max(later), later);
    }

    #[test]
    fn sum_of_durations() {
        let total: Picos = (1..=4).map(Picos::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = Picos::from_ns(-1.0);
    }
}
