//! Integer picosecond time base shared by the whole simulator.
//!
//! All device timings (tCL = 13.75 ns, tBURST = 5 ns, tWR = 29–658 ns, …)
//! are exact multiples of 1 ps, so simulation arithmetic is exact — no
//! floating-point drift across billions of cycles.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time in picoseconds.
///
/// # Examples
///
/// ```
/// use ladder_reram::Picos;
///
/// let t_cl = Picos::from_ns(13.75);
/// assert_eq!(t_cl.as_ps(), 13_750);
/// assert_eq!((t_cl + t_cl).as_ns(), 27.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(u64);

impl Picos {
    /// Zero-length span.
    pub const ZERO: Picos = Picos(0);

    /// Creates a span of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Creates a span from nanoseconds, rounding up to whole picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be non-negative");
        Picos((ns * 1000.0).ceil() as u64)
    }

    /// The span in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        Picos(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns())
    }
}

/// An absolute simulated timestamp in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use ladder_reram::{Instant, Picos};
///
/// let t0 = Instant::ZERO;
/// let t1 = t0 + Picos::from_ns(5.0);
/// assert_eq!(t1.duration_since(t0), Picos::from_ns(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// Simulation start.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant at `ps` picoseconds after start.
    pub const fn from_ps(ps: u64) -> Self {
        Instant(ps)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Elapsed span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Picos {
        debug_assert!(earlier.0 <= self.0, "duration_since of a later instant");
        Picos(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }
}

impl Add<Picos> for Instant {
    type Output = Instant;
    fn add(self, rhs: Picos) -> Instant {
        Instant(self.0 + rhs.as_ps())
    }
}

impl AddAssign<Picos> for Instant {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.as_ps();
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3} ns", self.0 as f64 / 1000.0)
    }
}

/// Which data structure backs an [`EventQueue`].
///
/// Both backends pop events in exactly the same order — ascending
/// `(Instant, sequence)` — so a simulation is bit-identical under either.
/// [`QueueBackend::Calendar`] is the production default;
/// [`QueueBackend::Heap`] is the straightforward binary heap kept as the
/// reference implementation for differential tests and the `hotloop`
/// bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Hierarchical calendar/bucket queue (fast path, default).
    #[default]
    Calendar,
    /// Plain binary min-heap (reference path).
    Heap,
}

/// A deterministic discrete-event queue of `(Instant, K)` entries with
/// stable FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (each entry carries a monotonically increasing sequence
/// number), so a simulation driven by an `EventQueue` is reproducible
/// bit-for-bit regardless of queue internals. The backing structure is
/// chosen at construction ([`EventQueue::with_backend`]); see
/// [`QueueBackend`].
///
/// # Examples
///
/// ```
/// use ladder_reram::{EventQueue, Instant};
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_ps(20), "late");
/// q.schedule(Instant::from_ps(10), "first");
/// q.schedule(Instant::from_ps(10), "second");
/// assert_eq!(q.pop(), Some((Instant::from_ps(10), "first")));
/// assert_eq!(q.pop(), Some((Instant::from_ps(10), "second")));
/// assert_eq!(q.pop(), Some((Instant::from_ps(20), "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<K> {
    inner: Inner<K>,
    seq: u64,
    scheduled_total: u64,
}

#[derive(Debug)]
enum Inner<K> {
    Heap(BinaryHeap<Scheduled<K>>),
    Calendar(Calendar<K>),
}

#[derive(Debug)]
struct Scheduled<K> {
    at: Instant,
    seq: u64,
    kind: K,
}

impl<K> PartialEq for Scheduled<K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<K> Eq for Scheduled<K> {}

impl<K> Ord for Scheduled<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on both keys: BinaryHeap is a max-heap, we want the
        // earliest instant first and, within an instant, the lowest
        // sequence number (FIFO).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl<K> PartialOrd for Scheduled<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> EventQueue<K> {
    /// An empty queue on the default (calendar) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// An empty queue on an explicitly chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::Heap => Inner::Heap(BinaryHeap::new()),
            QueueBackend::Calendar => Inner::Calendar(Calendar::new()),
        };
        Self {
            inner,
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// The backend this queue was constructed with.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Heap(_) => QueueBackend::Heap,
            Inner::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: Instant, kind: K) {
        let s = Scheduled {
            at,
            seq: self.seq,
            kind,
        };
        match &mut self.inner {
            Inner::Heap(h) => h.push(s),
            Inner::Calendar(c) => c.push(s),
        }
        self.seq += 1;
        self.scheduled_total += 1;
    }

    /// Removes and returns the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(Instant, K)> {
        let s = match &mut self.inner {
            Inner::Heap(h) => h.pop(),
            Inner::Calendar(c) => c.pop(),
        };
        s.map(|s| (s.at, s.kind))
    }

    /// The instant of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<Instant> {
        match &self.inner {
            Inner::Heap(h) => h.peek().map(|s| s.at),
            Inner::Calendar(c) => c.peek().map(|s| s.at),
        }
    }

    /// Discards every event scheduled at or before `now` and returns the
    /// instant of the earliest remaining one. Standalone controller
    /// drivers use this to step time ("when could anything next happen?")
    /// without dispatching individual events.
    pub fn next_after(&mut self, now: Instant) -> Option<Instant> {
        while let Some(t) = self.peek_time() {
            if t > now {
                return Some(t);
            }
            self.pop();
        }
        None
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len,
        }
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Removes every scheduled event, returning them in firing order.
    pub fn drain(&mut self) -> Vec<(Instant, K)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

/// A hierarchical calendar (bucket) queue: events hash into `buckets.len()`
/// day buckets by `(at >> shift) % buckets.len()`, and a day cursor scans
/// forward from the last popped day. Each bucket is itself a small binary
/// heap (the "hierarchical" part), so a degenerate schedule that lands
/// everything in one bucket gracefully decays to the plain heap instead of
/// to a linked-list scan.
///
/// The bucket count and day width resize deterministically from the live
/// event count and span, so pop/push are O(1) amortized on the kernel's
/// typical schedules while the pop *order* — ascending `(at, seq)` — stays
/// exactly that of the reference heap.
#[derive(Debug)]
struct Calendar<K> {
    buckets: Vec<BinaryHeap<Scheduled<K>>>,
    /// log2 of the day width in picoseconds.
    shift: u32,
    /// Lower bound on the day index of every resident event.
    cur_day: u64,
    len: usize,
}

/// Initial (and minimum) bucket count; always a power of two.
const CAL_MIN_BUCKETS: usize = 16;
/// Maximum bucket count.
const CAL_MAX_BUCKETS: usize = 1 << 15;
/// Initial day width: 2^10 ps ≈ 1 ns.
const CAL_INIT_SHIFT: u32 = 10;
/// Maximum day width: 2^40 ps ≈ 1.1 ms.
const CAL_MAX_SHIFT: u32 = 40;

impl<K> Calendar<K> {
    fn new() -> Self {
        Self {
            buckets: (0..CAL_MIN_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            shift: CAL_INIT_SHIFT,
            cur_day: 0,
            len: 0,
        }
    }

    #[inline]
    fn day_of(&self, at: Instant) -> u64 {
        at.as_ps() >> self.shift
    }

    fn push(&mut self, s: Scheduled<K>) {
        let day = self.day_of(s.at);
        if self.len == 0 || day < self.cur_day {
            self.cur_day = day;
        }
        let mask = self.buckets.len() as u64 - 1;
        self.buckets[(day & mask) as usize].push(s);
        self.len += 1;
        if self.len > self.buckets.len() * 4 && self.buckets.len() < CAL_MAX_BUCKETS {
            self.resize();
        }
    }

    /// Index of the bucket holding the globally earliest event.
    ///
    /// Scans one calendar year (every bucket once) from the day cursor; a
    /// bucket's heap top belongs to the scanned day iff that day is the
    /// earliest populated one, because all resident days are ≥ `cur_day`
    /// and days congruent modulo the bucket count differ by a full year.
    /// If the year is empty (sparse far-future schedule), falls back to a
    /// direct min search over the bucket tops.
    fn find_min_bucket(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len() as u64;
        let mask = nb - 1;
        for day in self.cur_day..self.cur_day + nb {
            let b = (day & mask) as usize;
            if let Some(top) = self.buckets[b].peek() {
                if self.day_of(top.at) == day {
                    return Some(b);
                }
            }
        }
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, h)| h.peek().map(|top| (b, top)))
            .min_by_key(|&(_, top)| (top.at, top.seq))
            .map(|(b, _)| b)
    }

    fn peek(&self) -> Option<&Scheduled<K>> {
        self.find_min_bucket().and_then(|b| self.buckets[b].peek())
    }

    fn pop(&mut self) -> Option<Scheduled<K>> {
        let b = self.find_min_bucket()?;
        let s = self.buckets[b].pop()?;
        self.cur_day = self.day_of(s.at);
        self.len -= 1;
        if self.buckets.len() > CAL_MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize();
        }
        Some(s)
    }

    /// Rebuilds the calendar around the current population: bucket count ~
    /// the live event count, day width ~ one event per day over the live
    /// span. Purely a function of resident `(at, seq)` pairs, so resizing
    /// is deterministic.
    fn resize(&mut self) {
        let mut items: Vec<Scheduled<K>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            items.extend(b.drain());
        }
        let nb = items
            .len()
            .next_power_of_two()
            .clamp(CAL_MIN_BUCKETS, CAL_MAX_BUCKETS);
        self.buckets = (0..nb).map(|_| BinaryHeap::new()).collect();
        if items.is_empty() {
            self.shift = CAL_INIT_SHIFT;
            self.cur_day = 0;
            self.len = 0;
            return;
        }
        let (lo, hi) = items.iter().fold((u64::MAX, 0u64), |(lo, hi), s| {
            (lo.min(s.at.as_ps()), hi.max(s.at.as_ps()))
        });
        let width = ((hi - lo) / items.len() as u64).max(1);
        self.shift = (63 - width.leading_zeros()).min(CAL_MAX_SHIFT);
        self.cur_day = lo >> self.shift;
        self.len = items.len();
        let mask = nb as u64 - 1;
        for s in items {
            let day = s.at.as_ps() >> self.shift;
            self.buckets[(day & mask) as usize].push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_up() {
        assert_eq!(Picos::from_ns(13.75).as_ps(), 13_750);
        assert_eq!(Picos::from_ns(0.0001).as_ps(), 1);
        assert_eq!(Picos::from_ns(0.0).as_ps(), 0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Picos::from_ps(100);
        let b = Picos::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
    }

    #[test]
    fn instants_order_and_advance() {
        let mut t = Instant::ZERO;
        t += Picos::from_ps(10);
        let later = t + Picos::from_ps(5);
        assert!(later > t);
        assert_eq!(later.duration_since(t).as_ps(), 5);
        assert_eq!(t.max(later), later);
    }

    #[test]
    fn sum_of_durations() {
        let total: Picos = (1..=4).map(Picos::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = Picos::from_ns(-1.0);
    }

    #[test]
    fn event_queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ps(300), 'c');
        q.schedule(Instant::from_ps(100), 'a');
        q.schedule(Instant::from_ps(200), 'b');
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Instant::from_ps(100)));
        assert_eq!(q.pop(), Some((Instant::from_ps(100), 'a')));
        assert_eq!(q.pop(), Some((Instant::from_ps(200), 'b')));
        assert_eq!(q.pop(), Some((Instant::from_ps(300), 'c')));
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn event_queue_breaks_ties_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_ps(50);
        // Interleave with another instant so heap sift ordering gets a
        // chance to scramble equal-time entries if the tie-break were
        // missing.
        for i in 0..16u32 {
            q.schedule(t, i);
            q.schedule(Instant::from_ps(40), 1000 + i);
        }
        let drained = q.drain();
        let at_40: Vec<u32> = drained
            .iter()
            .filter(|(at, _)| *at == Instant::from_ps(40))
            .map(|&(_, k)| k)
            .collect();
        let at_50: Vec<u32> = drained
            .iter()
            .filter(|(at, _)| *at == t)
            .map(|&(_, k)| k)
            .collect();
        assert_eq!(at_40, (1000..1016).collect::<Vec<_>>());
        assert_eq!(at_50, (0..16).collect::<Vec<_>>());
        // All t=40 events come before any t=50 event.
        assert!(drained[..16]
            .iter()
            .all(|(at, _)| *at == Instant::from_ps(40)));
    }

    #[test]
    fn event_queue_next_after_skips_stale() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ps(10), ());
        q.schedule(Instant::from_ps(20), ());
        q.schedule(Instant::from_ps(30), ());
        assert_eq!(
            q.next_after(Instant::from_ps(20)),
            Some(Instant::from_ps(30))
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_after(Instant::from_ps(30)), None);
        assert!(q.is_empty());
    }
}
